//! Golden-trace regression suite for the span recorder.
//!
//! Each scenario runs the pipeline in pure-function mode
//! (`measured_overheads = false`), renders the trace in the compact golden
//! format, and compares it byte-for-byte against the file checked into
//! `tests/golden/`. The render is repeated at 1, 2, 4, and 8 worker
//! threads inside each test — sequentially and with the pipelined
//! key-frame path on — so any thread-count or overlap dependence fails
//! here before it reaches CI's `MVS_THREADS` matrix.
//!
//! To regenerate after an intentional pipeline or format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! then review the diff like any other code change.

use multiview_scheduler::sim::{
    run_pipeline_traced, Algorithm, FaultModel, PipelineConfig, Scenario, ScenarioKind,
};
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{name}.golden"))
}

/// Short run in pure-function mode: the whole trace is a function of
/// (scenario, config), so the golden file is stable across machines.
fn base_config() -> PipelineConfig {
    PipelineConfig {
        train_s: 30.0,
        eval_s: 3.0,
        seed: 2022,
        measured_overheads: false,
        ..PipelineConfig::paper_default(Algorithm::Balb)
    }
}

fn check_golden(name: &str, scenario: &Scenario, config: &PipelineConfig) {
    let mut rendered: Vec<String> = Vec::new();
    for threads in THREAD_COUNTS {
        for pipelined in [false, true] {
            let cfg = PipelineConfig {
                threads,
                pipelined,
                ..config.clone()
            };
            let (_, trace) = run_pipeline_traced(scenario, &cfg);
            rendered.push(trace.golden_text());
        }
    }
    for (i, r) in rendered.iter().enumerate().skip(1) {
        let threads = THREAD_COUNTS[i / 2];
        let mode = if i % 2 == 1 {
            "pipelined"
        } else {
            "sequential"
        };
        assert_eq!(&rendered[0], r, "{name}: {mode} at {threads} threads");
    }

    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered[0]).expect("golden file is writable");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered[0],
        expected,
        "{name}: trace drifted from {}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff",
        path.display()
    );
}

#[test]
fn golden_fault_free_s2_balb() {
    check_golden(
        "s2_balb_fault_free",
        &Scenario::new(ScenarioKind::S2),
        &base_config(),
    );
}

#[test]
fn golden_sharded_cold_s2_balb() {
    // Cold sharded solves are where the pipelined path actually reorders
    // work (shards merge as they complete); snapshot that plan shape and
    // hold the merge order to the sequential render.
    let config = PipelineConfig {
        warm_start: false,
        shard_solver: true,
        ..base_config()
    };
    check_golden(
        "s2_balb_sharded_cold",
        &Scenario::new(ScenarioKind::S2),
        &config,
    );
}

#[test]
fn golden_camera_dropout_s2_balb() {
    let config = PipelineConfig {
        faults: FaultModel {
            dropout_per_horizon: 0.5,
            rejoin_per_horizon: 0.5,
            ..FaultModel::none()
        },
        ..base_config()
    };
    check_golden("s2_balb_dropout", &Scenario::new(ScenarioKind::S2), &config);
}

#[test]
fn golden_keyframe_loss_s2_balb() {
    let config = PipelineConfig {
        faults: FaultModel {
            keyframe_loss: 0.4,
            ..FaultModel::none()
        },
        ..base_config()
    };
    check_golden(
        "s2_balb_keyframe_loss",
        &Scenario::new(ScenarioKind::S2),
        &config,
    );
}
