//! Integration tests for the cross-camera association stack: training on
//! simulated scenario data and exercising the engine, masks, and
//! distributed policy across crates.

use multiview_scheduler::core::{CameraId, DistributedPolicy};
use multiview_scheduler::sim::{
    CorrespondenceData, MaskPrecompute, Scenario, ScenarioKind, TrainedAssociation,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn trained_s2() -> (Scenario, CorrespondenceData, TrainedAssociation) {
    let scenario = Scenario::new(ScenarioKind::S2);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let data = CorrespondenceData::collect(&scenario, 60.0, 2, &mut rng);
    let trained = TrainedAssociation::train(scenario.num_cameras(), &data, 3, 0.15)
        .expect("S2 training data is sufficient");
    (scenario, data, trained)
}

#[test]
fn association_merges_most_truly_shared_objects() {
    let (scenario, _, trained) = trained_s2();
    let mut rng = ChaCha8Rng::seed_from_u64(123);
    let mut world = scenario.warmed_world(50.0, &mut rng);
    let (mut merged, mut should) = (0usize, 0usize);
    for _ in 0..300 {
        world.step(scenario.frame_dt_s(), &mut rng);
        let views: Vec<Vec<_>> = scenario
            .cameras
            .iter()
            .map(|c| c.visible_objects(&world, scenario.occlusion_threshold))
            .collect();
        let shared: usize = {
            use std::collections::HashMap;
            let mut count: HashMap<u64, usize> = HashMap::new();
            for v in &views {
                for g in v {
                    *count.entry(g.id).or_default() += 1;
                }
            }
            count.values().filter(|&&c| c >= 2).count()
        };
        should += shared;
        let boxes: Vec<Vec<_>> = views
            .iter()
            .map(|v| v.iter().map(|g| g.bbox).collect())
            .collect();
        let globals = trained.engine.associate(&boxes);
        for g in &globals {
            if g.members.len() >= 2 {
                let ids: Vec<u64> = g.members.iter().map(|&(c, d)| views[c][d].id).collect();
                let mut uniq = ids.clone();
                uniq.sort_unstable();
                uniq.dedup();
                if uniq.len() == 1 {
                    merged += 1;
                }
            }
        }
    }
    assert!(should > 0, "scenario must produce shared observations");
    let ratio = merged as f64 / should as f64;
    assert!(
        ratio > 0.8,
        "association merged only {ratio:.2} of shared objects"
    );
}

#[test]
fn masks_partition_every_frame_without_priority_inversions() {
    let (scenario, data, _) = trained_s2();
    let frames: Vec<_> = scenario.cameras.iter().map(|c| c.frame).collect();
    let pre = MaskPrecompute::build(&frames, &data, 64);
    let priority = vec![CameraId(1), CameraId(0)];
    for cam in 0..scenario.num_cameras() {
        let mask = pre.mask_for(cam, &priority);
        assert_eq!(mask.camera(), CameraId(cam));
        // Every in-frame point resolves to some owner.
        let p = mvs_geometry::Point2::new(640.0, 350.0);
        assert!(mask.owner_at(p).is_some());
    }
    // The top-priority camera owns all of its own frame (nothing outranks it).
    let top = pre.mask_for(1, &priority);
    assert_eq!(top.owned_fraction(), 1.0);
}

#[test]
fn sp_masks_split_shared_regions_and_keep_exclusive_ones() {
    let (scenario, data, _) = trained_s2();
    let frames: Vec<_> = scenario.cameras.iter().map(|c| c.frame).collect();
    let pre = MaskPrecompute::build(&frames, &data, 64);
    // Heavily skewed weights: camera 0 should own most shared cells on
    // both masks, but camera 1 keeps its exclusive area.
    let masks = pre.sp_masks(&[10.0, 1.0]);
    assert!(masks[0].owned_fraction() > 0.8);
    assert!(masks[1].owned_fraction() > 0.0);
    // Flipping the weights must flip the shared allocation.
    let flipped = pre.sp_masks(&[1.0, 10.0]);
    assert!(flipped[1].owned_fraction() > masks[1].owned_fraction());
}

#[test]
fn distributed_policy_round_trips_through_schedule() {
    use multiview_scheduler::core::{balb_central, MvsProblem, ProblemConfig};
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let problem = MvsProblem::random(&mut rng, 4, 20, &ProblemConfig::default());
    let schedule = balb_central(&problem);
    let policy = DistributedPolicy::from_schedule(&schedule);
    // The policy ranks all cameras and selects consistent owners.
    let coverage = [CameraId(0), CameraId(2), CameraId(3)];
    let owner = policy.select_owner(coverage).expect("non-empty coverage");
    assert!(coverage.contains(&owner));
    let trackers: Vec<CameraId> = coverage
        .iter()
        .copied()
        .filter(|&c| policy.should_track(c, coverage))
        .collect();
    assert_eq!(trackers, vec![owner]);
}

#[test]
fn pair_models_exist_in_both_directions() {
    let (scenario, _, trained) = trained_s2();
    let m = scenario.num_cameras();
    for src in 0..m {
        for dst in 0..m {
            if src != dst {
                assert!(
                    trained.models.contains_key(&(src, dst)),
                    "missing model for pair ({src},{dst})"
                );
            }
        }
    }
    assert_eq!(trained.engine.num_models(), m * (m - 1) / 2);
}
