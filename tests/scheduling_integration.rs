//! Integration tests for the scheduling stack against the vision-layer
//! latency model: BALB on Table-I-style fleets, batching interactions, and
//! exact-solver agreement.

use multiview_scheduler::core::{
    balb_central, baselines, exact, CameraId, CameraInfo, MvsProblem, ObjectId, ObjectInfo,
};
use multiview_scheduler::geometry::SizeClass;
use multiview_scheduler::vision::{DeviceKind, LatencyProfile};
use std::collections::BTreeMap;

fn fleet(devices: &[DeviceKind]) -> Vec<CameraInfo> {
    devices
        .iter()
        .enumerate()
        .map(|(i, &d)| CameraInfo {
            id: CameraId(i),
            profile: LatencyProfile::for_device(d),
        })
        .collect()
}

fn object(j: usize, coverage: &[(usize, SizeClass)]) -> ObjectInfo {
    ObjectInfo {
        id: ObjectId(j),
        sizes: coverage
            .iter()
            .map(|&(c, s)| (CameraId(c), s))
            .collect::<BTreeMap<_, _>>(),
    }
}

#[test]
fn shared_objects_avoid_the_nano_when_possible() {
    // The paper's S3 fleet. Ten objects all visible from every camera at
    // equal size: BALB must route none of them to the Nano (its batches
    // are the most expensive) as long as the faster devices have headroom.
    let cameras = fleet(&[DeviceKind::Xavier, DeviceKind::Tx2, DeviceKind::Nano]);
    let objects: Vec<ObjectInfo> = (0..10)
        .map(|j| {
            object(
                j,
                &[
                    (0, SizeClass::S128),
                    (1, SizeClass::S128),
                    (2, SizeClass::S128),
                ],
            )
        })
        .collect();
    let problem = MvsProblem::new(cameras, objects).expect("valid instance");
    let schedule = balb_central(&problem);
    let on_nano = schedule.assignment.objects_of(CameraId(2)).len();
    assert_eq!(
        on_nano, 0,
        "the Nano should receive nothing while others have headroom"
    );
    // And the Nano therefore has the lowest added latency but the highest
    // total (its full-frame floor), putting it last in priority.
    assert_eq!(*schedule.priority.last().expect("non-empty"), CameraId(2));
}

#[test]
fn batching_attracts_same_size_objects_to_one_camera() {
    // Two identical Xaviers; eight S256 objects visible from both. One
    // S256 batch holds 8 crops on a Xavier, so the cheapest schedule puts
    // all of them in one batch on one camera rather than splitting.
    let cameras = fleet(&[DeviceKind::Xavier, DeviceKind::Xavier]);
    let objects: Vec<ObjectInfo> = (0..8)
        .map(|j| object(j, &[(0, SizeClass::S256), (1, SizeClass::S256)]))
        .collect();
    let problem = MvsProblem::new(cameras, objects).expect("valid instance");
    let schedule = balb_central(&problem);
    let on_first = schedule.assignment.objects_of(CameraId(0)).len();
    assert!(
        on_first == 0 || on_first == 8,
        "batch-awareness should consolidate, got split {on_first}/8"
    );
    // Consolidated latency: one 65 ms batch on one camera.
    assert!((schedule.system_latency_ms() - (110.0 + 65.0)).abs() < 1e-9);
}

#[test]
fn balb_matches_exact_on_table_one_fleets() {
    use multiview_scheduler::core::ProblemConfig;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    for _ in 0..10 {
        let p = MvsProblem::random(&mut rng, 3, 8, &ProblemConfig::default());
        let opt = exact::solve(&p, true, 20_000_000).expect("within budget");
        let balb = balb_central(&p);
        // In the paper's operating regime (t_full floors) BALB is optimal
        // on small instances (see the ablation bench).
        assert!(
            balb.system_latency_ms() <= opt.system_latency_ms + 1e-6,
            "balb {} vs opt {}",
            balb.system_latency_ms(),
            opt.system_latency_ms
        );
    }
}

#[test]
fn static_partition_ignores_load() {
    // Same instance twice, but the second has ten extra objects visible
    // only to camera 0. SP must keep the original objects' assignment
    // identical (load-oblivious); BALB is allowed to move them.
    let cameras = fleet(&[DeviceKind::Xavier, DeviceKind::Xavier]);
    let shared: Vec<ObjectInfo> = (0..6)
        .map(|j| object(j, &[(0, SizeClass::S128), (1, SizeClass::S128)]))
        .collect();
    let p_light = MvsProblem::new(cameras.clone(), shared.clone()).expect("valid");
    let mut heavy = shared.clone();
    for j in 6..16 {
        heavy.push(object(j, &[(0, SizeClass::S512)]));
    }
    let p_heavy = MvsProblem::new(cameras, heavy).expect("valid");

    let sp_light = baselines::static_partition_by_id(&p_light);
    let sp_heavy = baselines::static_partition_by_id(&p_heavy);
    for j in 0..6 {
        assert_eq!(
            sp_light.owners_of(ObjectId(j)),
            sp_heavy.owners_of(ObjectId(j)),
            "SP must not react to load"
        );
    }
    // BALB rebalances: camera 0 is overloaded in the heavy instance, so no
    // shared object should stay there.
    let balb_heavy = balb_central(&p_heavy);
    for j in 0..6 {
        assert_eq!(
            balb_heavy.assignment.sole_owner(ObjectId(j)),
            Some(CameraId(1)),
            "BALB must move shared objects off the overloaded camera"
        );
    }
}

#[test]
fn per_camera_sizes_drive_assignment() {
    // The same physical object looks big (S512) to a near camera and small
    // (S64) to a far one; with equal devices, BALB must pick the far view.
    let cameras = fleet(&[DeviceKind::Tx2, DeviceKind::Tx2]);
    let objects = vec![object(0, &[(0, SizeClass::S512), (1, SizeClass::S64)])];
    let problem = MvsProblem::new(cameras, objects).expect("valid instance");
    let schedule = balb_central(&problem);
    assert_eq!(
        schedule.assignment.sole_owner(ObjectId(0)),
        Some(CameraId(1))
    );
}
