//! The paper's worked examples (Figs. 6, 7, 8), codified as tests against
//! the public API. Each test mirrors one illustrated walkthrough.

use multiview_scheduler::assoc::{train_pair_model, AssociationEngine, CorrespondenceSample};
use multiview_scheduler::core::{
    balb_central, CameraId, CameraInfo, CameraMask, DistributedPolicy, MvsProblem, ObjectId,
    ObjectInfo,
};
use multiview_scheduler::geometry::{BBox, FrameDims, Grid, Point2, SizeClass};
use multiview_scheduler::vision::{DeviceKind, LatencyProfile, SizeProfile};
use std::collections::BTreeMap;

fn bb(x: f64, y: f64, w: f64, h: f64) -> BBox {
    BBox::new(x, y, x + w, y + h).unwrap()
}

/// Fig. 6 — cross-camera association walkthrough: `P11` on camera 1 is
/// classified visible on camera 2, regressed to a predicted location, and
/// Hungarian-matched to the most proximate detection (`P24`), not to the
/// other detections.
#[test]
fn fig6_association_matches_most_proximate_detection() {
    // Train a pair model: camera 2 sees camera 1's objects shifted by
    // (+300, +20) pixels.
    let samples: Vec<CorrespondenceSample> = (0..60)
        .map(|i| {
            let x = 20.0 * (i % 50) as f64;
            let y = 150.0 + 6.0 * (i % 7) as f64;
            CorrespondenceSample {
                src: bb(x, y, 60.0, 45.0),
                dst: Some(bb(x + 300.0, y + 20.0, 60.0, 45.0)),
            }
        })
        .collect();
    let model = train_pair_model(3, &samples).unwrap();
    let mut engine = AssociationEngine::new(2, 0.15);
    engine.insert_model(0, 1, model);

    // Camera 1 sees P11; camera 2 sees four detections, only one of which
    // (index 3, "P24") is near the predicted mapping of P11.
    let p11 = bb(200.0, 160.0, 60.0, 45.0);
    let cam2 = vec![
        bb(40.0, 160.0, 60.0, 45.0),  // P21, far left
        bb(900.0, 400.0, 60.0, 45.0), // P22, wrong corner
        bb(700.0, 160.0, 60.0, 45.0), // P23, right row but ~200 px off
        bb(505.0, 182.0, 60.0, 45.0), // P24, at the mapped location
    ];
    let globals = engine.associate(&[vec![p11], cam2]);
    let merged = globals
        .iter()
        .find(|g| g.members.len() == 2)
        .expect("P11 must match something");
    assert_eq!(merged.detection_on(0), Some(0));
    assert_eq!(merged.detection_on(1), Some(3), "P11 must match P24");
}

/// Fig. 7 — BALB central-stage walkthrough. A controlled two-camera
/// instance reproduces the four illustrated steps:
///   1/2. objects visible to only one camera get deterministic owners;
///   3.   a shared object joins camera 1's *incomplete batch* for free;
///   4.   the next shared object starts a new batch on the camera with the
///        minimum updated latency.
#[test]
fn fig7_central_stage_walkthrough() {
    // Identical custom devices: batch limit 2 per size, 10 ms per batch,
    // 100 ms full frame — small numbers that make every step observable.
    let size_profile = SizeProfile {
        batch_limit: 2,
        batch_latency_ms: 10.0,
    };
    let profile = LatencyProfile::custom(DeviceKind::Xavier, 100.0, [size_profile; 4]);
    let cameras = vec![
        CameraInfo {
            id: CameraId(0),
            profile: profile.clone(),
        },
        CameraInfo {
            id: CameraId(1),
            profile,
        },
    ];
    let s = SizeClass::S128;
    let objects = vec![
        // o1: only camera 1 — step 1.
        ObjectInfo {
            id: ObjectId(0),
            sizes: BTreeMap::from([(CameraId(0), s)]),
        },
        // o2: only camera 2 — step 2.
        ObjectInfo {
            id: ObjectId(1),
            sizes: BTreeMap::from([(CameraId(1), s)]),
        },
        // o3 and o4: visible to both — steps 3 and 4.
        ObjectInfo {
            id: ObjectId(2),
            sizes: BTreeMap::from([(CameraId(0), s), (CameraId(1), s)]),
        },
        ObjectInfo {
            id: ObjectId(3),
            sizes: BTreeMap::from([(CameraId(0), s), (CameraId(1), s)]),
        },
    ];
    let problem = MvsProblem::new(cameras, objects).unwrap();
    let schedule = balb_central(&problem);

    // Steps 1/2: deterministic assignments.
    assert_eq!(
        schedule.assignment.sole_owner(ObjectId(0)),
        Some(CameraId(0))
    );
    assert_eq!(
        schedule.assignment.sole_owner(ObjectId(1)),
        Some(CameraId(1))
    );
    // Step 3: o3 joins an incomplete batch (both cameras have one slot
    // free; the tie resolves to camera 0) without raising latency.
    assert_eq!(
        schedule.assignment.sole_owner(ObjectId(2)),
        Some(CameraId(0))
    );
    // Step 4: camera 0's batch is now full, camera 1 still has a slot —
    // o4 joins camera 1's incomplete batch.
    assert_eq!(
        schedule.assignment.sole_owner(ObjectId(3)),
        Some(CameraId(1))
    );
    // Final latencies: one 10 ms batch each on top of the 100 ms floor.
    assert_eq!(schedule.camera_latencies_ms, vec![110.0, 110.0]);
    assert_eq!(schedule.system_latency_ms(), 110.0);
}

/// Fig. 8 — camera-mask walkthrough: with the (increasing-latency) camera
/// order `c3 > c1 > c2` (i.e. priority c3 first), each camera only tracks
/// new objects at cells unobservable from higher-priority cameras; a new
/// vehicle in the region only c1 and c2 share goes to c1.
#[test]
fn fig8_masks_respect_priority_order() {
    // Mask for camera 1's frame (index 1). Priority: c3 (index 2) first,
    // then c1 (index 0)... the figure's naming maps to indices:
    // priority [c3, c1, c2] = [CameraId(2), CameraId(0), CameraId(1)].
    let priority = [CameraId(2), CameraId(0), CameraId(1)];
    let grid = Grid::new(FrameDims::new(300, 100), 50);
    // Camera 2 (highest priority) observes the left third of camera 0's
    // frame; camera 1 observes the middle and left thirds.
    let observed = |c: CameraId, p: Point2| match c {
        CameraId(2) => p.x < 100.0,
        CameraId(1) => p.x < 200.0,
        _ => false,
    };
    let mask_c1 = CameraMask::build(CameraId(0), grid, &priority, observed);
    // Left third: highest-priority c3 owns it.
    assert_eq!(mask_c1.owner_at(Point2::new(50.0, 50.0)), Some(CameraId(2)));
    // Middle third (shared by c1 and c2 only): c1 outranks c2 → the blue
    // vehicle appearing here is tracked by c1 (this camera).
    assert!(mask_c1.is_responsible_at(Point2::new(150.0, 50.0)));
    // Right third (exclusive to c1): also c1's responsibility.
    assert!(mask_c1.is_responsible_at(Point2::new(250.0, 50.0)));

    // The same decision through the distributed policy: for an object
    // covered by {c1, c2}, every camera agrees c1 tracks it.
    let policy = DistributedPolicy::new(priority.to_vec());
    assert_eq!(
        policy.select_owner([CameraId(0), CameraId(1)]),
        Some(CameraId(0))
    );
}

/// Claim 1's reduction sanity check: under the restrictions that make MVS
/// an identical-machine-scheduling problem (no batching, full visibility,
/// identical devices and sizes), the optimum equals the bin-packing bound
/// `ceil(N / M) * t` when all items are equal.
#[test]
fn claim1_identical_machine_special_case() {
    use multiview_scheduler::core::exact;
    let size_profile = SizeProfile {
        batch_limit: 1, // restriction 1: no batching
        batch_latency_ms: 10.0,
    };
    let profile = LatencyProfile::custom(DeviceKind::Nano, 100.0, [size_profile; 4]);
    let m = 3;
    let n = 7;
    let cameras: Vec<CameraInfo> = (0..m)
        .map(|i| CameraInfo {
            id: CameraId(i),
            profile: profile.clone(), // restriction 3: identical speeds
        })
        .collect();
    let objects: Vec<ObjectInfo> = (0..n)
        .map(|j| ObjectInfo {
            id: ObjectId(j),
            // restrictions 2 & 4: visible everywhere at one size.
            sizes: (0..m).map(|i| (CameraId(i), SizeClass::S64)).collect(),
        })
        .collect();
    let problem = MvsProblem::new(cameras, objects).unwrap();
    let opt = exact::solve(&problem, false, 10_000_000).unwrap();
    // ceil(7/3) = 3 items on the fullest machine, 10 ms each.
    assert_eq!(opt.system_latency_ms, 30.0);
    // And BALB achieves the same optimum here.
    let balb = balb_central(&problem);
    assert_eq!(balb.assignment.system_latency_ms(&problem, false), 30.0);
}
