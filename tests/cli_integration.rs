//! Integration tests for the `mvs` command-line binary, driven through the
//! real executable.

use std::process::Command;

fn mvs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mvs"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = mvs().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8 output");
    assert!(text.contains("USAGE"));
    assert!(text.contains("balb"));
    assert!(text.contains("--horizon"));
}

#[test]
fn no_arguments_also_prints_usage() {
    let out = mvs().output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = mvs().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "stderr: {err}");
}

#[test]
fn invalid_option_value_fails() {
    let out = mvs()
        .args(["run", "s1", "balb", "--horizon", "zero"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--horizon"));
}

#[test]
fn short_run_reports_metrics() {
    let out = mvs()
        .args([
            "run",
            "s2",
            "balb-ind",
            "--train-s",
            "10",
            "--eval-s",
            "5",
            "--seed",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("object recall"), "stdout: {text}");
    assert!(text.contains("mean latency"));
    assert!(text.contains("per-frame series"));
}

#[test]
fn workload_prints_one_sparkline_per_camera() {
    let out = mvs()
        .args(["workload", "s2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let camera_lines = text
        .lines()
        .filter(|l| l.trim_start().starts_with('c'))
        .count();
    assert_eq!(camera_lines, 2, "stdout: {text}");
}
