//! End-to-end integration tests: the complete pipeline run on real
//! scenarios, checking the paper's qualitative findings hold.
//!
//! These use shortened simulation spans so the whole suite stays fast; the
//! full-length runs live in the `mvs-bench` experiment binaries.

use multiview_scheduler::sim::{run_pipeline, Algorithm, PipelineConfig, Scenario, ScenarioKind};

fn quick(algorithm: Algorithm) -> PipelineConfig {
    PipelineConfig {
        train_s: 40.0,
        eval_s: 40.0,
        ..PipelineConfig::paper_default(algorithm)
    }
}

#[test]
fn balb_speeds_up_every_scenario() {
    for kind in ScenarioKind::ALL {
        let scenario = Scenario::new(kind);
        let full = run_pipeline(&scenario, &quick(Algorithm::Full));
        let balb = run_pipeline(&scenario, &quick(Algorithm::Balb));
        let speedup = full.mean_latency_ms / balb.mean_latency_ms;
        assert!(
            speedup > 2.0,
            "{kind}: BALB speedup only {speedup:.2}x over Full"
        );
    }
}

#[test]
fn full_baseline_latency_is_the_slowest_device() {
    // Every scenario includes a Nano (650 ms full-frame).
    for kind in ScenarioKind::ALL {
        let scenario = Scenario::new(kind);
        let full = run_pipeline(&scenario, &quick(Algorithm::Full));
        assert!((full.mean_latency_ms - 650.0).abs() < 1e-9, "{kind}");
    }
}

#[test]
fn recall_ordering_matches_figure_12() {
    // Full and BALB-Ind bound recall from above; the distributed stage
    // recovers most of BALB-Cen's losses; SP trails BALB.
    let scenario = Scenario::new(ScenarioKind::S2);
    let full = run_pipeline(&scenario, &quick(Algorithm::Full));
    let ind = run_pipeline(&scenario, &quick(Algorithm::BalbInd));
    let cen = run_pipeline(&scenario, &quick(Algorithm::BalbCen));
    let balb = run_pipeline(&scenario, &quick(Algorithm::Balb));
    let sp = run_pipeline(&scenario, &quick(Algorithm::StaticPartition));
    assert!(full.recall > 0.9, "full {}", full.recall);
    assert!(ind.recall > 0.9, "ind {}", ind.recall);
    assert!(
        balb.recall > cen.recall,
        "balb {} cen {}",
        balb.recall,
        cen.recall
    );
    assert!(
        balb.recall > sp.recall,
        "balb {} sp {}",
        balb.recall,
        sp.recall
    );
}

#[test]
fn distributed_stage_helps_most_when_traffic_is_busy() {
    // The paper: BALB-Cen degrades under busy traffic (S3); the
    // distributed stage recovers it.
    let scenario = Scenario::new(ScenarioKind::S3);
    let cen = run_pipeline(&scenario, &quick(Algorithm::BalbCen));
    let balb = run_pipeline(&scenario, &quick(Algorithm::Balb));
    assert!(
        balb.recall >= cen.recall + 0.02,
        "distributed stage gained only {} → {}",
        cen.recall,
        balb.recall
    );
}

#[test]
fn longer_horizons_trade_recall_for_latency() {
    let scenario = Scenario::new(ScenarioKind::S2);
    let mut short = quick(Algorithm::Balb);
    short.horizon = 2;
    let mut long = quick(Algorithm::Balb);
    long.horizon = 20;
    let short_r = run_pipeline(&scenario, &short);
    let long_r = run_pipeline(&scenario, &long);
    assert!(
        long_r.mean_latency_ms < short_r.mean_latency_ms,
        "long horizon must amortize key frames: {} vs {}",
        long_r.mean_latency_ms,
        short_r.mean_latency_ms
    );
    assert!(
        short_r.recall >= long_r.recall - 0.01,
        "short horizon must not lose recall: {} vs {}",
        short_r.recall,
        long_r.recall
    );
}

#[test]
fn batching_contributes_to_the_speedup() {
    let scenario = Scenario::new(ScenarioKind::S1);
    let batched = run_pipeline(&scenario, &quick(Algorithm::Balb));
    let mut config = quick(Algorithm::Balb);
    config.disable_batching = true;
    let serial = run_pipeline(&scenario, &config);
    assert!(
        serial.mean_latency_ms > batched.mean_latency_ms * 1.1,
        "batching gain too small: {} vs {}",
        serial.mean_latency_ms,
        batched.mean_latency_ms
    );
}

#[test]
fn pipeline_is_deterministic() {
    let scenario = Scenario::new(ScenarioKind::S2);
    let a = run_pipeline(&scenario, &quick(Algorithm::Balb));
    let b = run_pipeline(&scenario, &quick(Algorithm::Balb));
    assert_eq!(a.recall, b.recall);
    assert_eq!(a.latency.samples_ms(), b.latency.samples_ms());
    assert_eq!(a.per_camera_mean_ms, b.per_camera_mean_ms);
}

#[test]
fn changing_the_seed_changes_the_traffic_but_not_the_conclusions() {
    let scenario = Scenario::new(ScenarioKind::S2);
    let mut other = quick(Algorithm::Balb);
    other.seed = 20_000;
    let a = run_pipeline(&scenario, &quick(Algorithm::Balb));
    let b = run_pipeline(&scenario, &other);
    assert_ne!(a.latency.samples_ms(), b.latency.samples_ms());
    // Different traffic, same qualitative regime.
    assert!(b.recall > 0.85, "seeded run recall {}", b.recall);
    assert!(b.mean_latency_ms < 400.0);
}

#[test]
fn per_frame_series_has_one_sample_per_frame() {
    let scenario = Scenario::new(ScenarioKind::S2);
    let result = run_pipeline(&scenario, &quick(Algorithm::Balb));
    assert_eq!(result.latency.len(), result.frames);
    assert_eq!(result.frames, 400); // 40 s at 10 FPS
                                    // Key frames (every 10th) carry the full-frame cost of the Nano.
    let samples = result.latency.samples_ms();
    for (i, &v) in samples.iter().enumerate() {
        if i % 10 == 0 {
            assert!((v - 650.0).abs() < 1e-9, "frame {i} should be a key frame");
        } else {
            assert!(v < 650.0, "regular frame {i} at {v} ms");
        }
    }
}

#[test]
fn overhead_breakdown_is_within_paper_magnitudes() {
    let scenario = Scenario::new(ScenarioKind::S1);
    let result = run_pipeline(&scenario, &quick(Algorithm::Balb));
    let oh = result.overhead_mean;
    assert!(
        oh.total_ms() > 5.0 && oh.total_ms() < 60.0,
        "total {}",
        oh.total_ms()
    );
    // The scheduler itself is cheap (the paper's headline overhead
    // claim). Measured wall-clock: allow debug-build slack.
    assert!(
        oh.distributed_ms < 10.0,
        "distributed {}",
        oh.distributed_ms
    );
    assert!(oh.central_ms < 20.0, "central {}", oh.central_ms);
}

#[test]
fn redundant_assignment_raises_recall_and_latency() {
    // The Sec. V extension: assigning each object to two cameras buys
    // occlusion robustness at a latency cost.
    let scenario = Scenario::new(ScenarioKind::S1);
    let single = run_pipeline(&scenario, &quick(Algorithm::Balb));
    let mut config = quick(Algorithm::Balb);
    config.redundancy = 2;
    let double = run_pipeline(&scenario, &config);
    assert!(
        double.recall >= single.recall,
        "redundancy lost recall: {} vs {}",
        double.recall,
        single.recall
    );
    assert!(
        double.mean_latency_ms > single.mean_latency_ms,
        "redundancy should cost latency: {} vs {}",
        double.mean_latency_ms,
        single.mean_latency_ms
    );
}

#[test]
fn degraded_detector_degrades_recall_gracefully() {
    // Failure injection: a detector that misses a third of everything must
    // lower recall but never break the pipeline or blow up latency.
    let scenario = Scenario::new(ScenarioKind::S2);
    let healthy = run_pipeline(&scenario, &quick(Algorithm::Balb));
    let mut config = quick(Algorithm::Balb);
    config.detection.base_miss_rate = 0.35;
    let degraded = run_pipeline(&scenario, &config);
    assert!(degraded.recall < healthy.recall);
    assert!(
        degraded.recall > 0.3,
        "recall collapsed: {}",
        degraded.recall
    );
    assert!(degraded.mean_latency_ms < 650.0);
}

#[test]
fn noisy_flow_hurts_but_does_not_break_tracking() {
    // Failure injection: very noisy optical flow (10 px sigma) makes the
    // predicted crops drift and fires spurious motion clusters. The robust,
    // seed-independent signature is wasted work — the probing path explodes
    // to cover phantom motion — while recall stays high precisely *because*
    // probing catches what the drifted crops miss. (Recall itself can move
    // either way by a few points depending on the seed, so we assert the
    // mechanism, not a marginal recall delta.)
    let scenario = Scenario::new(ScenarioKind::S2);
    let clean = run_pipeline(&scenario, &quick(Algorithm::Balb));
    let mut config = quick(Algorithm::Balb);
    config.flow_noise_px = 10.0;
    let noisy = run_pipeline(&scenario, &config);
    assert!(
        noisy.stats.probes > 2 * clean.stats.probes,
        "flow noise should inflate probing: {} vs {}",
        noisy.stats.probes,
        clean.stats.probes
    );
    assert!(noisy.recall > 0.5, "recall collapsed: {}", noisy.recall);
}

#[test]
fn horizon_one_degenerates_to_keyframes_only() {
    // T = 1 means every frame is a key frame: latency equals Full plus the
    // central-stage overhead, and recall approaches the Full bound.
    let scenario = Scenario::new(ScenarioKind::S2);
    let mut config = quick(Algorithm::Balb);
    config.horizon = 1;
    config.eval_s = 20.0;
    let result = run_pipeline(&scenario, &config);
    assert!((result.mean_latency_ms - 650.0).abs() < 1e-9);
    assert!(result.recall > 0.9);
}

#[test]
fn camera_lag_degrades_recall() {
    // Sec. V "imperfect synchronization": a lagged camera answers for a
    // stale scene, losing just-entered objects.
    let scenario = Scenario::new(ScenarioKind::S2);
    let synced = run_pipeline(&scenario, &quick(Algorithm::Balb));
    let mut cfg = quick(Algorithm::Balb);
    cfg.camera_lag_frames = vec![0, 8];
    let lagged = run_pipeline(&scenario, &cfg);
    assert!(
        lagged.recall < synced.recall,
        "lag should cost recall: {} vs {}",
        lagged.recall,
        synced.recall
    );
    assert!(lagged.recall > 0.7, "recall collapsed: {}", lagged.recall);
}

#[test]
fn thread_count_is_invisible_in_results() {
    // The parallel camera engine's contract: a run is a pure function of
    // (scenario, config) — the thread count only changes wall-clock time.
    // With measured overheads off the whole PipelineResult is comparable
    // bitwise.
    let scenario = Scenario::new(ScenarioKind::S1);
    let cpus = std::thread::available_parallelism().map_or(4, |n| n.get());
    let run_at = |threads: usize| {
        let mut config = PipelineConfig {
            train_s: 30.0,
            eval_s: 20.0,
            ..PipelineConfig::paper_default(Algorithm::Balb)
        };
        config.measured_overheads = false;
        config.threads = threads;
        run_pipeline(&scenario, &config)
    };
    let serial = run_at(1);
    for threads in [2, cpus] {
        assert_eq!(serial, run_at(threads), "threads={threads}");
    }
}
