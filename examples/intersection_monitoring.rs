//! Intersection monitoring: watch the BALB central stage rebalance the
//! object→camera assignment as platoons move through a signalized
//! intersection.
//!
//! This example drives the *library* APIs directly (world → projection →
//! association → scheduling) rather than using the packaged pipeline, to
//! show how the pieces compose.
//!
//! ```sh
//! cargo run --release --example intersection_monitoring
//! ```

use multiview_scheduler::core::{
    balb_central, CameraId, CameraInfo, MvsProblem, ObjectId, ObjectInfo,
};
use multiview_scheduler::geometry::SizeClass;
use multiview_scheduler::sim::{CorrespondenceData, Scenario, ScenarioKind, TrainedAssociation};
use multiview_scheduler::vision::LatencyProfile;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

fn main() {
    let scenario = Scenario::new(ScenarioKind::S1);
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    println!("training cross-camera association models (offline stage)…");
    let data = CorrespondenceData::collect(&scenario, 60.0, 2, &mut rng);
    let trained = TrainedAssociation::train(scenario.num_cameras(), &data, 3, 0.15)
        .expect("the scenario produces trainable data");
    println!("  {} labeled correspondences collected\n", data.len());

    let profiles: Vec<LatencyProfile> = scenario
        .devices
        .iter()
        .map(|&d| LatencyProfile::for_device(d))
        .collect();

    // Simulate a minute and schedule a key frame every 5 seconds.
    let mut world = scenario.warmed_world(45.0, &mut rng);
    for round in 0..12 {
        for _ in 0..50 {
            world.step(scenario.frame_dt_s(), &mut rng);
        }
        // Project ground truth into every camera and associate.
        let views: Vec<Vec<_>> = scenario
            .cameras
            .iter()
            .map(|c| c.visible_objects(&world, scenario.occlusion_threshold))
            .collect();
        let boxes: Vec<Vec<_>> = views
            .iter()
            .map(|v| v.iter().map(|g| g.bbox).collect())
            .collect();
        let globals = trained.engine.associate(&boxes);

        // Build the MVS instance and run the BALB central stage.
        let cameras: Vec<CameraInfo> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| CameraInfo {
                id: CameraId(i),
                profile: p.clone(),
            })
            .collect();
        let objects: Vec<ObjectInfo> = globals
            .iter()
            .enumerate()
            .map(|(g, go)| ObjectInfo {
                id: ObjectId(g),
                sizes: go
                    .members
                    .iter()
                    .map(|&(cam, det)| {
                        let b = boxes[cam][det];
                        (
                            CameraId(cam),
                            SizeClass::quantize(b.width() * 1.25, b.height() * 1.25),
                        )
                    })
                    .collect::<BTreeMap<_, _>>(),
            })
            .collect();
        if objects.is_empty() {
            println!("t={:>5.1}s  no objects in view", world.time_s());
            continue;
        }
        let problem = MvsProblem::new(cameras, objects).expect("valid instance");
        let schedule = balb_central(&problem);

        let mut per_camera = vec![0usize; scenario.num_cameras()];
        for g in 0..problem.num_objects() {
            if let Some(owner) = schedule.assignment.sole_owner(ObjectId(g)) {
                per_camera[owner.0] += 1;
            }
        }
        println!(
            "t={:>5.1}s  {:>2} objects  assignment per camera {:?}  max latency {:>6.1} ms",
            world.time_s(),
            problem.num_objects(),
            per_camera,
            schedule.system_latency_ms(),
        );
        let _ = round;
    }
    println!("\nNote how the assignment shifts between cameras as the signal phases");
    println!("move platoons through different fields of view (the Fig. 2 dynamics).");
}
