//! Heterogeneous fleet: how BALB exploits device heterogeneity.
//!
//! Builds standalone MVS instances over fleets with different device
//! mixes and compares BALB against the exact optimum and the static
//! baseline — no simulation, pure scheduling.
//!
//! ```sh
//! cargo run --release --example heterogeneous_fleet
//! ```

use multiview_scheduler::core::{
    balb_central, baselines, exact, CameraId, CameraInfo, MvsProblem, ObjectId, ObjectInfo,
};
use multiview_scheduler::geometry::SizeClass;
use multiview_scheduler::vision::{DeviceKind, LatencyProfile};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Builds a random instance over an explicit device fleet: every object is
/// visible from a random subset of cameras with perspective-dependent
/// sizes.
fn instance<R: Rng>(devices: &[DeviceKind], objects: usize, rng: &mut R) -> MvsProblem {
    let cameras: Vec<CameraInfo> = devices
        .iter()
        .enumerate()
        .map(|(i, &d)| CameraInfo {
            id: CameraId(i),
            profile: LatencyProfile::for_device(d),
        })
        .collect();
    let objects: Vec<ObjectInfo> = (0..objects)
        .map(|j| {
            let mut sizes = BTreeMap::new();
            let primary = rng.gen_range(0..devices.len());
            sizes.insert(CameraId(primary), random_size(rng));
            for c in 0..devices.len() {
                if c != primary && rng.gen_bool(0.5) {
                    sizes.insert(CameraId(c), random_size(rng));
                }
            }
            ObjectInfo {
                id: ObjectId(j),
                sizes,
            }
        })
        .collect();
    MvsProblem::new(cameras, objects).expect("constructed instances are valid")
}

fn random_size<R: Rng>(rng: &mut R) -> SizeClass {
    let sizes = [
        SizeClass::S64,
        SizeClass::S128,
        SizeClass::S256,
        SizeClass::S512,
    ];
    sizes[rng.gen_range(0..10usize).min(3)]
}

fn main() {
    let fleets: [(&str, Vec<DeviceKind>); 3] = [
        ("3x Xavier (homogeneous)", vec![DeviceKind::Xavier; 3]),
        (
            "Xavier + TX2 + Nano (paper's S3)",
            vec![DeviceKind::Xavier, DeviceKind::Tx2, DeviceKind::Nano],
        ),
        ("3x Nano (weak homogeneous)", vec![DeviceKind::Nano; 3]),
    ];
    println!("fleet                             BALB      optimal   SP        BALB/opt");
    println!("{}", "-".repeat(78));
    for (name, devices) in fleets {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (mut balb_sum, mut opt_sum, mut sp_sum) = (0.0, 0.0, 0.0);
        let trials = 20;
        for _ in 0..trials {
            let p = instance(&devices, 10, &mut rng);
            balb_sum += balb_central(&p).system_latency_ms();
            opt_sum += exact::solve(&p, true, 10_000_000)
                .expect("small instances solve exactly")
                .system_latency_ms;
            sp_sum += baselines::static_partition_by_id(&p).system_latency_ms(&p, true);
        }
        let n = trials as f64;
        println!(
            "{name:<32}  {:>7.1}  {:>7.1}  {:>7.1}   {:.3}",
            balb_sum / n,
            opt_sum / n,
            sp_sum / n,
            balb_sum / opt_sum
        );
    }
    println!("\nBALB tracks the optimum closely and its advantage over the static");
    println!("partition grows with device heterogeneity — the load-and-resource-aware");
    println!("assignment matters most when cameras differ in processing power.");
}
