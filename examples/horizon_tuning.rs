//! Horizon tuning: explore the recall/latency trade-off of the scheduling
//! horizon `T` on the sparse residential scenario (the Fig. 14 experiment
//! in miniature).
//!
//! ```sh
//! cargo run --release --example horizon_tuning
//! ```

use multiview_scheduler::sim::{run_pipeline, Algorithm, PipelineConfig, Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::new(ScenarioKind::S2);
    println!("Scheduling-horizon sweep on S2 (Xavier + Nano, sparse traffic)\n");
    println!("  T    key-frame share   latency (ms)   recall");
    println!("  {}", "-".repeat(46));
    for horizon in [2usize, 5, 10, 20, 30] {
        let config = PipelineConfig {
            horizon,
            train_s: 40.0,
            eval_s: 40.0,
            ..PipelineConfig::paper_default(Algorithm::Balb)
        };
        let result = run_pipeline(&scenario, &config);
        println!(
            "  {horizon:<4} {:>10.0} %    {:>10.1}    {:.3}",
            100.0 / horizon as f64,
            result.mean_latency_ms,
            result.recall
        );
    }
    println!("\nShort horizons re-run expensive full-frame inspections often (high");
    println!("latency, best recall); long horizons amortize them but let tracking");
    println!("drift and missed arrivals accumulate. The paper picks T = 10.");
}
