//! Quickstart: run the complete BALB pipeline on the S1 intersection
//! scenario and compare it against full-frame inspection.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use multiview_scheduler::sim::{run_pipeline, Algorithm, PipelineConfig, Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::new(ScenarioKind::S1);
    println!(
        "Scenario S1: {} cameras around a signalized intersection",
        scenario.num_cameras()
    );
    for (i, device) in scenario.devices.iter().enumerate() {
        println!("  camera {i}: {device}");
    }

    // Keep the demo snappy: shorter training/eval spans than the full
    // experiment harness.
    let mut full_config = PipelineConfig::paper_default(Algorithm::Full);
    full_config.train_s = 30.0;
    full_config.eval_s = 30.0;
    let mut balb_config = full_config.clone();
    balb_config.algorithm = Algorithm::Balb;

    println!("\nrunning Full (full-frame inspection everywhere)…");
    let full = run_pipeline(&scenario, &full_config);
    println!("running BALB (the paper's scheduler)…");
    let balb = run_pipeline(&scenario, &balb_config);

    println!("\n              latency     recall");
    println!(
        "  Full     {:8.1} ms   {:.3}",
        full.mean_latency_ms, full.recall
    );
    println!(
        "  BALB     {:8.1} ms   {:.3}",
        balb.mean_latency_ms, balb.recall
    );
    println!(
        "\nBALB speedup over Full: {:.2}x (paper reports 6.85x on its S1 testbed)",
        full.mean_latency_ms / balb.mean_latency_ms
    );
}
