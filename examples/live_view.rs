//! Live view: watch one camera of the S1 intersection in ASCII while the
//! tracker follows vehicles between key frames.
//!
//! ```sh
//! cargo run --release --example live_view
//! ```

use multiview_scheduler::sim::{render_ascii, Scenario, ScenarioKind};
use multiview_scheduler::vision::{
    DetectionModel, FlowField, FlowTracker, SimulatedDetector, TrackerConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let scenario = Scenario::new(ScenarioKind::S1);
    let camera = &scenario.cameras[0];
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut world = scenario.warmed_world(60.0, &mut rng);
    let detector = SimulatedDetector::new(DetectionModel::default(), camera.frame);
    let mut tracker = FlowTracker::new(TrackerConfig::default(), camera.frame);

    let mut prev = camera.visible_objects(&world, scenario.occlusion_threshold);
    // Key frame: full inspection seeds the tracker.
    for d in detector.detect_full_frame(&prev, &mut rng) {
        tracker.seed(d.bbox, d.truth_id);
    }
    println!(
        "camera 0 of S1 ({}) — `#` ground truth, `*` tracks, `@` overlap\n",
        scenario.devices[0]
    );
    for frame in 0..6 {
        // Advance half a second between displayed frames.
        for _ in 0..5 {
            world.step(scenario.frame_dt_s(), &mut rng);
            let curr = camera.visible_objects(&world, scenario.occlusion_threshold);
            let flow = FlowField::estimate(&prev, &curr, 1.0, &mut rng);
            tracker.predict(&flow);
            prev = curr;
        }
        let gt: Vec<_> = prev.iter().map(|g| g.bbox).collect();
        let tracked: Vec<_> = tracker.tracks().iter().map(|t| t.bbox).collect();
        println!(
            "t = +{:.1}s   {} vehicles visible, {} tracked",
            (frame + 1) as f64 * 0.5,
            gt.len(),
            tracked.len()
        );
        println!("{}\n", render_ascii(camera.frame, &gt, &tracked, 88, 20));
    }
    println!("Tracks drift between detections; the pipeline's partial-frame");
    println!("inspections (not run here) would re-anchor them each frame.");
}
