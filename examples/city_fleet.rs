//! City-scale fleet: sharded scheduling over the camera overlap graph.
//!
//! Generates a procedural city scenario, snapshots one key-frame
//! scheduling instance out of its warmed world, builds the camera overlap
//! graph, partitions it into view-overlap shards, and shows that the
//! sharded solve reproduces the monolithic `balb_central` schedule
//! bit-for-bit while decomposing the work into dozens of independent
//! per-district solves.
//!
//! ```sh
//! cargo run --release --example city_fleet
//! ```

use multiview_scheduler::core::{
    balb_central, balb_sharded, CameraId, CameraInfo, MvsProblem, ObjectId, ObjectInfo,
    OverlapGraph, ShardPlan,
};
use multiview_scheduler::geometry::SizeClass;
use multiview_scheduler::sim::{CityConfig, Scenario};
use multiview_scheduler::vision::LatencyProfile;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// One key-frame MVS instance from a warmed city world: every object
/// visible somewhere becomes a schedulable object whose per-camera crop
/// sizes come from the true projected boxes.
fn snapshot(scenario: &Scenario, rng: &mut ChaCha8Rng) -> MvsProblem {
    let world = scenario.warmed_world(60.0, rng);
    let cameras: Vec<CameraInfo> = scenario
        .devices
        .iter()
        .enumerate()
        .map(|(i, &d)| CameraInfo {
            id: CameraId(i),
            profile: LatencyProfile::for_device(d),
        })
        .collect();
    let mut sizes_by_truth: BTreeMap<u64, BTreeMap<CameraId, SizeClass>> = BTreeMap::new();
    for (cam, model) in scenario.cameras.iter().enumerate() {
        for truth in model.visible_objects(&world, scenario.occlusion_threshold) {
            sizes_by_truth.entry(truth.id).or_default().insert(
                CameraId(cam),
                SizeClass::quantize(truth.bbox.width(), truth.bbox.height()),
            );
        }
    }
    let objects: Vec<ObjectInfo> = sizes_by_truth
        .into_values()
        .enumerate()
        .map(|(j, sizes)| ObjectInfo {
            id: ObjectId(j),
            sizes,
        })
        .collect();
    MvsProblem::new(cameras, objects).expect("city snapshots are valid instances")
}

fn main() {
    let config = CityConfig {
        cameras: 128,
        seed: 17,
        intensity: 2.0,
    };
    let scenario = Scenario::city(&config);
    println!(
        "city: {} cameras in {} districts, intensity {:.1}",
        config.cameras,
        config.districts(),
        config.intensity
    );

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let problem = snapshot(&scenario, &mut rng);
    println!(
        "key-frame instance: {} objects over {} cameras",
        problem.num_objects(),
        problem.num_cameras()
    );

    // Partition the fleet along the camera overlap graph. City districts
    // are far apart, so each district's cameras form one component.
    let graph = OverlapGraph::from_problem(&problem);
    let plan = ShardPlan::from_components(&graph);
    println!(
        "overlap graph: {} edges -> {} shards (largest {} cameras, exact: {})",
        graph.num_edges(),
        plan.num_shards(),
        plan.largest_shard(),
        plan.is_exact()
    );

    // The sharded schedule is bitwise identical to the monolithic one on
    // exact (whole-component) plans — same assignment, same priorities,
    // bit-equal latencies — while the solve decomposes into independent
    // per-shard passes that parallelize across the scoped thread pool.
    let central = balb_central(&problem);
    let sharded = balb_sharded(&problem, &plan);
    assert_eq!(central.assignment, sharded.assignment);
    assert_eq!(central.priority, sharded.priority);
    let bits = |s: &multiview_scheduler::core::BalbSchedule| {
        s.camera_latencies_ms
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(&central), bits(&sharded));
    println!(
        "sharded == central bit-for-bit; system latency {:.1} ms",
        sharded.system_latency_ms()
    );

    // Per-shard object counts: the decomposition the parallel solver runs.
    let mut per_shard = vec![0usize; plan.num_shards()];
    for object in problem.objects() {
        let camera = object.coverage().next().expect("coverage is non-empty");
        per_shard[plan.shard_of(camera)] += 1;
    }
    let busiest = per_shard.iter().max().copied().unwrap_or(0);
    println!(
        "objects per shard: min {}, max {}, mean {:.1}",
        per_shard.iter().min().copied().unwrap_or(0),
        busiest,
        problem.num_objects() as f64 / plan.num_shards().max(1) as f64
    );
    println!(
        "\neach shard is an independent BALB instance roughly 1/{}th the fleet —",
        plan.num_shards()
    );
    println!("the parallel solver scales with districts, not with the whole city.");
}
