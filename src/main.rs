//! `mvs` — command-line front end for the multi-view scheduling pipeline.
//!
//! ```text
//! mvs run <scenario> <algorithm> [options]   run one pipeline configuration
//! mvs compare <scenario> [options]           run every algorithm side by side
//! mvs workload <scenario>                    per-camera workload series (Fig. 2)
//! mvs serve [serve options]                  multi-tenant serving event loop
//! ```
//!
//! Scenarios: the paper presets `s1`, `s2`, `s3`, plus `city` — a
//! procedural city-scale fleet sized by `--cameras`/`--intensity`.
//! Algorithms: `full`, `balb`, `balb-ind`, `balb-cen`, `sp`, `sp-oracle`.
//! Options: `--horizon N`, `--train-s S`, `--eval-s S`, `--seed N`,
//! `--redundancy N`, `--no-batching`, `--no-warm-start`, `--threads N`,
//! `--trace DIR`, `--cameras N`, `--intensity X`, `--shard-solver`.

use multiview_scheduler::metrics::{sparkline_fit, TextTable};
use multiview_scheduler::sim::{
    run_pipeline, run_pipeline_traced, run_serve, run_serve_traced, AdmissionDecision, Algorithm,
    CityConfig, PipelineConfig, Scenario, ScenarioKind, ServeReport,
};
use multiview_scheduler::trace::Trace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

mod cli {
    //! Hand-rolled argument parsing (kept dependency-free and testable).
    //!
    //! Options are validated against the command and scenario they are
    //! given with: a flag that exists but does not apply (`--intensity` on
    //! the fixed-geometry `s1` preset, any option after `workload`) is an
    //! error, not a silent no-op — a typo'd invocation should fail loudly
    //! rather than measure something other than what was asked.

    use multiview_scheduler::sim::{
        Algorithm, CityConfig, FaultModel, PoolDegrade, ScenarioKind, ServeConfig,
    };

    /// A parsed invocation.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Command {
        /// Run one algorithm on one scenario.
        Run {
            /// Scenario under test.
            scenario: ScenarioKind,
            /// Algorithm under test.
            algorithm: Algorithm,
            /// Common tuning options.
            options: Options,
        },
        /// Run every algorithm on one scenario.
        Compare {
            /// Scenario under test.
            scenario: ScenarioKind,
            /// Common tuning options.
            options: Options,
        },
        /// Print the per-camera workload series.
        Workload {
            /// Scenario under test.
            scenario: ScenarioKind,
        },
        /// Run the multi-tenant serving event loop.
        Serve {
            /// Full serving configuration.
            config: ServeConfig,
            /// When set, write per-tenant trace exports into this
            /// directory.
            trace_dir: Option<String>,
        },
        /// Print usage.
        Help,
    }

    /// Tunables shared by `run` and `compare`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Options {
        pub horizon: usize,
        pub train_s: f64,
        pub eval_s: f64,
        pub seed: u64,
        pub redundancy: usize,
        pub disable_batching: bool,
        /// Cold-solve every key frame instead of warm-starting the central
        /// stage from the previous horizon (results are identical; this
        /// only trades compute).
        pub no_warm_start: bool,
        pub threads: usize,
        /// When set, record per-stage spans and write the trace exports
        /// (Chrome JSON, Prometheus text, golden text) into this directory.
        pub trace_dir: Option<String>,
        /// Fleet size of the `city` scenario (ignored by the paper
        /// presets, whose camera counts are fixed).
        pub cameras: usize,
        /// Traffic intensity multiplier of the `city` scenario.
        pub intensity: f64,
        /// Solve key frames shard-by-shard over the camera overlap graph
        /// instead of monolithically (identical schedules; compute-only
        /// knob for large fleets).
        pub shard_solver: bool,
        /// Overlap the central solve with uplink-leg encoding on key
        /// frames (identical results; wall-clock-only knob).
        pub pipelined: bool,
    }

    impl Default for Options {
        fn default() -> Self {
            Options {
                horizon: 10,
                train_s: 60.0,
                eval_s: 60.0,
                seed: 17,
                redundancy: 1,
                disable_batching: false,
                no_warm_start: false,
                threads: 0,
                trace_dir: None,
                cameras: CityConfig::default().cameras,
                intensity: 1.0,
                shard_solver: false,
                pipelined: false,
            }
        }
    }

    /// Parses `args` (without the program name).
    pub fn parse(args: &[String]) -> Result<Command, String> {
        let mut it = args.iter();
        let Some(cmd) = it.next() else {
            return Ok(Command::Help);
        };
        match cmd.as_str() {
            "-h" | "--help" | "help" => Ok(Command::Help),
            "run" => {
                let scenario = parse_scenario(it.next())?;
                let algorithm = parse_algorithm(it.next())?;
                let options = parse_options(scenario, it.as_slice())?;
                Ok(Command::Run {
                    scenario,
                    algorithm,
                    options,
                })
            }
            "compare" => {
                let scenario = parse_scenario(it.next())?;
                let options = parse_options(scenario, it.as_slice())?;
                Ok(Command::Compare { scenario, options })
            }
            "workload" => {
                let scenario = parse_scenario(it.next())?;
                if let Some(extra) = it.next() {
                    return Err(format!("`workload` takes no options, got `{extra}`"));
                }
                Ok(Command::Workload { scenario })
            }
            "serve" => {
                let (config, trace_dir) = parse_serve_options(it.as_slice())?;
                Ok(Command::Serve { config, trace_dir })
            }
            other => Err(format!("unknown command `{other}`; try --help")),
        }
    }

    fn parse_scenario(arg: Option<&String>) -> Result<ScenarioKind, String> {
        match arg.map(String::as_str) {
            Some("s1") | Some("S1") => Ok(ScenarioKind::S1),
            Some("s2") | Some("S2") => Ok(ScenarioKind::S2),
            Some("s3") | Some("S3") => Ok(ScenarioKind::S3),
            Some("city") => Ok(ScenarioKind::City),
            Some(other) => Err(format!(
                "unknown scenario `{other}` (expected s1|s2|s3|city)"
            )),
            None => Err("missing scenario (expected s1|s2|s3|city)".to_string()),
        }
    }

    fn parse_algorithm(arg: Option<&String>) -> Result<Algorithm, String> {
        match arg.map(String::as_str) {
            Some("full") => Ok(Algorithm::Full),
            Some("balb") => Ok(Algorithm::Balb),
            Some("balb-ind") => Ok(Algorithm::BalbInd),
            Some("balb-cen") => Ok(Algorithm::BalbCen),
            Some("sp") => Ok(Algorithm::StaticPartition),
            Some("sp-oracle") => Ok(Algorithm::StaticPartitionOracle),
            Some(other) => Err(format!(
                "unknown algorithm `{other}` (expected full|balb|balb-ind|balb-cen|sp|sp-oracle)"
            )),
            None => Err("missing algorithm".to_string()),
        }
    }

    fn parse_options(scenario: ScenarioKind, rest: &[String]) -> Result<Options, String> {
        let mut options = Options::default();
        // Flags that only make sense for the procedural city scenario —
        // the paper presets have fixed geometry and traffic, so accepting
        // these silently would run something other than what was asked.
        let city_only = |flag: &str| {
            if scenario == ScenarioKind::City {
                Ok(())
            } else {
                Err(format!(
                    "{flag} only applies to the `city` scenario, not `{scenario:?}`"
                ))
            }
        };
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--horizon" => {
                    options.horizon = value("--horizon")?
                        .parse()
                        .map_err(|e| format!("--horizon: {e}"))?;
                    if options.horizon == 0 {
                        return Err("--horizon must be positive".to_string());
                    }
                }
                "--train-s" => {
                    options.train_s = value("--train-s")?
                        .parse()
                        .map_err(|e| format!("--train-s: {e}"))?;
                }
                "--eval-s" => {
                    options.eval_s = value("--eval-s")?
                        .parse()
                        .map_err(|e| format!("--eval-s: {e}"))?;
                }
                "--seed" => {
                    options.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--redundancy" => {
                    options.redundancy = value("--redundancy")?
                        .parse()
                        .map_err(|e| format!("--redundancy: {e}"))?;
                    if options.redundancy == 0 {
                        return Err("--redundancy must be positive".to_string());
                    }
                }
                "--no-batching" => options.disable_batching = true,
                "--no-warm-start" => options.no_warm_start = true,
                "--shard-solver" => options.shard_solver = true,
                "--pipelined" => options.pipelined = true,
                "--trace" => options.trace_dir = Some(value("--trace")?),
                "--cameras" => {
                    city_only("--cameras")?;
                    options.cameras = value("--cameras")?
                        .parse()
                        .map_err(|e| format!("--cameras: {e}"))?;
                    if options.cameras == 0 {
                        return Err("--cameras must be positive".to_string());
                    }
                }
                "--intensity" => {
                    city_only("--intensity")?;
                    options.intensity = value("--intensity")?
                        .parse()
                        .map_err(|e| format!("--intensity: {e}"))?;
                    if !(options.intensity.is_finite() && options.intensity > 0.0) {
                        return Err("--intensity must be positive and finite".to_string());
                    }
                }
                "--threads" => {
                    options.threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(options)
    }

    /// Parses `mvs serve` options into a [`ServeConfig`] plus an optional
    /// trace directory. Serving has its own flag set — pipeline-tuning
    /// flags like `--horizon` or `--eval-s` are rejected here just like
    /// serve flags are rejected on `run`.
    fn parse_serve_options(rest: &[String]) -> Result<(ServeConfig, Option<String>), String> {
        let mut config = ServeConfig::default();
        let mut trace_dir = None;
        let mut loss = 0.0f64;
        let mut dropout = 0.0f64;
        let mut snapshot_every: Option<u64> = None;
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            fn positive(name: &str, v: f64) -> Result<f64, String> {
                if v.is_finite() && v > 0.0 {
                    Ok(v)
                } else {
                    Err(format!("{name} must be positive and finite"))
                }
            }
            fn probability(name: &str, v: f64) -> Result<f64, String> {
                if (0.0..=1.0).contains(&v) {
                    Ok(v)
                } else {
                    Err(format!("{name} must be a probability in [0, 1]"))
                }
            }
            match flag.as_str() {
                "--tenants" => {
                    config.tenants = value("--tenants")?
                        .parse()
                        .map_err(|e| format!("--tenants: {e}"))?;
                    if config.tenants == 0 {
                        return Err("--tenants must be positive".to_string());
                    }
                }
                "--cameras" => {
                    config.cameras_per_tenant = value("--cameras")?
                        .parse()
                        .map_err(|e| format!("--cameras: {e}"))?;
                    if config.cameras_per_tenant == 0 {
                        return Err("--cameras must be positive".to_string());
                    }
                }
                "--fps" => {
                    let v = value("--fps")?.parse().map_err(|e| format!("--fps: {e}"))?;
                    config.fps = positive("--fps", v)?;
                }
                "--duration-s" => {
                    let v = value("--duration-s")?
                        .parse()
                        .map_err(|e| format!("--duration-s: {e}"))?;
                    config.duration_s = positive("--duration-s", v)?;
                }
                "--capacity" => {
                    let v = value("--capacity")?
                        .parse()
                        .map_err(|e| format!("--capacity: {e}"))?;
                    config.capacity_cores = positive("--capacity", v)?;
                }
                "--seed" => {
                    config.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--threads" => {
                    config.threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--redundancy" => {
                    config.redundancy = value("--redundancy")?
                        .parse()
                        .map_err(|e| format!("--redundancy: {e}"))?;
                    if config.redundancy == 0 {
                        return Err("--redundancy must be positive".to_string());
                    }
                }
                "--intensity" => {
                    let v = value("--intensity")?
                        .parse()
                        .map_err(|e| format!("--intensity: {e}"))?;
                    config.intensity = positive("--intensity", v)?;
                }
                "--train-s" => {
                    let v = value("--train-s")?
                        .parse()
                        .map_err(|e| format!("--train-s: {e}"))?;
                    config.train_s = positive("--train-s", v)?;
                }
                "--loss" => {
                    let v = value("--loss")?
                        .parse()
                        .map_err(|e| format!("--loss: {e}"))?;
                    loss = probability("--loss", v)?;
                }
                "--dropout" => {
                    let v = value("--dropout")?
                        .parse()
                        .map_err(|e| format!("--dropout: {e}"))?;
                    dropout = probability("--dropout", v)?;
                }
                "--max-keep-every" => {
                    config.max_keep_every = value("--max-keep-every")?
                        .parse()
                        .map_err(|e| format!("--max-keep-every: {e}"))?;
                    if config.max_keep_every == 0 {
                        return Err("--max-keep-every must be positive".to_string());
                    }
                }
                "--shard-solver" => config.shard_solver = true,
                "--pipelined" => config.pipelined = true,
                "--trace" => trace_dir = Some(value("--trace")?),
                "--chaos-seed" => {
                    config.chaos.seed = value("--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?;
                }
                "--crash-at" => {
                    for part in value("--crash-at")?.split(',') {
                        let v: f64 = part
                            .parse()
                            .map_err(|e| format!("--crash-at `{part}`: {e}"))?;
                        if !v.is_finite() || v < 0.0 {
                            return Err("--crash-at times must be non-negative seconds".into());
                        }
                        config.chaos.crash_at_us.push((v * 1e6).round() as u64);
                    }
                }
                "--restart-delay-s" => {
                    let v = value("--restart-delay-s")?
                        .parse()
                        .map_err(|e| format!("--restart-delay-s: {e}"))?;
                    config.chaos.restart_delay_us =
                        (positive("--restart-delay-s", v)? * 1e6).round() as u64;
                }
                "--poison" => {
                    let v = value("--poison")?
                        .parse()
                        .map_err(|e| format!("--poison: {e}"))?;
                    config.chaos.poison_per_frame = probability("--poison", v)?;
                }
                "--quarantine-s" => {
                    let v = value("--quarantine-s")?
                        .parse()
                        .map_err(|e| format!("--quarantine-s: {e}"))?;
                    config.chaos.quarantine_us =
                        (positive("--quarantine-s", v)? * 1e6).round() as u64;
                }
                "--degrade" => {
                    let spec = value("--degrade")?;
                    let parts: Vec<&str> = spec.split(':').collect();
                    if parts.len() < 2 || parts.len() > 3 {
                        return Err(format!(
                            "--degrade expects AT_S:CAPACITY_FACTOR[:SERVICE_INFLATION], \
                             got `{spec}`"
                        ));
                    }
                    let at_s: f64 = parts[0]
                        .parse()
                        .map_err(|e| format!("--degrade at `{}`: {e}", parts[0]))?;
                    if !at_s.is_finite() || at_s < 0.0 {
                        return Err("--degrade time must be non-negative seconds".into());
                    }
                    let factor: f64 = parts[1]
                        .parse()
                        .map_err(|e| format!("--degrade factor `{}`: {e}", parts[1]))?;
                    let inflation: f64 = match parts.get(2) {
                        Some(p) => p
                            .parse()
                            .map_err(|e| format!("--degrade inflation `{p}`: {e}"))?,
                        None => 1.0,
                    };
                    config.chaos.degrades.push(PoolDegrade {
                        at_us: (at_s * 1e6).round() as u64,
                        capacity_factor: factor,
                        service_inflation: inflation,
                    });
                }
                "--snapshot-every" => {
                    snapshot_every = Some(
                        value("--snapshot-every")?
                            .parse()
                            .map_err(|e| format!("--snapshot-every: {e}"))?,
                    );
                }
                other => return Err(format!("unknown serve option `{other}`")),
            }
        }
        if loss > 0.0 || dropout > 0.0 {
            config.faults = FaultModel {
                keyframe_loss: loss,
                dropout_per_horizon: dropout,
                rejoin_per_horizon: if dropout > 0.0 { 0.3 } else { 0.0 },
                ..FaultModel::none()
            };
        }
        // Crashes need checkpoints to recover from: default to a
        // one-horizon cadence when crashes are scheduled and the user
        // did not pick one explicitly.
        config.snapshot_every_horizons =
            snapshot_every.unwrap_or(u64::from(!config.chaos.crash_at_us.is_empty()));
        // Cross-field consistency comes from the typed validator, so a
        // nonsensical mix fails here with its message instead of
        // panicking mid-run.
        config
            .validate()
            .map_err(|e| format!("invalid serve configuration: {e}"))?;
        Ok((config, trace_dir))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn args(s: &str) -> Vec<String> {
            s.split_whitespace().map(String::from).collect()
        }

        #[test]
        fn parses_run_with_defaults() {
            let c = parse(&args("run s1 balb")).unwrap();
            assert_eq!(
                c,
                Command::Run {
                    scenario: ScenarioKind::S1,
                    algorithm: Algorithm::Balb,
                    options: Options::default(),
                }
            );
        }

        #[test]
        fn parses_all_algorithms() {
            for (name, alg) in [
                ("full", Algorithm::Full),
                ("balb", Algorithm::Balb),
                ("balb-ind", Algorithm::BalbInd),
                ("balb-cen", Algorithm::BalbCen),
                ("sp", Algorithm::StaticPartition),
                ("sp-oracle", Algorithm::StaticPartitionOracle),
            ] {
                match parse(&args(&format!("run s2 {name}"))).unwrap() {
                    Command::Run { algorithm, .. } => assert_eq!(algorithm, alg),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }

        #[test]
        fn parses_options() {
            let c = parse(&args(
                "run s3 balb --horizon 20 --seed 5 --redundancy 2 --no-batching --threads 4",
            ))
            .unwrap();
            match c {
                Command::Run { options, .. } => {
                    assert_eq!(options.horizon, 20);
                    assert_eq!(options.seed, 5);
                    assert_eq!(options.redundancy, 2);
                    assert!(options.disable_batching);
                    assert_eq!(options.threads, 4);
                    assert_eq!(options.trace_dir, None);
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn parses_no_warm_start_flag() {
            match parse(&args("run s2 balb --no-warm-start")).unwrap() {
                Command::Run { options, .. } => assert!(options.no_warm_start),
                other => panic!("unexpected {other:?}"),
            }
            match parse(&args("run s2 balb")).unwrap() {
                Command::Run { options, .. } => assert!(!options.no_warm_start),
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn parses_trace_flag() {
            match parse(&args("run s2 balb --trace results/trace")).unwrap() {
                Command::Run { options, .. } => {
                    assert_eq!(options.trace_dir.as_deref(), Some("results/trace"));
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn parses_city_scenario_with_knobs() {
            let c = parse(&args(
                "run city balb --cameras 256 --intensity 2.5 --seed 7 --shard-solver",
            ))
            .unwrap();
            match c {
                Command::Run {
                    scenario, options, ..
                } => {
                    assert_eq!(scenario, ScenarioKind::City);
                    assert_eq!(options.cameras, 256);
                    assert_eq!(options.intensity, 2.5);
                    assert_eq!(options.seed, 7);
                    assert!(options.shard_solver);
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn city_knob_defaults_match_city_config() {
            match parse(&args("run city balb-cen")).unwrap() {
                Command::Run { options, .. } => {
                    assert_eq!(options.cameras, CityConfig::default().cameras);
                    assert_eq!(options.intensity, 1.0);
                    assert!(!options.shard_solver);
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn rejects_bad_input() {
            assert!(parse(&args("run s9 balb")).is_err());
            assert!(parse(&args("run s1 warp")).is_err());
            assert!(parse(&args("run s1 balb --horizon 0")).is_err());
            assert!(parse(&args("run s1 balb --horizon")).is_err());
            assert!(parse(&args("frobnicate")).is_err());
            assert!(parse(&args("run s1 balb --redundancy 0")).is_err());
            assert!(parse(&args("run s1 balb --trace")).is_err());
            assert!(parse(&args("run city balb --cameras 0")).is_err());
            assert!(parse(&args("run city balb --intensity 0")).is_err());
            assert!(parse(&args("run city balb --intensity nan")).is_err());
        }

        #[test]
        fn rejects_city_flags_on_fixed_presets() {
            // Satellite of ISSUE 7: these used to parse silently and run
            // something other than what was asked.
            assert!(parse(&args("run s1 balb --intensity 2.0")).is_err());
            assert!(parse(&args("run s2 balb --cameras 64")).is_err());
            assert!(parse(&args("compare s3 --intensity 0.5")).is_err());
            // …but they are fine on the scenario they belong to.
            assert!(parse(&args("run city balb --intensity 2.0 --cameras 64")).is_ok());
        }

        #[test]
        fn workload_rejects_trailing_options() {
            assert!(parse(&args("workload s1 --seed 3")).is_err());
            assert!(parse(&args("workload s1")).is_ok());
        }

        #[test]
        fn parses_serve_defaults() {
            match parse(&args("serve")).unwrap() {
                Command::Serve { config, trace_dir } => {
                    assert_eq!(config, ServeConfig::default());
                    assert_eq!(trace_dir, None);
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn parses_serve_flags() {
            let c = parse(&args(
                "serve --tenants 16 --cameras 8 --fps 10 --duration-s 12 --capacity 8 \
                 --seed 3 --threads 2 --loss 0.2 --dropout 0.1 --redundancy 2 \
                 --max-keep-every 3 --shard-solver --trace out/serve",
            ))
            .unwrap();
            match c {
                Command::Serve { config, trace_dir } => {
                    assert_eq!(config.tenants, 16);
                    assert_eq!(config.cameras_per_tenant, 8);
                    assert_eq!(config.fps, 10.0);
                    assert_eq!(config.duration_s, 12.0);
                    assert_eq!(config.capacity_cores, 8.0);
                    assert_eq!(config.seed, 3);
                    assert_eq!(config.threads, 2);
                    assert_eq!(config.redundancy, 2);
                    assert_eq!(config.max_keep_every, 3);
                    assert!(config.shard_solver);
                    assert_eq!(config.faults.keyframe_loss, 0.2);
                    assert_eq!(config.faults.dropout_per_horizon, 0.1);
                    assert!(config.faults.rejoin_per_horizon > 0.0);
                    assert_eq!(trace_dir.as_deref(), Some("out/serve"));
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn parses_serve_chaos_flags() {
            let c = parse(&args(
                "serve --chaos-seed 7 --crash-at 2.5,4 --restart-delay-s 0.25 \
                 --poison 0.01 --quarantine-s 3 --degrade 6:0.5:1.5 --degrade 9:1",
            ))
            .unwrap();
            match c {
                Command::Serve { config, .. } => {
                    assert_eq!(config.chaos.seed, 7);
                    assert_eq!(config.chaos.crash_at_us, vec![2_500_000, 4_000_000]);
                    assert_eq!(config.chaos.restart_delay_us, 250_000);
                    assert_eq!(config.chaos.poison_per_frame, 0.01);
                    assert_eq!(config.chaos.quarantine_us, 3_000_000);
                    assert_eq!(config.chaos.degrades.len(), 2);
                    assert_eq!(config.chaos.degrades[0].at_us, 6_000_000);
                    assert_eq!(config.chaos.degrades[0].capacity_factor, 0.5);
                    assert_eq!(config.chaos.degrades[0].service_inflation, 1.5);
                    assert_eq!(config.chaos.degrades[1].at_us, 9_000_000);
                    assert_eq!(config.chaos.degrades[1].capacity_factor, 1.0);
                    assert_eq!(config.chaos.degrades[1].service_inflation, 1.0);
                    // --crash-at implies snapshotting.
                    assert_eq!(config.snapshot_every_horizons, 1);
                }
                other => panic!("unexpected {other:?}"),
            }
            // Without crashes snapshotting stays off unless asked for.
            match parse(&args("serve --poison 0.01")).unwrap() {
                Command::Serve { config, .. } => {
                    assert_eq!(config.snapshot_every_horizons, 0);
                }
                other => panic!("unexpected {other:?}"),
            }
            match parse(&args("serve --snapshot-every 2")).unwrap() {
                Command::Serve { config, .. } => {
                    assert_eq!(config.snapshot_every_horizons, 2);
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn serve_rejects_bad_chaos_values() {
            assert!(parse(&args("serve --poison 1.5")).is_err());
            assert!(parse(&args("serve --poison nan")).is_err());
            assert!(parse(&args("serve --crash-at -1")).is_err());
            assert!(parse(&args("serve --crash-at 4,2")).is_err());
            assert!(parse(&args("serve --restart-delay-s 0")).is_err());
            assert!(parse(&args("serve --quarantine-s 0")).is_err());
            assert!(parse(&args("serve --degrade 5")).is_err());
            assert!(parse(&args("serve --degrade 5:0")).is_err());
            assert!(parse(&args("serve --degrade 5:0.5:0")).is_err());
            assert!(parse(&args("serve --degrade 5:0.5:1:2")).is_err());
            // Crashing without snapshots cannot recover; surfaced as a
            // typed error instead of a mid-run panic.
            let err = parse(&args("serve --crash-at 5 --snapshot-every 0")).unwrap_err();
            assert!(err.contains("snapshot"), "unexpected message: {err}");
        }

        #[test]
        fn serve_rejects_pipeline_flags_and_bad_values() {
            // Pipeline-tuning flags do not apply to `serve`.
            assert!(parse(&args("serve --horizon 20")).is_err());
            assert!(parse(&args("serve --eval-s 30")).is_err());
            assert!(parse(&args("serve --no-batching")).is_err());
            // Value validation.
            assert!(parse(&args("serve --tenants 0")).is_err());
            assert!(parse(&args("serve --fps 0")).is_err());
            assert!(parse(&args("serve --fps nan")).is_err());
            assert!(parse(&args("serve --loss 1.5")).is_err());
            assert!(parse(&args("serve --dropout -0.1")).is_err());
            assert!(parse(&args("serve --capacity")).is_err());
            assert!(parse(&args("serve --max-keep-every 0")).is_err());
        }

        #[test]
        fn serve_rejects_bad_thread_values() {
            // The pool width must be a plain count: reject garbage,
            // negatives, and a dangling flag rather than serving a config
            // the user did not ask for.
            assert!(parse(&args("serve --threads abc")).is_err());
            assert!(parse(&args("serve --threads -1")).is_err());
            assert!(parse(&args("serve --threads 2.5")).is_err());
            assert!(parse(&args("serve --threads")).is_err());
            // 0 is the documented "auto" sentinel, resolved via
            // MVS_THREADS or the machine at serve time.
            match parse(&args("serve --threads 0")).unwrap() {
                Command::Serve { config, .. } => assert_eq!(config.threads, 0),
                other => panic!("unexpected {other:?}"),
            }
            match parse(&args("serve --threads 8")).unwrap() {
                Command::Serve { config, .. } => assert_eq!(config.threads, 8),
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn empty_and_help() {
            assert_eq!(parse(&[]).unwrap(), Command::Help);
            assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
            assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        }

        #[test]
        fn compare_and_workload() {
            assert!(matches!(
                parse(&args("compare s2")).unwrap(),
                Command::Compare { .. }
            ));
            assert!(matches!(
                parse(&args("workload s3")).unwrap(),
                Command::Workload {
                    scenario: ScenarioKind::S3
                }
            ));
        }
    }
}

const USAGE: &str = "\
mvs — multi-view scheduling of onboard live video analytics (ICDCS 2022)

USAGE:
    mvs run <scenario> <algorithm> [options]   run one pipeline configuration
    mvs compare <scenario> [options]           run every algorithm side by side
    mvs workload <scenario>                    per-camera workload series (Fig. 2)
    mvs serve [serve options]                  multi-tenant serving event loop

SCENARIOS:
    s1 s2 s3    the paper's deployment presets
    city        procedural city-scale fleet (size it with --cameras,
                load it with --intensity; generated from --seed)

ALGORITHMS:
    full        full-frame inspection on every frame
    balb        the paper's complete scheduler
    balb-ind    per-camera BALB without coordination
    balb-cen    central stage only
    sp          static spatial partitioning baseline
    sp-oracle   SP with oracle world geometry (ablation)

OPTIONS:
    --horizon N       scheduling horizon in frames   (default 10)
    --train-s S       association training seconds   (default 60)
    --eval-s S        evaluated seconds              (default 60)
    --seed N          RNG seed                       (default 17)
    --redundancy N    owners per object              (default 1)
    --no-batching     force GPU batch limits to one
    --no-warm-start   cold-solve the central stage every key frame instead
                      of warm-starting from the previous horizon's schedule
                      (results are identical; compute-only knob)
    --threads N       camera worker threads; 0 = auto (default 0):
                      MVS_THREADS env, else available CPU parallelism.
                      Results are identical at any thread count.
    --trace DIR       record per-stage spans (sim-clock, deterministic) and
                      write DIR/trace.chrome.json (chrome://tracing),
                      DIR/stages.prom (Prometheus text), DIR/trace.golden.txt
                      (golden format), plus a per-stage latency table.
    --cameras N       city fleet size                (default 128; city only)
    --intensity X     city traffic multiplier        (default 1.0; city only)
    --shard-solver    solve key frames shard-by-shard over the camera
                      overlap graph (identical schedules; compute-only
                      knob for large fleets)
    --pipelined       overlap the central solve with uplink-leg encoding
                      on key frames (identical results; wall-clock-only
                      knob)

Options only apply where they make sense: city knobs are rejected on the
fixed presets, serve flags are rejected on `run`, and vice versa.

SERVE OPTIONS:
    --tenants N        tenant deployments               (default 4)
    --cameras N        cameras per tenant               (default 8)
    --fps X            capture rate per tenant          (default 10)
    --duration-s S     served seconds of virtual time   (default 30)
    --capacity X       provisioned compute, in cores    (default 4);
                       admission degrades tenants (shed redundancy, then
                       process every d-th frame, then reject) until the
                       aggregate modeled load fits
    --seed N           base seed; tenant t uses seed+t  (default 2022)
    --threads N        persistent-pool lanes for tenant-parallel phases
                       (admission pilots, restores, readmissions) and each
                       tenant's camera workers; 0 = auto (MVS_THREADS env,
                       else the machine). Reports identical at any value.
    --redundancy N     requested owners per object      (default 1)
    --intensity X      city traffic multiplier          (default 1.0)
    --train-s S        association training seconds     (default 20)
    --loss P           key-frame message loss probability per attempt
    --dropout P        camera dropout probability per horizon
    --max-keep-every N deepest frame-thinning rung      (default 4)
    --shard-solver     sharded central solver
    --pipelined        overlap each tenant's central solve with uplink
                       encoding (identical reports)
    --trace DIR        write per-tenant labeled Prometheus text and Chrome
                       traces into DIR/

SERVE CHAOS OPTIONS (all virtual-time, seeded, deterministic):
    --chaos-seed N     seed of the serve-level chaos stream (default 0)
    --crash-at S[,S…]  crash the coordinator at these virtual seconds; it
                       restores the latest snapshot after the restart
                       delay and counts the gap as replayed frames
    --restart-delay-s S  outage length per crash     (default 0.5)
    --poison P         per-dispatch probability that a tenant's pipeline
                       step panics; the panic is caught and the tenant
                       quarantined, then re-admitted through the ladder
    --quarantine-s S   quarantine window             (default 5)
    --degrade AT:CAP[:INFL]  at AT seconds scale pool capacity by CAP and
                       service times by INFL (repeatable; admission is
                       re-evaluated at each event)
    --snapshot-every N checkpoint every N scheduling horizons (0 = off;
                       defaults to 1 when --crash-at is given). Snapshots
                       never change results.
";

/// Prints the per-stage latency table and writes the three trace exports.
fn report_trace(trace: &Trace, dir: &str) -> std::io::Result<()> {
    let stats = trace.stage_stats();
    let total_ms = trace.total_modeled_ms().max(f64::MIN_POSITIVE);
    let mut table = TextTable::new(vec![
        "stage",
        "spans",
        "items",
        "p50 (ms)",
        "p99 (ms)",
        "total (ms)",
        "share",
    ]);
    for (stage, s) in &stats {
        table.row(vec![
            stage.name().to_string(),
            s.summary.count.to_string(),
            s.items.to_string(),
            format!("{:.2}", s.summary.p50),
            format!("{:.2}", s.summary.p99),
            format!("{:.1}", s.total_ms),
            format!("{:.1}%", 100.0 * s.total_ms / total_ms),
        ]);
    }
    println!(
        "\nper-stage modeled latency ({} spans)\n\n{table}",
        trace.len()
    );
    std::fs::create_dir_all(dir)?;
    let path = std::path::Path::new(dir);
    std::fs::write(path.join("trace.chrome.json"), trace.chrome_trace_json())?;
    std::fs::write(path.join("stages.prom"), trace.prometheus_text())?;
    std::fs::write(path.join("trace.golden.txt"), trace.golden_text())?;
    println!("trace exports written to {dir}/");
    Ok(())
}

/// Prints the per-tenant admission and latency table for a serving run.
fn report_serve(report: &ServeReport) {
    print!("{}", serve_report_text(report));
}

/// Renders the serving report as text — kept separate from the printing
/// wrapper so regression tests can hold the format.
fn serve_report_text(report: &ServeReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut table = TextTable::new(vec![
        "tenant",
        "decision",
        "load (cores)",
        "captured",
        "processed",
        "q-dropped",
        "p-skipped",
        "e2e p99 (ms)",
        "recall",
    ]);
    for t in &report.tenants {
        let decision = match t.decision {
            AdmissionDecision::Admitted => "admitted".to_string(),
            AdmissionDecision::ShedRedundancy => "shed-redundancy".to_string(),
            AdmissionDecision::Degraded { keep_every } => format!("keep-1-in-{keep_every}"),
            AdmissionDecision::Rejected => "REJECTED".to_string(),
            AdmissionDecision::Quarantined => "QUARANTINED".to_string(),
        };
        table.row(vec![
            t.tenant.to_string(),
            decision,
            format!("{:.2}", t.pilot_load_cores),
            t.captured.to_string(),
            t.processed.to_string(),
            t.queue_dropped.to_string(),
            t.policy_skipped.to_string(),
            format!("{:.1}", t.e2e_ms.p99),
            format!("{:.3}", t.recall),
        ]);
    }
    writeln!(
        out,
        "\nper-tenant admission and serving outcomes\n\n{table}"
    )
    .unwrap();
    writeln!(
        out,
        "aggregate: load {:.2}/{:.2} cores, {} captured, {} processed, drop rate {:.1}%, \
         e2e p99 {:.1} ms, core utilization {:.1}%",
        report.admitted_load_cores,
        report.config.capacity_cores,
        report.captured,
        report.processed,
        report.drop_rate * 100.0,
        report.e2e_ms.p99,
        report.core_utilization * 100.0
    )
    .unwrap();
    // Poisoned (non-finite) samples are excluded from every latency
    // summary rather than silently shifting the percentiles; say so
    // whenever that happened.
    let rejected_e2e = report.e2e_ms.rejected;
    let rejected_service: usize = report.tenants.iter().map(|t| t.service_ms.rejected).sum();
    if rejected_e2e + rejected_service > 0 {
        writeln!(
            out,
            "rejected latency samples: {rejected_e2e} e2e, {rejected_service} service \
             (non-finite; excluded from the latency summaries)"
        )
        .unwrap();
    }
    if report.recovery.any() {
        let r = &report.recovery;
        writeln!(
            out,
            "recovery: {} restart(s) (mttr {:.1} ms, availability {:.2}%), \
             {} replayed frames, {} quarantine(s), {} readmission(s), {} snapshot(s)",
            r.restarts,
            r.mttr_us() / 1e3,
            report.availability * 100.0,
            r.replayed_frames,
            r.quarantines,
            r.readmissions,
            r.snapshots_taken
        )
        .unwrap();
        if r.restarts > 0 {
            writeln!(
                out,
                "post-recovery e2e p99: {:.1} ms",
                report.post_recovery_e2e_ms.p99
            )
            .unwrap();
        }
    }
    if !report.transitions.is_empty() {
        writeln!(
            out,
            "admission transitions: {} (last at {:.1} s)",
            report.transitions.len(),
            report
                .transitions
                .last()
                .map_or(0.0, |t| t.at_us as f64 / 1e6)
        )
        .unwrap();
    }
    out
}

/// Writes one labeled Prometheus snapshot and one Chrome trace per tenant.
fn write_serve_traces(traces: &[Trace], dir: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = std::path::Path::new(dir);
    let mut prom = String::new();
    for (t, trace) in traces.iter().enumerate() {
        prom.push_str(&trace.prometheus_text_labeled(&[("tenant", &t.to_string())]));
        std::fs::write(
            path.join(format!("tenant-{t}.chrome.json")),
            trace.chrome_trace_json(),
        )?;
    }
    std::fs::write(path.join("tenants.prom"), prom)?;
    println!("serve trace exports written to {dir}/");
    Ok(())
}

fn config_from(algorithm: Algorithm, options: &cli::Options) -> PipelineConfig {
    PipelineConfig {
        horizon: options.horizon,
        train_s: options.train_s,
        eval_s: options.eval_s,
        seed: options.seed,
        redundancy: options.redundancy,
        disable_batching: options.disable_batching,
        warm_start: !options.no_warm_start,
        threads: options.threads,
        shard_solver: options.shard_solver,
        pipelined: options.pipelined,
        ..PipelineConfig::paper_default(algorithm)
    }
}

/// Builds the scenario, honoring the city knobs for `city` (the paper
/// presets have fixed geometry and ignore them).
fn scenario_from(kind: ScenarioKind, options: &cli::Options) -> Scenario {
    match kind {
        ScenarioKind::City => Scenario::city(&CityConfig {
            cameras: options.cameras,
            seed: options.seed,
            intensity: options.intensity,
        }),
        _ => Scenario::new(kind),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match command {
        cli::Command::Help => print!("{USAGE}"),
        cli::Command::Run {
            scenario,
            algorithm,
            options,
        } => {
            let sc = scenario_from(scenario, &options);
            println!(
                "running {algorithm} on {scenario} ({} cameras)…",
                sc.num_cameras()
            );
            let config = config_from(algorithm, &options);
            let (result, trace) = match &options.trace_dir {
                Some(_) => {
                    let (r, t) = run_pipeline_traced(&sc, &config);
                    (r, Some(t))
                }
                None => (run_pipeline(&sc, &config), None),
            };
            println!("  frames evaluated : {}", result.frames);
            println!("  object recall    : {:.3}", result.recall);
            println!("  mean latency     : {:.1} ms", result.mean_latency_ms);
            println!(
                "  per-camera mean  : {:?}",
                result
                    .per_camera_mean_ms
                    .iter()
                    .map(|v| (v * 10.0).round() / 10.0)
                    .collect::<Vec<_>>()
            );
            println!(
                "  per-frame series : {}",
                sparkline_fit(result.latency.samples_ms(), 60)
            );
            let oh = result.overhead_mean;
            println!(
                "  overheads        : central {:.2} ms, tracking {:.2} ms, distributed {:.3} ms, batching {:.2} ms",
                oh.central_ms, oh.tracking_ms, oh.distributed_ms, oh.batching_ms
            );
            if let (Some(dir), Some(trace)) = (&options.trace_dir, &trace) {
                if let Err(e) = report_trace(trace, dir) {
                    eprintln!("error: writing trace exports to {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        cli::Command::Compare { scenario, options } => {
            let sc = scenario_from(scenario, &options);
            let mut table = TextTable::new(vec!["algorithm", "recall", "latency (ms)", "speedup"]);
            let mut full = None;
            for algorithm in [
                Algorithm::Full,
                Algorithm::BalbInd,
                Algorithm::BalbCen,
                Algorithm::Balb,
                Algorithm::StaticPartition,
            ] {
                let result = run_pipeline(&sc, &config_from(algorithm, &options));
                let base = *full.get_or_insert(result.mean_latency_ms);
                table.row(vec![
                    algorithm.to_string(),
                    format!("{:.3}", result.recall),
                    format!("{:.1}", result.mean_latency_ms),
                    format!("{:.2}x", base / result.mean_latency_ms),
                ]);
            }
            println!("{scenario} comparison\n\n{table}");
        }
        cli::Command::Serve { config, trace_dir } => {
            println!(
                "serving {} tenants × {} cameras at {} fps on {} cores for {} s…",
                config.tenants,
                config.cameras_per_tenant,
                config.fps,
                config.capacity_cores,
                config.duration_s
            );
            let (report, traces) = match &trace_dir {
                Some(_) => {
                    let (r, t) = run_serve_traced(&config);
                    (r, Some(t))
                }
                None => (run_serve(&config), None),
            };
            report_serve(&report);
            if let (Some(dir), Some(traces)) = (&trace_dir, &traces) {
                if let Err(e) = write_serve_traces(traces, dir) {
                    eprintln!("error: writing serve traces to {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        cli::Command::Workload { scenario } => {
            let sc = Scenario::new(scenario);
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let series = sc.workload_series(120.0, 2.0, &mut rng);
            println!("{scenario} objects/frame per camera (120 s, sampled every 2 s)\n");
            for (i, s) in series.iter().enumerate() {
                let as_f: Vec<f64> = s.iter().map(|&v| v as f64).collect();
                println!("  c{i} ({}) {}", sc.devices[i], sparkline_fit(&as_f, 60));
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod serve_report_tests {
    use super::*;
    use multiview_scheduler::sim::ServeConfig;

    fn tiny_report() -> ServeReport {
        run_serve(&ServeConfig {
            tenants: 1,
            cameras_per_tenant: 2,
            duration_s: 1.0,
            train_s: 5.0,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn clean_report_has_no_rejected_line() {
        let report = tiny_report();
        assert_eq!(report.e2e_ms.rejected, 0);
        let text = serve_report_text(&report);
        assert!(text.contains("per-tenant admission and serving outcomes"));
        assert!(text.contains("aggregate: load"));
        assert!(
            !text.contains("rejected latency samples"),
            "clean run must not warn about rejected samples:\n{text}"
        );
    }

    #[test]
    fn rejected_samples_are_surfaced_with_counts() {
        let mut report = tiny_report();
        report.e2e_ms.rejected = 3;
        report.tenants[0].service_ms.rejected = 2;
        let text = serve_report_text(&report);
        assert!(
            text.contains("rejected latency samples: 3 e2e, 2 service"),
            "rejected counts missing from report text:\n{text}"
        );
    }
}
