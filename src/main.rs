//! `mvs` — command-line front end for the multi-view scheduling pipeline.
//!
//! ```text
//! mvs run <scenario> <algorithm> [options]   run one pipeline configuration
//! mvs compare <scenario> [options]           run every algorithm side by side
//! mvs workload <scenario>                    per-camera workload series (Fig. 2)
//! ```
//!
//! Scenarios: the paper presets `s1`, `s2`, `s3`, plus `city` — a
//! procedural city-scale fleet sized by `--cameras`/`--intensity`.
//! Algorithms: `full`, `balb`, `balb-ind`, `balb-cen`, `sp`, `sp-oracle`.
//! Options: `--horizon N`, `--train-s S`, `--eval-s S`, `--seed N`,
//! `--redundancy N`, `--no-batching`, `--no-warm-start`, `--threads N`,
//! `--trace DIR`, `--cameras N`, `--intensity X`, `--shard-solver`.

use multiview_scheduler::metrics::{sparkline_fit, TextTable};
use multiview_scheduler::sim::{
    run_pipeline, run_pipeline_traced, Algorithm, CityConfig, PipelineConfig, Scenario,
    ScenarioKind,
};
use multiview_scheduler::trace::Trace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

mod cli {
    //! Hand-rolled argument parsing (kept dependency-free and testable).

    use multiview_scheduler::sim::{Algorithm, CityConfig, ScenarioKind};

    /// A parsed invocation.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Command {
        /// Run one algorithm on one scenario.
        Run {
            /// Scenario under test.
            scenario: ScenarioKind,
            /// Algorithm under test.
            algorithm: Algorithm,
            /// Common tuning options.
            options: Options,
        },
        /// Run every algorithm on one scenario.
        Compare {
            /// Scenario under test.
            scenario: ScenarioKind,
            /// Common tuning options.
            options: Options,
        },
        /// Print the per-camera workload series.
        Workload {
            /// Scenario under test.
            scenario: ScenarioKind,
        },
        /// Print usage.
        Help,
    }

    /// Tunables shared by `run` and `compare`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Options {
        pub horizon: usize,
        pub train_s: f64,
        pub eval_s: f64,
        pub seed: u64,
        pub redundancy: usize,
        pub disable_batching: bool,
        /// Cold-solve every key frame instead of warm-starting the central
        /// stage from the previous horizon (results are identical; this
        /// only trades compute).
        pub no_warm_start: bool,
        pub threads: usize,
        /// When set, record per-stage spans and write the trace exports
        /// (Chrome JSON, Prometheus text, golden text) into this directory.
        pub trace_dir: Option<String>,
        /// Fleet size of the `city` scenario (ignored by the paper
        /// presets, whose camera counts are fixed).
        pub cameras: usize,
        /// Traffic intensity multiplier of the `city` scenario.
        pub intensity: f64,
        /// Solve key frames shard-by-shard over the camera overlap graph
        /// instead of monolithically (identical schedules; compute-only
        /// knob for large fleets).
        pub shard_solver: bool,
    }

    impl Default for Options {
        fn default() -> Self {
            Options {
                horizon: 10,
                train_s: 60.0,
                eval_s: 60.0,
                seed: 17,
                redundancy: 1,
                disable_batching: false,
                no_warm_start: false,
                threads: 0,
                trace_dir: None,
                cameras: CityConfig::default().cameras,
                intensity: 1.0,
                shard_solver: false,
            }
        }
    }

    /// Parses `args` (without the program name).
    pub fn parse(args: &[String]) -> Result<Command, String> {
        let mut it = args.iter();
        let Some(cmd) = it.next() else {
            return Ok(Command::Help);
        };
        match cmd.as_str() {
            "-h" | "--help" | "help" => Ok(Command::Help),
            "run" => {
                let scenario = parse_scenario(it.next())?;
                let algorithm = parse_algorithm(it.next())?;
                let options = parse_options(it.as_slice())?;
                Ok(Command::Run {
                    scenario,
                    algorithm,
                    options,
                })
            }
            "compare" => {
                let scenario = parse_scenario(it.next())?;
                let options = parse_options(it.as_slice())?;
                Ok(Command::Compare { scenario, options })
            }
            "workload" => {
                let scenario = parse_scenario(it.next())?;
                Ok(Command::Workload { scenario })
            }
            other => Err(format!("unknown command `{other}`; try --help")),
        }
    }

    fn parse_scenario(arg: Option<&String>) -> Result<ScenarioKind, String> {
        match arg.map(String::as_str) {
            Some("s1") | Some("S1") => Ok(ScenarioKind::S1),
            Some("s2") | Some("S2") => Ok(ScenarioKind::S2),
            Some("s3") | Some("S3") => Ok(ScenarioKind::S3),
            Some("city") => Ok(ScenarioKind::City),
            Some(other) => Err(format!(
                "unknown scenario `{other}` (expected s1|s2|s3|city)"
            )),
            None => Err("missing scenario (expected s1|s2|s3|city)".to_string()),
        }
    }

    fn parse_algorithm(arg: Option<&String>) -> Result<Algorithm, String> {
        match arg.map(String::as_str) {
            Some("full") => Ok(Algorithm::Full),
            Some("balb") => Ok(Algorithm::Balb),
            Some("balb-ind") => Ok(Algorithm::BalbInd),
            Some("balb-cen") => Ok(Algorithm::BalbCen),
            Some("sp") => Ok(Algorithm::StaticPartition),
            Some("sp-oracle") => Ok(Algorithm::StaticPartitionOracle),
            Some(other) => Err(format!(
                "unknown algorithm `{other}` (expected full|balb|balb-ind|balb-cen|sp|sp-oracle)"
            )),
            None => Err("missing algorithm".to_string()),
        }
    }

    fn parse_options(rest: &[String]) -> Result<Options, String> {
        let mut options = Options::default();
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--horizon" => {
                    options.horizon = value("--horizon")?
                        .parse()
                        .map_err(|e| format!("--horizon: {e}"))?;
                    if options.horizon == 0 {
                        return Err("--horizon must be positive".to_string());
                    }
                }
                "--train-s" => {
                    options.train_s = value("--train-s")?
                        .parse()
                        .map_err(|e| format!("--train-s: {e}"))?;
                }
                "--eval-s" => {
                    options.eval_s = value("--eval-s")?
                        .parse()
                        .map_err(|e| format!("--eval-s: {e}"))?;
                }
                "--seed" => {
                    options.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--redundancy" => {
                    options.redundancy = value("--redundancy")?
                        .parse()
                        .map_err(|e| format!("--redundancy: {e}"))?;
                    if options.redundancy == 0 {
                        return Err("--redundancy must be positive".to_string());
                    }
                }
                "--no-batching" => options.disable_batching = true,
                "--no-warm-start" => options.no_warm_start = true,
                "--shard-solver" => options.shard_solver = true,
                "--trace" => options.trace_dir = Some(value("--trace")?),
                "--cameras" => {
                    options.cameras = value("--cameras")?
                        .parse()
                        .map_err(|e| format!("--cameras: {e}"))?;
                    if options.cameras == 0 {
                        return Err("--cameras must be positive".to_string());
                    }
                }
                "--intensity" => {
                    options.intensity = value("--intensity")?
                        .parse()
                        .map_err(|e| format!("--intensity: {e}"))?;
                    if !(options.intensity.is_finite() && options.intensity > 0.0) {
                        return Err("--intensity must be positive and finite".to_string());
                    }
                }
                "--threads" => {
                    options.threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(options)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn args(s: &str) -> Vec<String> {
            s.split_whitespace().map(String::from).collect()
        }

        #[test]
        fn parses_run_with_defaults() {
            let c = parse(&args("run s1 balb")).unwrap();
            assert_eq!(
                c,
                Command::Run {
                    scenario: ScenarioKind::S1,
                    algorithm: Algorithm::Balb,
                    options: Options::default(),
                }
            );
        }

        #[test]
        fn parses_all_algorithms() {
            for (name, alg) in [
                ("full", Algorithm::Full),
                ("balb", Algorithm::Balb),
                ("balb-ind", Algorithm::BalbInd),
                ("balb-cen", Algorithm::BalbCen),
                ("sp", Algorithm::StaticPartition),
                ("sp-oracle", Algorithm::StaticPartitionOracle),
            ] {
                match parse(&args(&format!("run s2 {name}"))).unwrap() {
                    Command::Run { algorithm, .. } => assert_eq!(algorithm, alg),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }

        #[test]
        fn parses_options() {
            let c = parse(&args(
                "run s3 balb --horizon 20 --seed 5 --redundancy 2 --no-batching --threads 4",
            ))
            .unwrap();
            match c {
                Command::Run { options, .. } => {
                    assert_eq!(options.horizon, 20);
                    assert_eq!(options.seed, 5);
                    assert_eq!(options.redundancy, 2);
                    assert!(options.disable_batching);
                    assert_eq!(options.threads, 4);
                    assert_eq!(options.trace_dir, None);
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn parses_no_warm_start_flag() {
            match parse(&args("run s2 balb --no-warm-start")).unwrap() {
                Command::Run { options, .. } => assert!(options.no_warm_start),
                other => panic!("unexpected {other:?}"),
            }
            match parse(&args("run s2 balb")).unwrap() {
                Command::Run { options, .. } => assert!(!options.no_warm_start),
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn parses_trace_flag() {
            match parse(&args("run s2 balb --trace results/trace")).unwrap() {
                Command::Run { options, .. } => {
                    assert_eq!(options.trace_dir.as_deref(), Some("results/trace"));
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn parses_city_scenario_with_knobs() {
            let c = parse(&args(
                "run city balb --cameras 256 --intensity 2.5 --seed 7 --shard-solver",
            ))
            .unwrap();
            match c {
                Command::Run {
                    scenario, options, ..
                } => {
                    assert_eq!(scenario, ScenarioKind::City);
                    assert_eq!(options.cameras, 256);
                    assert_eq!(options.intensity, 2.5);
                    assert_eq!(options.seed, 7);
                    assert!(options.shard_solver);
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn city_knob_defaults_match_city_config() {
            match parse(&args("run city balb-cen")).unwrap() {
                Command::Run { options, .. } => {
                    assert_eq!(options.cameras, CityConfig::default().cameras);
                    assert_eq!(options.intensity, 1.0);
                    assert!(!options.shard_solver);
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn rejects_bad_input() {
            assert!(parse(&args("run s9 balb")).is_err());
            assert!(parse(&args("run s1 warp")).is_err());
            assert!(parse(&args("run s1 balb --horizon 0")).is_err());
            assert!(parse(&args("run s1 balb --horizon")).is_err());
            assert!(parse(&args("frobnicate")).is_err());
            assert!(parse(&args("run s1 balb --redundancy 0")).is_err());
            assert!(parse(&args("run s1 balb --trace")).is_err());
            assert!(parse(&args("run city balb --cameras 0")).is_err());
            assert!(parse(&args("run city balb --intensity 0")).is_err());
            assert!(parse(&args("run city balb --intensity nan")).is_err());
        }

        #[test]
        fn empty_and_help() {
            assert_eq!(parse(&[]).unwrap(), Command::Help);
            assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
            assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        }

        #[test]
        fn compare_and_workload() {
            assert!(matches!(
                parse(&args("compare s2")).unwrap(),
                Command::Compare { .. }
            ));
            assert!(matches!(
                parse(&args("workload s3")).unwrap(),
                Command::Workload {
                    scenario: ScenarioKind::S3
                }
            ));
        }
    }
}

const USAGE: &str = "\
mvs — multi-view scheduling of onboard live video analytics (ICDCS 2022)

USAGE:
    mvs run <scenario> <algorithm> [options]   run one pipeline configuration
    mvs compare <scenario> [options]           run every algorithm side by side
    mvs workload <scenario>                    per-camera workload series (Fig. 2)

SCENARIOS:
    s1 s2 s3    the paper's deployment presets
    city        procedural city-scale fleet (size it with --cameras,
                load it with --intensity; generated from --seed)

ALGORITHMS:
    full        full-frame inspection on every frame
    balb        the paper's complete scheduler
    balb-ind    per-camera BALB without coordination
    balb-cen    central stage only
    sp          static spatial partitioning baseline
    sp-oracle   SP with oracle world geometry (ablation)

OPTIONS:
    --horizon N       scheduling horizon in frames   (default 10)
    --train-s S       association training seconds   (default 60)
    --eval-s S        evaluated seconds              (default 60)
    --seed N          RNG seed                       (default 17)
    --redundancy N    owners per object              (default 1)
    --no-batching     force GPU batch limits to one
    --no-warm-start   cold-solve the central stage every key frame instead
                      of warm-starting from the previous horizon's schedule
                      (results are identical; compute-only knob)
    --threads N       camera worker threads; 0 = auto (default 0):
                      MVS_THREADS env, else available CPU parallelism.
                      Results are identical at any thread count.
    --trace DIR       record per-stage spans (sim-clock, deterministic) and
                      write DIR/trace.chrome.json (chrome://tracing),
                      DIR/stages.prom (Prometheus text), DIR/trace.golden.txt
                      (golden format), plus a per-stage latency table.
    --cameras N       city fleet size                (default 128; city only)
    --intensity X     city traffic multiplier        (default 1.0; city only)
    --shard-solver    solve key frames shard-by-shard over the camera
                      overlap graph (identical schedules; compute-only
                      knob for large fleets)
";

/// Prints the per-stage latency table and writes the three trace exports.
fn report_trace(trace: &Trace, dir: &str) -> std::io::Result<()> {
    let stats = trace.stage_stats();
    let total_ms = trace.total_modeled_ms().max(f64::MIN_POSITIVE);
    let mut table = TextTable::new(vec![
        "stage",
        "spans",
        "items",
        "p50 (ms)",
        "p99 (ms)",
        "total (ms)",
        "share",
    ]);
    for (stage, s) in &stats {
        table.row(vec![
            stage.name().to_string(),
            s.summary.count.to_string(),
            s.items.to_string(),
            format!("{:.2}", s.summary.p50),
            format!("{:.2}", s.summary.p99),
            format!("{:.1}", s.total_ms),
            format!("{:.1}%", 100.0 * s.total_ms / total_ms),
        ]);
    }
    println!(
        "\nper-stage modeled latency ({} spans)\n\n{table}",
        trace.len()
    );
    std::fs::create_dir_all(dir)?;
    let path = std::path::Path::new(dir);
    std::fs::write(path.join("trace.chrome.json"), trace.chrome_trace_json())?;
    std::fs::write(path.join("stages.prom"), trace.prometheus_text())?;
    std::fs::write(path.join("trace.golden.txt"), trace.golden_text())?;
    println!("trace exports written to {dir}/");
    Ok(())
}

fn config_from(algorithm: Algorithm, options: &cli::Options) -> PipelineConfig {
    PipelineConfig {
        horizon: options.horizon,
        train_s: options.train_s,
        eval_s: options.eval_s,
        seed: options.seed,
        redundancy: options.redundancy,
        disable_batching: options.disable_batching,
        warm_start: !options.no_warm_start,
        threads: options.threads,
        shard_solver: options.shard_solver,
        ..PipelineConfig::paper_default(algorithm)
    }
}

/// Builds the scenario, honoring the city knobs for `city` (the paper
/// presets have fixed geometry and ignore them).
fn scenario_from(kind: ScenarioKind, options: &cli::Options) -> Scenario {
    match kind {
        ScenarioKind::City => Scenario::city(&CityConfig {
            cameras: options.cameras,
            seed: options.seed,
            intensity: options.intensity,
        }),
        _ => Scenario::new(kind),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match command {
        cli::Command::Help => print!("{USAGE}"),
        cli::Command::Run {
            scenario,
            algorithm,
            options,
        } => {
            let sc = scenario_from(scenario, &options);
            println!(
                "running {algorithm} on {scenario} ({} cameras)…",
                sc.num_cameras()
            );
            let config = config_from(algorithm, &options);
            let (result, trace) = match &options.trace_dir {
                Some(_) => {
                    let (r, t) = run_pipeline_traced(&sc, &config);
                    (r, Some(t))
                }
                None => (run_pipeline(&sc, &config), None),
            };
            println!("  frames evaluated : {}", result.frames);
            println!("  object recall    : {:.3}", result.recall);
            println!("  mean latency     : {:.1} ms", result.mean_latency_ms);
            println!(
                "  per-camera mean  : {:?}",
                result
                    .per_camera_mean_ms
                    .iter()
                    .map(|v| (v * 10.0).round() / 10.0)
                    .collect::<Vec<_>>()
            );
            println!(
                "  per-frame series : {}",
                sparkline_fit(result.latency.samples_ms(), 60)
            );
            let oh = result.overhead_mean;
            println!(
                "  overheads        : central {:.2} ms, tracking {:.2} ms, distributed {:.3} ms, batching {:.2} ms",
                oh.central_ms, oh.tracking_ms, oh.distributed_ms, oh.batching_ms
            );
            if let (Some(dir), Some(trace)) = (&options.trace_dir, &trace) {
                if let Err(e) = report_trace(trace, dir) {
                    eprintln!("error: writing trace exports to {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        cli::Command::Compare { scenario, options } => {
            let sc = scenario_from(scenario, &options);
            let mut table = TextTable::new(vec!["algorithm", "recall", "latency (ms)", "speedup"]);
            let mut full = None;
            for algorithm in [
                Algorithm::Full,
                Algorithm::BalbInd,
                Algorithm::BalbCen,
                Algorithm::Balb,
                Algorithm::StaticPartition,
            ] {
                let result = run_pipeline(&sc, &config_from(algorithm, &options));
                let base = *full.get_or_insert(result.mean_latency_ms);
                table.row(vec![
                    algorithm.to_string(),
                    format!("{:.3}", result.recall),
                    format!("{:.1}", result.mean_latency_ms),
                    format!("{:.2}x", base / result.mean_latency_ms),
                ]);
            }
            println!("{scenario} comparison\n\n{table}");
        }
        cli::Command::Workload { scenario } => {
            let sc = Scenario::new(scenario);
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let series = sc.workload_series(120.0, 2.0, &mut rng);
            println!("{scenario} objects/frame per camera (120 s, sampled every 2 s)\n");
            for (i, s) in series.iter().enumerate() {
                let as_f: Vec<f64> = s.iter().map(|&v| v as f64).collect();
                println!("  c{i} ({}) {}", sc.devices[i], sparkline_fit(&as_f, 60));
            }
        }
    }
    ExitCode::SUCCESS
}
