//! **multiview-scheduler** — a complete reproduction of *"Multi-View
//! Scheduling of Onboard Live Video Analytics to Minimize Frame Processing
//! Latency"* (Liu et al., ICDCS 2022) as a Rust workspace.
//!
//! Multiple static cameras with partially overlapping fields of view run
//! DNN-based object detection on weak onboard GPUs. The paper's
//! **Batch-Aware Latency-Balanced (BALB)** scheduler assigns each physical
//! object to exactly one camera so that the *maximum* per-frame inference
//! latency across cameras is minimized, exploiting GPU batching of
//! equally-sized crops and re-balancing at every key frame.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geometry`] | `mvs-geometry` | boxes, IoU, grids, polygons, transforms |
//! | [`ml`] | `mvs-ml` | KNN, SVM, logistic, trees, RANSAC, homography, Hungarian |
//! | [`vision`] | `mvs-vision` | detector + latency profiles, flow tracking, slicing, batching |
//! | [`assoc`] | `mvs-assoc` | cross-camera association |
//! | [`core`] | `mvs-core` | the MVS problem, BALB, baselines, exact solver |
//! | [`sim`] | `mvs-sim` | scenarios S1–S3, world, network, end-to-end pipeline |
//! | [`metrics`] | `mvs-metrics` | recall, latency series, overhead breakdowns |
//! | [`trace`] | `mvs-trace` | per-stage spans, Prometheus/Chrome/golden exports |
//!
//! # Quickstart
//!
//! ```no_run
//! use multiview_scheduler::sim::{run_pipeline, Algorithm, PipelineConfig, Scenario, ScenarioKind};
//!
//! let scenario = Scenario::new(ScenarioKind::S1);
//! let config = PipelineConfig::paper_default(Algorithm::Balb);
//! let result = run_pipeline(&scenario, &config);
//! println!(
//!     "BALB on S1: recall {:.3}, mean per-frame latency {:.1} ms",
//!     result.recall, result.mean_latency_ms
//! );
//! ```
//!
//! Or schedule a standalone MVS instance:
//!
//! ```
//! use multiview_scheduler::core::{balb_central, MvsProblem, ProblemConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let problem = MvsProblem::random(&mut rng, 4, 30, &ProblemConfig::default());
//! let schedule = balb_central(&problem);
//! assert!(schedule.assignment.is_feasible(&problem));
//! println!("system latency: {:.1} ms", schedule.system_latency_ms());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mvs_assoc as assoc;
pub use mvs_core as core;
pub use mvs_geometry as geometry;
pub use mvs_metrics as metrics;
pub use mvs_ml as ml;
pub use mvs_sim as sim;
pub use mvs_trace as trace;
pub use mvs_vision as vision;
