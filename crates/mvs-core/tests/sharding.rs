//! Property-based tests for overlap-graph sharding: bitwise equality with
//! the central solve on exact plans, partition invariants of shard plans,
//! and safety of the cross-shard rebalance under forced splits.

use mvs_core::{
    balb_central, balb_sharded, balb_sharded_threaded, BalbSchedule, CameraId, MvsProblem,
    OverlapGraph, ProblemConfig, ShardPlan, ShardedBalbSolver,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_problem() -> impl Strategy<Value = MvsProblem> {
    (any::<u64>(), 1usize..10, 1usize..40, 0.0f64..1.0).prop_map(|(seed, m, n, overlap)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        MvsProblem::random(
            &mut rng,
            m,
            n,
            &ProblemConfig {
                overlap_prob: overlap,
                ..Default::default()
            },
        )
    })
}

/// Dense instances: high overlap keeps the coverage graph connected, so a
/// small max-shard-size forces split components.
fn arb_dense_problem() -> impl Strategy<Value = MvsProblem> {
    (any::<u64>(), 4usize..10, 10usize..60).prop_map(|(seed, m, n)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        MvsProblem::random(
            &mut rng,
            m,
            n,
            &ProblemConfig {
                overlap_prob: 0.7,
                ..Default::default()
            },
        )
    })
}

fn latency_bits(s: &BalbSchedule) -> Vec<u64> {
    s.camera_latencies_ms.iter().map(|l| l.to_bits()).collect()
}

fn assert_bitwise_eq(sharded: &BalbSchedule, central: &BalbSchedule) {
    assert_eq!(sharded.assignment, central.assignment);
    assert_eq!(sharded.priority, central.priority);
    assert_eq!(latency_bits(sharded), latency_bits(central));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Issue requirement (a): on component plans — in particular whenever
    // the overlap graph is a single component — the sharded schedule is
    // bitwise-equal (`f64::to_bits`) to `balb_central`, at every thread
    // count.
    #[test]
    fn sharded_matches_central_bitwise_on_component_plans(p in arb_problem()) {
        let graph = OverlapGraph::from_problem(&p);
        let plan = ShardPlan::from_components(&graph);
        prop_assert!(plan.is_exact());
        let central = balb_central(&p);
        for threads in [1usize, 2, 4] {
            let sharded = balb_sharded_threaded(&p, &plan, threads);
            assert_bitwise_eq(&sharded, &central);
        }
    }

    // The single-component special case called out by the issue: with one
    // shard covering the whole fleet, sharded IS central.
    #[test]
    fn single_component_graph_yields_exactly_central(p in arb_dense_problem()) {
        let graph = OverlapGraph::from_problem(&p);
        prop_assume!(graph.is_connected());
        let plan = ShardPlan::from_components(&graph);
        prop_assert_eq!(plan.num_shards(), 1);
        let sharded = balb_sharded(&p, &plan);
        assert_bitwise_eq(&sharded, &balb_central(&p));
    }

    // Issue requirement (b): shard camera sets partition the fleet exactly
    // — every camera in exactly one shard — for component plans and for
    // every max-shard-size split.
    #[test]
    fn shard_camera_sets_partition_the_fleet(
        p in arb_problem(),
        max_size in 1usize..8,
    ) {
        let graph = OverlapGraph::from_problem(&p);
        for plan in [
            ShardPlan::from_components(&graph),
            ShardPlan::with_max_shard_size(&graph, max_size),
        ] {
            let mut all: Vec<usize> = plan
                .shards()
                .iter()
                .flat_map(|s| s.iter().map(|c| c.0))
                .collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..p.num_cameras()).collect::<Vec<_>>());
            for (idx, shard) in plan.shards().iter().enumerate() {
                prop_assert!(!shard.is_empty());
                prop_assert!(shard.windows(2).all(|w| w[0] < w[1]), "shards sorted");
                for &c in shard {
                    prop_assert_eq!(plan.shard_of(c), idx);
                }
            }
        }
    }

    // Max-shard-size plans respect the size cap.
    #[test]
    fn split_plans_respect_the_size_cap(p in arb_problem(), max_size in 1usize..6) {
        let graph = OverlapGraph::from_problem(&p);
        let plan = ShardPlan::with_max_shard_size(&graph, max_size);
        prop_assert!(plan.largest_shard() <= max_size);
    }

    // Issue requirement (c): under forced splits, the cross-shard
    // rebalance never assigns an object to a camera that cannot see it —
    // and the merged schedule stays feasible, single-owner, with
    // internally consistent latencies no worse than the clipped solution.
    #[test]
    fn rebalance_respects_coverage_and_feasibility(p in arb_dense_problem()) {
        let graph = OverlapGraph::from_problem(&p);
        let plan = ShardPlan::with_max_shard_size(&graph, 2);
        let sharded = balb_sharded(&p, &plan);
        prop_assert!(sharded.assignment.is_feasible(&p));
        for o in p.objects() {
            let owners = sharded.assignment.owners_of(o.id);
            prop_assert_eq!(owners.len(), 1);
            prop_assert!(
                o.covered_by(owners[0]),
                "object {} assigned to camera {} outside its coverage",
                o.id.0,
                owners[0].0
            );
        }
        for i in 0..p.num_cameras() {
            let recomputed = sharded.assignment.camera_latency_ms(&p, CameraId(i), true);
            prop_assert!((recomputed - sharded.camera_latencies_ms[i]).abs() < 1e-6);
        }
    }

    // The warm sharded solver re-solving the same instance stays
    // bitwise-equal to cold central while taking the warm path.
    #[test]
    fn warm_sharded_resolve_matches_central(p in arb_problem()) {
        let graph = OverlapGraph::from_problem(&p);
        let plan = ShardPlan::from_components(&graph);
        let central = balb_central(&p);
        // Shards with no objects have nothing to replay, so only shards
        // that actually hold objects can take the warm path.
        let occupied: std::collections::BTreeSet<usize> = p
            .objects()
            .iter()
            .map(|o| plan.shard_of(o.coverage().next().unwrap()))
            .collect();
        let mut solver = ShardedBalbSolver::new();
        for frame in 0..3usize {
            let sharded = solver.solve(&p, &plan, 2);
            assert_bitwise_eq(&sharded, &central);
            prop_assert_eq!(solver.last_stats().shards, plan.num_shards());
            prop_assert_eq!(solver.last_stats().rebalance_moves, 0);
            if frame > 0 {
                prop_assert_eq!(solver.last_stats().warm_shards, occupied.len());
            }
        }
    }
}
