//! Differential test: BALB against the exact branch-and-bound solver on
//! randomized instances up to 8 cameras and 14 objects.
//!
//! Two invariants anchor the heuristic:
//!
//! 1. **Dominance** — the exact optimum is never beaten. A BALB schedule
//!    cheaper than the optimum means one of the two latency models is
//!    wrong, which is precisely the bug class a differential test catches.
//! 2. **Approximation quality** — on the paper's system-latency objective
//!    (partial-frame cost plus the `t^full` key-frame initialization) BALB
//!    stays within 2x of optimal. Empirically it is optimal on every
//!    sampled instance at these sizes; the 2x bound leaves room for ties
//!    broken differently while still catching real regressions.
//!
//! Instances that exhaust the solver's node budget are discarded via
//! `prop_assume` — the budget is sized so that essentially none do at
//! these instance sizes.

use mvs_core::{balb_central, exact, MvsProblem, ProblemConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const NODE_BUDGET: u64 = 20_000_000;

fn arb_instance() -> impl Strategy<Value = MvsProblem> {
    (
        any::<u64>(),
        1usize..9,
        1usize..15,
        0.0f64..1.0,
        0.0f64..0.8,
    )
        .prop_map(|(seed, m, n, overlap, growth)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            MvsProblem::random(
                &mut rng,
                m,
                n,
                &ProblemConfig {
                    overlap_prob: overlap,
                    size_growth_prob: growth,
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn balb_is_dominated_and_within_2x_on_system_latency(p in arb_instance()) {
        let balb = balb_central(&p);
        let solved = exact::solve(&p, true, NODE_BUDGET);
        prop_assume!(solved.is_ok());
        let opt = solved.unwrap();
        let balb_ms = balb.assignment.system_latency_ms(&p, true);
        prop_assert!(
            opt.system_latency_ms <= balb_ms + 1e-9,
            "exact ({} ms) must never lose to BALB ({} ms)",
            opt.system_latency_ms,
            balb_ms
        );
        prop_assert!(
            balb_ms <= 2.0 * opt.system_latency_ms + 1e-9,
            "BALB ({} ms) exceeded 2x the optimum ({} ms)",
            balb_ms,
            opt.system_latency_ms
        );
    }

    #[test]
    fn balb_is_dominated_on_partial_frame_latency(p in arb_instance()) {
        // The pure partial-frame objective (no t^full floor) exposes much
        // larger heuristic gaps, so only dominance is asserted here.
        let balb = balb_central(&p);
        let solved = exact::solve(&p, false, NODE_BUDGET);
        prop_assume!(solved.is_ok());
        let opt = solved.unwrap();
        let balb_ms = balb.assignment.system_latency_ms(&p, false);
        prop_assert!(
            opt.system_latency_ms <= balb_ms + 1e-9,
            "exact ({} ms) must never lose to BALB ({} ms)",
            opt.system_latency_ms,
            balb_ms
        );
        // And the optimum is itself feasible under the same model.
        prop_assert!(opt.assignment.is_feasible(&p));
    }
}
