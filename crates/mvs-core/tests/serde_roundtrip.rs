//! Serde round-trip tests (C-SERDE): every persisted data structure must
//! survive JSON serialization unchanged — schedules and problems are the
//! artifacts an operator would log and replay.

use mvs_core::{
    balb_central, Assignment, BalbSchedule, CameraId, MvsProblem, ObjectId, ProblemConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn problem() -> MvsProblem {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    MvsProblem::random(&mut rng, 4, 18, &ProblemConfig::default())
}

#[test]
fn problem_round_trips() {
    let p = problem();
    let json = serde_json::to_string(&p).unwrap();
    let back: MvsProblem = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
}

#[test]
fn assignment_round_trips() {
    let p = problem();
    let a = balb_central(&p).assignment;
    let json = serde_json::to_string(&a).unwrap();
    let back: Assignment = serde_json::from_str(&json).unwrap();
    assert_eq!(a, back);
    assert!(back.is_feasible(&p));
}

#[test]
fn schedule_round_trips_and_stays_consistent() {
    let p = problem();
    let s = balb_central(&p);
    let json = serde_json::to_string(&s).unwrap();
    let back: BalbSchedule = serde_json::from_str(&json).unwrap();
    assert_eq!(s, back);
    // The deserialized schedule still satisfies its own invariants.
    assert_eq!(back.priority.len(), p.num_cameras());
    for i in 0..p.num_cameras() {
        let recomputed = back.assignment.camera_latency_ms(&p, CameraId(i), true);
        assert!((recomputed - back.camera_latencies_ms[i]).abs() < 1e-6);
    }
}

#[test]
fn ids_serialize_as_plain_integers() {
    assert_eq!(serde_json::to_string(&CameraId(3)).unwrap(), "3");
    assert_eq!(serde_json::to_string(&ObjectId(7)).unwrap(), "7");
    let c: CameraId = serde_json::from_str("5").unwrap();
    assert_eq!(c, CameraId(5));
}

#[test]
fn balb_scales_to_large_instances() {
    // Stress: 20 cameras, 2000 objects — must stay feasible and fast
    // enough for a key-frame budget even in a debug build.
    let mut rng = ChaCha8Rng::seed_from_u64(22);
    let p = MvsProblem::random(&mut rng, 20, 2000, &ProblemConfig::default());
    let started = std::time::Instant::now();
    let s = balb_central(&p);
    let elapsed = started.elapsed();
    assert!(s.assignment.is_feasible(&p));
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "central stage took {elapsed:?} on M=20, N=2000"
    );
}
