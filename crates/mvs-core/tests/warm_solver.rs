//! Property tests for the warm-started incremental BALB solver: over
//! arbitrary frame-over-frame edit scripts, [`BalbSolver`] must produce
//! schedules **bitwise identical** (assignment, priority, and latency bit
//! patterns, including the exact u128 cross-multiplied tie-break) to a cold
//! [`balb_central`] solve of the same instance — whichever of the warm or
//! cold-fallback paths it takes.

use mvs_core::{
    balb_central, BalbSchedule, BalbSolver, CameraId, MvsProblem, ObjectId, ProblemConfig,
    ProblemDelta,
};
use mvs_geometry::SizeClass;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

fn assert_bitwise_eq(warm: &BalbSchedule, cold: &BalbSchedule) {
    assert_eq!(warm.assignment, cold.assignment);
    assert_eq!(warm.priority, cold.priority);
    let warm_bits: Vec<u64> = warm
        .camera_latencies_ms
        .iter()
        .map(|l| l.to_bits())
        .collect();
    let cold_bits: Vec<u64> = cold
        .camera_latencies_ms
        .iter()
        .map(|l| l.to_bits())
        .collect();
    assert_eq!(warm_bits, cold_bits);
}

fn random_sizes(rng: &mut ChaCha8Rng, m: usize) -> BTreeMap<CameraId, SizeClass> {
    let mut sizes = BTreeMap::new();
    for c in 0..m {
        if rng.gen_bool(0.5) {
            sizes.insert(
                CameraId(c),
                SizeClass::from_index(rng.gen_range(0..SizeClass::COUNT)),
            );
        }
    }
    if sizes.is_empty() {
        sizes.insert(
            CameraId(rng.gen_range(0..m)),
            SizeClass::from_index(rng.gen_range(0..SizeClass::COUNT)),
        );
    }
    sizes
}

/// Draws a random but always-valid edit script against `p`.
fn random_delta(rng: &mut ChaCha8Rng, p: &MvsProblem) -> ProblemDelta {
    let n = p.num_objects();
    let m = p.num_cameras();
    let mut delta = ProblemDelta::default();
    for j in 0..n {
        match rng.gen_range(0..10) {
            0 => delta.left.push(ObjectId(j)),
            1 | 2 => delta.moved.push((ObjectId(j), random_sizes(rng, m))),
            _ => {}
        }
    }
    for _ in 0..rng.gen_range(0..4) {
        delta.entered.push(random_sizes(rng, m));
    }
    // Never drain the instance completely.
    if delta.left.len() == n && delta.entered.is_empty() {
        delta.left.pop();
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Driving the solver through a sequence of random deltas stays bitwise
    // identical to cold re-solves of the patched instance at every step,
    // across fallback thresholds that exercise both the warm-replay and
    // cold-fallback paths.
    #[test]
    fn delta_sequences_match_cold_solves_bitwise(
        seed in any::<u64>(),
        m in 1usize..6,
        n in 1usize..25,
        steps in 1usize..8,
        threshold in 0.0f64..1.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut reference = MvsProblem::random(&mut rng, m, n, &ProblemConfig::default());
        let mut solver = BalbSolver::with_fallback_threshold(threshold);
        assert_bitwise_eq(solver.solve(&reference), &balb_central(&reference));
        for _ in 0..steps {
            let delta = random_delta(&mut rng, &reference);
            delta.apply(&mut reference).unwrap();
            let warm = solver.apply_delta(&delta).unwrap().clone();
            assert_bitwise_eq(&warm, &balb_central(&reference));
        }
    }

    // Re-solving full instances (the `solve` entry point, which diffs the
    // stored instance positionally instead of using a delta) is also
    // bitwise identical to cold solves.
    #[test]
    fn repeated_full_solves_match_cold_solves_bitwise(
        seed in any::<u64>(),
        m in 1usize..6,
        n in 1usize..25,
        steps in 1usize..6,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut reference = MvsProblem::random(&mut rng, m, n, &ProblemConfig::default());
        let mut solver = BalbSolver::new();
        for _ in 0..steps {
            let delta = random_delta(&mut rng, &reference);
            delta.apply(&mut reference).unwrap();
            assert_bitwise_eq(solver.solve(&reference), &balb_central(&reference));
        }
    }

    // `ProblemDelta::between` is exact: applying the diff of two instances
    // over the same fleet reproduces the target instance.
    #[test]
    fn between_apply_round_trips(
        seed in any::<u64>(),
        m in 1usize..6,
        n_a in 1usize..25,
        n_b in 1usize..25,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = MvsProblem::random(&mut rng, m, n_a, &ProblemConfig::default());
        let b_raw = MvsProblem::random(&mut rng, m, n_b, &ProblemConfig::default());
        let b = MvsProblem::new(a.cameras().to_vec(), b_raw.objects().to_vec()).unwrap();
        let delta = ProblemDelta::between(&a, &b);
        let mut patched = a.clone();
        delta.apply(&mut patched).unwrap();
        prop_assert_eq!(patched, b);
    }
}
