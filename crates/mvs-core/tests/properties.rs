//! Property-based tests for the scheduling core: BALB invariants on
//! arbitrary random instances, exact-solver dominance, and latency
//! arithmetic monotonicity.

use mvs_core::{
    balb_central, baselines, exact, Assignment, CameraId, MvsProblem, ObjectId, ProblemConfig,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_problem() -> impl Strategy<Value = MvsProblem> {
    (any::<u64>(), 1usize..6, 1usize..25, 0.0f64..1.0).prop_map(|(seed, m, n, overlap)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        MvsProblem::random(
            &mut rng,
            m,
            n,
            &ProblemConfig {
                overlap_prob: overlap,
                ..Default::default()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn balb_always_produces_feasible_single_owner_assignments(p in arb_problem()) {
        let s = balb_central(&p);
        prop_assert!(s.assignment.is_feasible(&p));
        for o in p.objects() {
            prop_assert_eq!(s.assignment.owners_of(o.id).len(), 1);
        }
    }

    #[test]
    fn balb_reported_latencies_match_recomputation(p in arb_problem()) {
        let s = balb_central(&p);
        for i in 0..p.num_cameras() {
            let recomputed = s.assignment.camera_latency_ms(&p, CameraId(i), true);
            prop_assert!((recomputed - s.camera_latencies_ms[i]).abs() < 1e-6);
        }
        let max = s
            .camera_latencies_ms
            .iter()
            .fold(0.0f64, |a, &b| a.max(b));
        prop_assert!((s.system_latency_ms() - max).abs() < 1e-9);
    }

    #[test]
    fn balb_priority_is_a_permutation_sorted_by_latency(p in arb_problem()) {
        let s = balb_central(&p);
        let mut ids: Vec<usize> = s.priority.iter().map(|c| c.0).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..p.num_cameras()).collect::<Vec<_>>());
        for w in s.priority.windows(2) {
            prop_assert!(
                s.camera_latencies_ms[w[0].0] <= s.camera_latencies_ms[w[1].0] + 1e-9
            );
        }
    }

    #[test]
    fn balb_never_beats_the_exact_optimum(p in arb_problem()) {
        prop_assume!(p.num_objects() <= 10);
        let opt = exact::solve(&p, true, 20_000_000).expect("within budget");
        let balb = balb_central(&p);
        prop_assert!(opt.assignment.is_feasible(&p));
        prop_assert!(opt.system_latency_ms <= balb.system_latency_ms() + 1e-9);
    }

    #[test]
    fn adding_an_object_never_reduces_camera_latency(p in arb_problem()) {
        let s = balb_central(&p);
        let mut grown = s.assignment.clone();
        // Duplicate an arbitrary object's assignment onto its owner.
        let target = ObjectId(0);
        let owner = s.assignment.owners_of(target)[0];
        let before = grown.camera_latency_ms(&p, owner, true);
        // Assigning another visible object to the same camera cannot lower
        // its latency.
        for o in p.objects() {
            if o.covered_by(owner) && !grown.owners_of(o.id).contains(&owner) {
                grown.assign(o.id, owner);
                let after = grown.camera_latency_ms(&p, owner, true);
                prop_assert!(after + 1e-9 >= before);
                break;
            }
        }
    }

    #[test]
    fn balb_ind_is_feasible_and_maximal(p in arb_problem()) {
        let a = baselines::balb_ind(&p);
        prop_assert!(a.is_feasible(&p));
        for o in p.objects() {
            prop_assert_eq!(a.owners_of(o.id).len(), o.coverage_len());
        }
    }

    #[test]
    fn static_partition_is_deterministic_and_feasible(p in arb_problem()) {
        let a = baselines::static_partition_by_id(&p);
        let b = baselines::static_partition_by_id(&p);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.is_feasible(&p));
    }

    #[test]
    fn unassign_then_assign_round_trips(p in arb_problem()) {
        let s = balb_central(&p);
        let mut a = s.assignment.clone();
        let obj = ObjectId(p.num_objects() - 1);
        let owner = a.owners_of(obj)[0];
        prop_assert!(a.unassign(obj, owner));
        prop_assert!(!a.is_feasible(&p)); // the object is now untracked
        a.assign(obj, owner);
        prop_assert_eq!(a, s.assignment);
    }

    #[test]
    fn empty_assignment_latency_is_just_the_floor(p in arb_problem()) {
        let a = Assignment::empty(p.num_objects());
        for i in 0..p.num_cameras() {
            let cam = CameraId(i);
            prop_assert_eq!(a.camera_latency_ms(&p, cam, false), 0.0);
            prop_assert_eq!(
                a.camera_latency_ms(&p, cam, true),
                p.profile(cam).full_frame_ms()
            );
        }
    }

    #[test]
    fn balb_on_any_camera_subset_stays_feasible(
        p in arb_problem(),
        subset_bits in 1u32..64,
    ) {
        // Degraded-mode invariant: after dropping an arbitrary camera
        // subset (the fault-injection scenario), the restricted instance
        // is valid, BALB still produces a feasible single-owner schedule
        // on it, and the id maps translate consistently back to the
        // original instance.
        let m = p.num_cameras();
        let alive: Vec<CameraId> = (0..m)
            .filter(|i| subset_bits >> i & 1 == 1)
            .map(CameraId)
            .collect();
        prop_assume!(!alive.is_empty());
        let subset = p.restrict_to_cameras(&alive).expect("non-empty survivors");
        // Survivors + losses partition the original object set.
        prop_assert_eq!(
            subset.objects.len() + subset.lost_objects.len(),
            p.num_objects()
        );
        for &lost in &subset.lost_objects {
            prop_assert!(
                p.objects()[lost.0].coverage().all(|c| !alive.contains(&c)),
                "object {} was reported lost but a survivor covers it",
                lost
            );
        }
        let s = balb_central(&subset.problem);
        prop_assert!(s.assignment.is_feasible(&subset.problem));
        for o in subset.problem.objects() {
            prop_assert_eq!(s.assignment.owners_of(o.id).len(), 1);
            // Every owner exists in the original problem and covers the
            // original object there.
            let owner = subset.original_camera(s.assignment.owners_of(o.id)[0]);
            let original = subset.original_object(o.id);
            prop_assert!(p.objects()[original.0].covered_by(owner));
            prop_assert!(alive.contains(&owner));
        }
        // The lifted priority is a permutation of the survivors.
        let mut lifted = subset.lift_priority(&s.priority);
        lifted.sort_unstable();
        let mut expect = alive.clone();
        expect.sort_unstable();
        prop_assert_eq!(lifted, expect);
    }

    #[test]
    fn subset_balb_never_beats_the_subset_exact_optimum(
        p in arb_problem(),
        subset_bits in 1u32..64,
    ) {
        // On small degraded instances the exact solver anchors BALB's
        // quality: the sub-problem's optimum is a lower bound, and removing
        // cameras can only raise it (fewer scheduling choices).
        prop_assume!(p.num_objects() <= 10);
        let m = p.num_cameras();
        let alive: Vec<CameraId> = (0..m)
            .filter(|i| subset_bits >> i & 1 == 1)
            .map(CameraId)
            .collect();
        prop_assume!(!alive.is_empty());
        let subset = p.restrict_to_cameras(&alive).expect("non-empty survivors");
        let balb = balb_central(&subset.problem);
        let opt = exact::solve(&subset.problem, true, 20_000_000).expect("within budget");
        prop_assert!(opt.assignment.is_feasible(&subset.problem));
        prop_assert!(
            opt.system_latency_ms <= balb.system_latency_ms() + 1e-9,
            "subset optimum {} beat by BALB {}",
            opt.system_latency_ms,
            balb.system_latency_ms()
        );
        if subset.objects.len() == p.num_objects() && subset.cameras.len() == m {
            // Identity restriction: the optimum must match the full one.
            let full_opt = exact::solve(&p, true, 20_000_000).expect("within budget");
            prop_assert!((full_opt.system_latency_ms - opt.system_latency_ms).abs() < 1e-9);
        }
    }
}
