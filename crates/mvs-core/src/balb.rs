//! The central stage of BALB (Algorithm 1).
//!
//! Run on the central scheduler at every key frame, after cross-camera
//! association has produced the global object list. Objects are assigned in
//! a single pass, least-flexible first (smallest coverage set), preferring
//! cameras with an open (incomplete) batch of the object's crop size —
//! joining an open batch is latency-free — and otherwise starting a new
//! batch on the camera whose *updated* latency would be smallest.

use crate::{Assignment, CameraId, MvsProblem};
use mvs_vision::SizeCounts;
use serde::{Deserialize, Serialize};

/// Output of the central stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalbSchedule {
    /// The produced feasible single-owner assignment.
    pub assignment: Assignment,
    /// Final per-camera latency `L_i` in ms, *including* the `t_i^full`
    /// initialization of Algorithm 1 line 1.
    pub camera_latencies_ms: Vec<f64>,
    /// Cameras sorted by increasing assigned latency — the fixed priority
    /// order used by the distributed stage for the rest of the horizon
    /// (lowest-latency camera first, i.e. highest priority first).
    pub priority: Vec<CameraId>,
}

impl BalbSchedule {
    /// System latency `L = max_i L_i` of this schedule.
    pub fn system_latency_ms(&self) -> f64 {
        self.camera_latencies_ms.iter().fold(0.0, |a, &b| a.max(b))
    }
}

/// Runs Algorithm 1 on an MVS instance.
///
/// Deterministic; complexity `max(O(N log N), O(M·N))`.
///
/// # Examples
///
/// ```
/// use mvs_core::{balb_central, MvsProblem, ProblemConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let problem = MvsProblem::random(&mut rng, 4, 30, &ProblemConfig::default());
/// let schedule = balb_central(&problem);
/// assert!(schedule.assignment.is_feasible(&problem));
/// // Priority covers every camera exactly once.
/// assert_eq!(schedule.priority.len(), 4);
/// ```
pub fn balb_central(problem: &MvsProblem) -> BalbSchedule {
    let m = problem.num_cameras();
    let mut assignment = Assignment::empty(problem.num_objects());
    // Line 1: initialize latencies with the full-frame inspection time.
    let mut latencies: Vec<f64> = (0..m)
        .map(|i| problem.profile(CameraId(i)).full_frame_ms())
        .collect();
    let mut counts: Vec<SizeCounts> = vec![SizeCounts::new(); m];

    // Line 2: reindex objects by non-decreasing |C_j|, ties in favor of
    // larger target size (then by id for determinism).
    let mut order: Vec<usize> = (0..problem.num_objects()).collect();
    order.sort_by(|&a, &b| {
        let oa = &problem.objects()[a];
        let ob = &problem.objects()[b];
        oa.coverage_len()
            .cmp(&ob.coverage_len())
            .then(ob.max_size().cmp(&oa.max_size()))
            .then(a.cmp(&b))
    });

    for &j in &order {
        let object = &problem.objects()[j];
        // Line 4: cameras with an incomplete batch of this object's size.
        let mut best_open: Option<(CameraId, usize, usize)> = None; // (camera, capacity, limit)
        for camera in object.coverage() {
            let size = object
                .size_on(camera)
                .expect("coverage iterator yields covered cameras");
            let profile = problem.profile(camera);
            let cap = counts[camera.0].open_batch_capacity(size, profile);
            if cap > 0 {
                // "Largest relative capacity": free slots as a fraction of
                // the batch limit, so a half-empty small batch does not lose
                // to a slightly-used huge one. The fractions `cap / limit`
                // are compared exactly by integer cross-multiplication —
                // float division could round two distinct ratios into an
                // epsilon tie (or apart). Exact ties favor the less-loaded
                // camera, then the lower id, for determinism.
                let better = match best_open {
                    None => true,
                    Some((prev_cam, prev_cap, prev_limit)) => {
                        match cross_cmp(cap, profile.batch_limit(size), prev_cap, prev_limit) {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Less => false,
                            std::cmp::Ordering::Equal => {
                                (latencies[camera.0], camera.0)
                                    < (latencies[prev_cam.0], prev_cam.0)
                            }
                        }
                    }
                };
                if better {
                    best_open = Some((camera, cap, profile.batch_limit(size)));
                }
            }
        }
        if let Some((camera, _, _)) = best_open {
            // Lines 5-8: join the open batch; latency is unchanged because
            // the batch's execution time was charged when it was opened.
            let size = object.size_on(camera).expect("covered");
            counts[camera.0].add(size);
            assignment.assign(object.id, camera);
        } else {
            // Lines 9-12: open a new batch on the camera minimizing the
            // *updated* latency L_i + t_i^{s_ij}.
            let (camera, size, cost) = object
                .coverage()
                .map(|c| {
                    let s = object.size_on(c).expect("covered");
                    let t = problem.profile(c).batch_latency_ms(s);
                    (c, s, latencies[c.0] + t)
                })
                .min_by(|a, b| {
                    a.2.partial_cmp(&b.2)
                        .expect("latencies are finite")
                        .then(a.0.cmp(&b.0))
                })
                .expect("coverage sets are non-empty by problem validation");
            counts[camera.0].add(size);
            latencies[camera.0] = cost;
            assignment.assign(object.id, camera);
        }
    }

    // Distributed-stage priority: increasing assigned latency.
    let mut priority: Vec<CameraId> = (0..m).map(CameraId).collect();
    priority.sort_by(|a, b| {
        latencies[a.0]
            .partial_cmp(&latencies[b.0])
            .expect("latencies are finite")
            .then(a.0.cmp(&b.0))
    });

    BalbSchedule {
        assignment,
        camera_latencies_ms: latencies,
        priority,
    }
}

/// Traced variant of [`balb_central`]: additionally records a
/// [`mvs_trace::Stage::Central`] span whose item count is the number of
/// objects scheduled. The solve's wall-clock cost is measured (or zeroed)
/// by the caller's overhead accounting, so the span duration is zero —
/// keeping traces bitwise deterministic.
pub fn balb_central_traced(
    problem: &MvsProblem,
    trace: Option<&mut mvs_trace::TraceBuf>,
) -> BalbSchedule {
    let schedule = balb_central(problem);
    mvs_trace::span_into(trace, mvs_trace::Stage::Central, 0.0, problem.num_objects());
    schedule
}

/// Compares the relative capacities `cap_a / limit_a` and `cap_b / limit_b`
/// exactly via integer cross-multiplication (`cap_a·limit_b` vs
/// `cap_b·limit_a`), widened to `u128` so the products cannot overflow.
fn cross_cmp(cap_a: usize, limit_a: usize, cap_b: usize, limit_b: usize) -> std::cmp::Ordering {
    let lhs = cap_a as u128 * limit_b as u128;
    let rhs = cap_b as u128 * limit_a as u128;
    lhs.cmp(&rhs)
}

#[cfg(test)]
mod tie_break_tests {
    use super::cross_cmp;
    use std::cmp::Ordering;

    #[test]
    fn equal_fractions_compare_equal() {
        assert_eq!(cross_cmp(1, 3, 2, 6), Ordering::Equal);
        assert_eq!(cross_cmp(2, 4, 1, 2), Ordering::Equal);
        assert_eq!(cross_cmp(0, 5, 0, 9), Ordering::Equal);
    }

    #[test]
    fn distinct_fractions_never_tie() {
        assert_eq!(cross_cmp(1, 2, 1, 3), Ordering::Greater);
        assert_eq!(cross_cmp(1, 4, 1, 3), Ordering::Less);
    }

    #[test]
    fn sub_epsilon_differences_are_resolved_exactly() {
        // 1/1_000_000_000_000 vs 1/1_000_000_000_001 differ by ~1e-24 in
        // float — far inside the old 1e-12 epsilon tie band — yet the
        // cross-multiplied comparison distinguishes them.
        let a = (1usize, 1_000_000_000_000usize);
        let b = (1usize, 1_000_000_000_001usize);
        assert_eq!(cross_cmp(a.0, a.1, b.0, b.1), Ordering::Greater);
        assert_eq!(cross_cmp(b.0, b.1, a.0, a.1), Ordering::Less);
    }

    #[test]
    fn huge_operands_do_not_overflow() {
        let big = usize::MAX;
        assert_eq!(cross_cmp(big, big, big, big), Ordering::Equal);
        assert_eq!(cross_cmp(big, big, big - 1, big), Ordering::Greater);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CameraInfo, ObjectId, ObjectInfo, ProblemConfig};
    use mvs_geometry::SizeClass;
    use mvs_vision::{DeviceKind, LatencyProfile};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeMap;

    fn problem(devices: &[DeviceKind], objects: &[&[(usize, SizeClass)]]) -> MvsProblem {
        let cameras: Vec<CameraInfo> = devices
            .iter()
            .enumerate()
            .map(|(i, &d)| CameraInfo {
                id: CameraId(i),
                profile: LatencyProfile::for_device(d),
            })
            .collect();
        let objects: Vec<ObjectInfo> = objects
            .iter()
            .enumerate()
            .map(|(j, cov)| ObjectInfo {
                id: ObjectId(j),
                sizes: cov
                    .iter()
                    .map(|&(c, s)| (CameraId(c), s))
                    .collect::<BTreeMap<_, _>>(),
            })
            .collect();
        MvsProblem::new(cameras, objects).unwrap()
    }

    #[test]
    fn single_coverage_objects_are_deterministic() {
        let p = problem(
            &[DeviceKind::Xavier, DeviceKind::Nano],
            &[
                &[(0, SizeClass::S64)],
                &[(1, SizeClass::S128)],
                &[(1, SizeClass::S64)],
            ],
        );
        let s = balb_central(&p);
        assert_eq!(s.assignment.sole_owner(ObjectId(0)), Some(CameraId(0)));
        assert_eq!(s.assignment.sole_owner(ObjectId(1)), Some(CameraId(1)));
        assert_eq!(s.assignment.sole_owner(ObjectId(2)), Some(CameraId(1)));
    }

    #[test]
    fn shared_object_goes_to_less_loaded_camera() {
        // Xavier (fast) vs Nano (slow, high t_full): a shared object should
        // land on the Xavier.
        let p = problem(
            &[DeviceKind::Xavier, DeviceKind::Nano],
            &[&[(0, SizeClass::S128), (1, SizeClass::S128)]],
        );
        let s = balb_central(&p);
        assert_eq!(s.assignment.sole_owner(ObjectId(0)), Some(CameraId(0)));
    }

    #[test]
    fn open_batch_attracts_shared_objects() {
        // Object 0 is pinned to the Nano and opens an S64 batch there
        // (limit 4). Object 1 is visible from both cameras: despite the
        // Nano's higher latency, it joins the open batch for free.
        let p = problem(
            &[DeviceKind::Xavier, DeviceKind::Nano],
            &[
                &[(1, SizeClass::S64)],
                &[(0, SizeClass::S64), (1, SizeClass::S64)],
            ],
        );
        let s = balb_central(&p);
        assert_eq!(s.assignment.sole_owner(ObjectId(1)), Some(CameraId(1)));
        // And joining the batch did not raise the Nano's latency.
        assert!(
            (s.camera_latencies_ms[1] - (650.0 + 31.0)).abs() < 1e-9,
            "nano latency {}",
            s.camera_latencies_ms[1]
        );
    }

    #[test]
    fn new_batch_goes_to_min_updated_latency() {
        // Both cameras are Xaviers; object sizes differ per camera so the
        // *updated* latency rule matters: camera 0 sees it big (S512,
        // 40 ms), camera 1 sees it small (S64, 5 ms).
        let p = problem(
            &[DeviceKind::Xavier, DeviceKind::Xavier],
            &[&[(0, SizeClass::S512), (1, SizeClass::S64)]],
        );
        let s = balb_central(&p);
        assert_eq!(s.assignment.sole_owner(ObjectId(0)), Some(CameraId(1)));
    }

    #[test]
    fn latencies_match_recomputation() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..30 {
            let p = MvsProblem::random(&mut rng, 5, 40, &ProblemConfig::default());
            let s = balb_central(&p);
            assert!(s.assignment.is_feasible(&p));
            for i in 0..p.num_cameras() {
                let recomputed = s.assignment.camera_latency_ms(&p, CameraId(i), true);
                assert!(
                    (recomputed - s.camera_latencies_ms[i]).abs() < 1e-6,
                    "camera {i}: incremental {} vs recomputed {recomputed}",
                    s.camera_latencies_ms[i]
                );
            }
        }
    }

    #[test]
    fn priority_is_sorted_by_latency() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let p = MvsProblem::random(&mut rng, 6, 50, &ProblemConfig::default());
        let s = balb_central(&p);
        for w in s.priority.windows(2) {
            assert!(s.camera_latencies_ms[w[0].0] <= s.camera_latencies_ms[w[1].0]);
        }
    }

    #[test]
    fn every_object_has_exactly_one_owner() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let p = MvsProblem::random(&mut rng, 4, 60, &ProblemConfig::default());
        let s = balb_central(&p);
        for o in p.objects() {
            assert_eq!(s.assignment.owners_of(o.id).len(), 1);
        }
    }

    #[test]
    fn balances_better_than_naive_first_camera_assignment() {
        // Aggregated over random instances, BALB's max latency should beat
        // the trivial "assign to first covering camera" heuristic clearly
        // (greedy algorithms give no per-instance guarantee, so this is a
        // distributional check).
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let (mut balb_total, mut naive_total) = (0.0, 0.0);
        for _ in 0..20 {
            let p = MvsProblem::random(&mut rng, 4, 40, &ProblemConfig::default());
            let s = balb_central(&p);
            let mut naive = Assignment::empty(p.num_objects());
            for o in p.objects() {
                naive.assign(o.id, o.coverage().next().unwrap());
            }
            balb_total += s.system_latency_ms();
            naive_total += naive.system_latency_ms(&p, true);
        }
        assert!(
            balb_total < naive_total,
            "BALB total {balb_total} vs naive total {naive_total}"
        );
    }
}
