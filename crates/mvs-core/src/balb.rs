//! The central stage of BALB (Algorithm 1).
//!
//! Run on the central scheduler at every key frame, after cross-camera
//! association has produced the global object list. Objects are assigned in
//! a single pass, least-flexible first (smallest coverage set), preferring
//! cameras with an open (incomplete) batch of the object's crop size —
//! joining an open batch is latency-free — and otherwise starting a new
//! batch on the camera whose *updated* latency would be smallest.

use crate::{Assignment, CameraId, MvsProblem, ObjectId, ObjectInfo, ProblemDelta, ProblemError};
use mvs_geometry::SizeClass;
use mvs_vision::SizeCounts;
use serde::{Deserialize, Serialize};

/// Output of the central stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalbSchedule {
    /// The produced feasible single-owner assignment.
    pub assignment: Assignment,
    /// Final per-camera latency `L_i` in ms, *including* the `t_i^full`
    /// initialization of Algorithm 1 line 1.
    pub camera_latencies_ms: Vec<f64>,
    /// Cameras sorted by increasing assigned latency — the fixed priority
    /// order used by the distributed stage for the rest of the horizon
    /// (lowest-latency camera first, i.e. highest priority first).
    pub priority: Vec<CameraId>,
}

impl BalbSchedule {
    /// System latency `L = max_i L_i` of this schedule.
    pub fn system_latency_ms(&self) -> f64 {
        self.camera_latencies_ms.iter().fold(0.0, |a, &b| a.max(b))
    }
}

/// Runs Algorithm 1 on an MVS instance.
///
/// Deterministic; complexity `max(O(N log N), O(M·N))`.
///
/// # Examples
///
/// ```
/// use mvs_core::{balb_central, MvsProblem, ProblemConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let problem = MvsProblem::random(&mut rng, 4, 30, &ProblemConfig::default());
/// let schedule = balb_central(&problem);
/// assert!(schedule.assignment.is_feasible(&problem));
/// // Priority covers every camera exactly once.
/// assert_eq!(schedule.priority.len(), 4);
/// ```
pub fn balb_central(problem: &MvsProblem) -> BalbSchedule {
    let m = problem.num_cameras();
    let mut assignment = Assignment::empty(problem.num_objects());
    // Line 1: initialize latencies with the full-frame inspection time.
    let mut latencies: Vec<f64> = (0..m)
        .map(|i| problem.profile(CameraId(i)).full_frame_ms())
        .collect();
    let mut counts: Vec<SizeCounts> = vec![SizeCounts::new(); m];

    // Line 2: reindex objects by non-decreasing |C_j|, ties in favor of
    // larger target size (then by id for determinism).
    let mut order: Vec<u64> = (0..problem.num_objects())
        .map(|j| order_key(&problem.objects()[j], j))
        .collect();
    order.sort_unstable();

    for &key in &order {
        let j = order_key_index(key);
        let object = &problem.objects()[j];
        let camera = greedy_place(problem, object, &mut latencies, &mut counts);
        assignment.assign(object.id, camera);
    }

    // Distributed-stage priority: increasing assigned latency.
    let mut priority: Vec<CameraId> = (0..m).map(CameraId).collect();
    sort_priority(&mut priority, &latencies);

    BalbSchedule {
        assignment,
        camera_latencies_ms: latencies,
        priority,
    }
}

/// Packs one object's Algorithm 1 line-2 sort key into a `u64`, so the
/// scheduling order comes from an integer `sort_unstable` instead of a
/// comparator that re-derives `|C_j|`/`max_size` per comparison:
/// coverage-set size ascending, max crop size descending (stored inverted),
/// object index ascending. Lexicographic `u64` order therefore equals the
/// comparator order exactly, and the object index rides along in the low
/// bits so the sorted keys need no side table.
pub(crate) fn order_key(object: &ObjectInfo, index: usize) -> u64 {
    let cov = object.coverage_len() as u64;
    let inv_size = (SizeClass::COUNT
        - 1
        - object
            .max_size()
            .expect("coverage sets are non-empty by problem validation")
            .index()) as u64;
    assert!(
        cov <= 0xFFFF && index <= u32::MAX as usize,
        "instance too large for packed sort keys"
    );
    (cov << 40) | (inv_size << 32) | index as u64
}

/// Object index stored in the low bits of a packed sort key.
pub(crate) fn order_key_index(key: u64) -> usize {
    (key & u64::from(u32::MAX)) as usize
}

/// One greedy placement decision of Algorithm 1 lines 4-12, shared verbatim
/// by the cold solve and [`BalbSolver`]'s warm path so both make
/// bitwise-identical choices: it mutates `latencies`/`counts` exactly like
/// the cold loop and returns the chosen camera (the caller records the
/// assignment).
pub(crate) fn greedy_place(
    problem: &MvsProblem,
    object: &ObjectInfo,
    latencies: &mut [f64],
    counts: &mut [SizeCounts],
) -> CameraId {
    // Line 4: cameras with an incomplete batch of this object's size.
    let mut best_open: Option<(CameraId, usize, usize)> = None; // (camera, capacity, limit)
    for camera in object.coverage() {
        let size = object
            .size_on(camera)
            .expect("coverage iterator yields covered cameras");
        let profile = problem.profile(camera);
        let cap = counts[camera.0].open_batch_capacity(size, profile);
        if cap > 0 {
            // "Largest relative capacity": free slots as a fraction of
            // the batch limit, so a half-empty small batch does not lose
            // to a slightly-used huge one. The fractions `cap / limit`
            // are compared exactly by integer cross-multiplication —
            // float division could round two distinct ratios into an
            // epsilon tie (or apart). Exact ties favor the less-loaded
            // camera, then the lower id, for determinism.
            let better = match best_open {
                None => true,
                Some((prev_cam, prev_cap, prev_limit)) => {
                    match cross_cmp(cap, profile.batch_limit(size), prev_cap, prev_limit) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Less => false,
                        std::cmp::Ordering::Equal => {
                            (latencies[camera.0], camera.0) < (latencies[prev_cam.0], prev_cam.0)
                        }
                    }
                }
            };
            if better {
                best_open = Some((camera, cap, profile.batch_limit(size)));
            }
        }
    }
    if let Some((camera, _, _)) = best_open {
        // Lines 5-8: join the open batch; latency is unchanged because
        // the batch's execution time was charged when it was opened.
        let size = object.size_on(camera).expect("covered");
        counts[camera.0].add(size);
        camera
    } else {
        // Lines 9-12: open a new batch on the camera minimizing the
        // *updated* latency L_i + t_i^{s_ij}.
        let (camera, size, cost) = object
            .coverage()
            .map(|c| {
                let s = object.size_on(c).expect("covered");
                let t = problem.profile(c).batch_latency_ms(s);
                (c, s, latencies[c.0] + t)
            })
            .min_by(|a, b| {
                a.2.partial_cmp(&b.2)
                    .expect("latencies are finite")
                    .then(a.0.cmp(&b.0))
            })
            .expect("coverage sets are non-empty by problem validation");
        counts[camera.0].add(size);
        latencies[camera.0] = cost;
        camera
    }
}

/// Sorts `priority` by increasing assigned latency, ties by camera id —
/// the distributed-stage order of both the cold and warm solvers.
pub(crate) fn sort_priority(priority: &mut [CameraId], latencies: &[f64]) {
    debug_assert!(
        priority
            .iter()
            .all(|c| latencies[c.0].is_finite() && latencies[c.0] >= 0.0),
        "latencies are finite and non-negative"
    );
    if priority.len() < 32 {
        // Small fleets: the float comparator's branchy cost is noise and
        // the stable sort stays allocation-free at this size.
        priority.sort_by(|a, b| {
            latencies[a.0]
                .partial_cmp(&latencies[b.0])
                .expect("latencies are finite")
                .then(a.0.cmp(&b.0))
        });
        return;
    }
    // City fleets: non-negative finite doubles order identically by IEEE
    // bit pattern, and the camera id in the low bits makes every key
    // unique, so one unstable integer sort reproduces the (latency, id)
    // lexicographic order of the float comparator exactly — this is the
    // serial tail of the sharded key-frame solve, so its constant matters.
    let mut keys: Vec<u128> = priority
        .iter()
        .map(|c| ((latencies[c.0].to_bits() as u128) << 64) | c.0 as u128)
        .collect();
    keys.sort_unstable();
    for (slot, key) in priority.iter_mut().zip(&keys) {
        *slot = CameraId(*key as u64 as usize);
    }
}

/// Traced variant of [`balb_central`]: additionally records a
/// [`mvs_trace::Stage::Central`] span whose item count is the number of
/// objects scheduled. The solve's wall-clock cost is measured (or zeroed)
/// by the caller's overhead accounting, so the span duration is zero —
/// keeping traces bitwise deterministic.
pub fn balb_central_traced(
    problem: &MvsProblem,
    trace: Option<&mut mvs_trace::TraceBuf>,
) -> BalbSchedule {
    let schedule = balb_central(problem);
    mvs_trace::span_into(trace, mvs_trace::Stage::Central, 0.0, problem.num_objects());
    schedule
}

/// Compares the relative capacities `cap_a / limit_a` and `cap_b / limit_b`
/// exactly via integer cross-multiplication (`cap_a·limit_b` vs
/// `cap_b·limit_a`), widened to `u128` so the products cannot overflow.
fn cross_cmp(cap_a: usize, limit_a: usize, cap_b: usize, limit_b: usize) -> std::cmp::Ordering {
    let lhs = cap_a as u128 * limit_b as u128;
    let rhs = cap_b as u128 * limit_a as u128;
    lhs.cmp(&rhs)
}

/// Counters exposed by [`BalbSolver::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Solves that ran the full greedy pass from position 0.
    pub cold_solves: u64,
    /// Solves that replayed a non-empty prefix of recorded decisions.
    pub warm_solves: u64,
    /// Total scheduling positions replayed in O(1) across all warm solves.
    pub replayed_positions: u64,
}

/// Warm-started, allocation-reusing variant of [`balb_central`].
///
/// The solver keeps the previous instance, its scheduling order, and the
/// per-position camera decisions. On the next solve it finds the longest
/// prefix of scheduling positions whose object data (the `sizes` maps, in
/// Algorithm 1 order) is unchanged, replays the recorded decisions over that
/// prefix in O(1) per position via [`SizeCounts::add_with_delta`], and runs
/// the shared greedy step only from the first divergent position. Because
/// every greedy decision depends only on the per-position object data and
/// the evolving `(latencies, counts)` state — never on object ids — the
/// result is **bitwise identical** to a cold [`balb_central`] solve of the
/// same instance (a property-tested invariant).
///
/// When the frame-over-frame change exceeds
/// [`BalbSolver::fallback_threshold`] (as a fraction of the instance size),
/// or the camera fleet itself changed, the solver falls back to a cold pass
/// — still into its reused buffers, so steady-state solves allocate only
/// when the instance outgrows previous capacity.
///
/// # Examples
///
/// ```
/// use mvs_core::{balb_central, BalbSolver, MvsProblem, ProblemConfig, ProblemDelta};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let a = MvsProblem::random(&mut rng, 4, 30, &ProblemConfig::default());
/// let b = MvsProblem::random(&mut rng, 4, 30, &ProblemConfig::default());
///
/// let mut solver = BalbSolver::new();
/// assert_eq!(*solver.solve(&a), balb_central(&a));
/// // Repair towards `b` through a delta instead of re-solving from scratch.
/// let delta = ProblemDelta::between(&a, &b);
/// assert_eq!(*solver.apply_delta(&delta).unwrap(), balb_central(&b));
/// ```
#[derive(Debug)]
pub struct BalbSolver {
    problem: Option<MvsProblem>,
    /// Packed line-2 sort keys of the previous solve, in scheduling order.
    order: Vec<u64>,
    /// Camera chosen at each scheduling position of the previous solve.
    decisions: Vec<CameraId>,
    /// Reused output; borrowed out to callers after each solve.
    schedule: BalbSchedule,
    counts: Vec<SizeCounts>,
    next_order: Vec<u64>,
    fallback_frac: f64,
    stats: SolverStats,
    last_was_warm: bool,
}

impl Default for BalbSolver {
    fn default() -> Self {
        BalbSolver::new()
    }
}

impl BalbSolver {
    /// Default cold-fallback threshold: warm repair is attempted while at
    /// most this fraction of scheduling positions changed since the last
    /// solve.
    pub const DEFAULT_FALLBACK_THRESHOLD: f64 = 0.25;

    /// Creates a solver with no previous state (the first solve is cold).
    #[must_use]
    pub fn new() -> Self {
        BalbSolver {
            problem: None,
            order: Vec::new(),
            decisions: Vec::new(),
            schedule: BalbSchedule {
                assignment: Assignment::empty(0),
                camera_latencies_ms: Vec::new(),
                priority: Vec::new(),
            },
            counts: Vec::new(),
            next_order: Vec::new(),
            fallback_frac: Self::DEFAULT_FALLBACK_THRESHOLD,
            stats: SolverStats::default(),
            last_was_warm: false,
        }
    }

    /// Creates a solver with a custom cold-fallback threshold in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not a finite value in `[0, 1]`.
    #[must_use]
    pub fn with_fallback_threshold(frac: f64) -> Self {
        assert!(
            frac.is_finite() && (0.0..=1.0).contains(&frac),
            "fallback threshold must be in [0, 1], got {frac}"
        );
        BalbSolver {
            fallback_frac: frac,
            ..BalbSolver::new()
        }
    }

    /// The configured cold-fallback threshold.
    #[must_use]
    pub fn fallback_threshold(&self) -> f64 {
        self.fallback_frac
    }

    /// Solve counters since construction.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Whether the most recent solve took the warm (prefix-replay) path.
    #[must_use]
    pub fn last_solve_was_warm(&self) -> bool {
        self.last_was_warm
    }

    /// Discards the previous solve's warm state: the next solve runs cold,
    /// exactly as on a fresh solver. Solve counters survive.
    ///
    /// A multi-tenant serving front-end calls this when it reconfigures a
    /// tenant (e.g. sheds redundancy under admission control): warm state
    /// describes schedules of the old configuration and must not seed
    /// repairs of the new one.
    pub fn reset(&mut self) {
        self.problem = None;
        self.order.clear();
        self.decisions.clear();
        self.counts.clear();
        self.next_order.clear();
        self.last_was_warm = false;
    }

    /// The schedule produced by the most recent solve.
    ///
    /// # Panics
    ///
    /// Panics if the solver has never solved an instance.
    #[must_use]
    pub fn schedule(&self) -> &BalbSchedule {
        assert!(self.problem.is_some(), "no solve has run yet");
        &self.schedule
    }

    /// Solves `problem`, warm-starting from the previous solve when the
    /// frame-over-frame change is small enough. Clones the instance into
    /// the solver's persistent state; callers that can hand over ownership
    /// should prefer [`BalbSolver::solve_owned`].
    pub fn solve(&mut self, problem: &MvsProblem) -> &BalbSchedule {
        self.solve_owned(problem.clone())
    }

    /// Like [`BalbSolver::solve`], but takes ownership of the instance so
    /// no clone is needed.
    pub fn solve_owned(&mut self, problem: MvsProblem) -> &BalbSchedule {
        let n = problem.num_objects();
        self.build_next_order(&problem);

        // Longest prefix of scheduling positions whose object data is
        // unchanged. Ids are irrelevant here: the greedy decision at a
        // position is a pure function of the size map at that position and
        // the state accumulated from earlier positions.
        let prefix = match &self.problem {
            Some(prev) if prev.cameras() == problem.cameras() => {
                let shared = self.order.len().min(n).min(self.decisions.len());
                (0..shared)
                    .take_while(|&p| {
                        let pj = order_key_index(self.order[p]);
                        let nj = order_key_index(self.next_order[p]);
                        prev.objects()[pj].sizes == problem.objects()[nj].sizes
                    })
                    .count()
            }
            _ => 0,
        };
        self.finish_solve(problem, prefix)
    }

    /// Sorts the instance's packed line-2 keys into `self.next_order`.
    fn build_next_order(&mut self, problem: &MvsProblem) {
        self.next_order.clear();
        self.next_order.extend(
            problem
                .objects()
                .iter()
                .enumerate()
                .map(|(j, o)| order_key(o, j)),
        );
        self.next_order.sort_unstable();
    }

    /// Runs the solve given an already-built `next_order` and a proven-valid
    /// replay prefix (every position `< prefix` holds an object whose size
    /// map is unchanged since the previous solve).
    fn finish_solve(&mut self, problem: MvsProblem, prefix: usize) -> &BalbSchedule {
        let n = problem.num_objects();
        let m = problem.num_cameras();
        let changed = n.max(self.order.len()) - prefix;
        let warm = prefix > 0 && changed as f64 <= self.fallback_frac * n.max(1) as f64;
        let start = if warm { prefix } else { 0 };

        // Reset per-solve state into the reused buffers.
        let latencies = &mut self.schedule.camera_latencies_ms;
        latencies.clear();
        latencies.extend((0..m).map(|i| problem.profile(CameraId(i)).full_frame_ms()));
        self.counts.clear();
        self.counts.resize(m, SizeCounts::new());
        self.schedule.assignment.reset(n);

        // Replay the unchanged prefix: O(1) per position. A join returns a
        // 0.0 delta (latency bitwise unchanged); opening a batch returns
        // exactly the `batch_latency_ms` the cold loop would have added.
        for p in 0..start {
            let j = order_key_index(self.next_order[p]);
            let object = &problem.objects()[j];
            let camera = self.decisions[p];
            let size = object
                .size_on(camera)
                .expect("replayed decision stays within the unchanged coverage set");
            latencies[camera.0] +=
                self.counts[camera.0].add_with_delta(size, problem.profile(camera));
            self.schedule.assignment.assign(ObjectId(j), camera);
        }

        // Run the shared greedy step from the first divergent position.
        self.decisions.truncate(start);
        for p in start..n {
            let j = order_key_index(self.next_order[p]);
            let object = &problem.objects()[j];
            let camera = greedy_place(&problem, object, latencies, &mut self.counts);
            self.schedule.assignment.assign(ObjectId(j), camera);
            self.decisions.push(camera);
        }

        self.schedule.priority.clear();
        self.schedule.priority.extend((0..m).map(CameraId));
        sort_priority(
            &mut self.schedule.priority,
            &self.schedule.camera_latencies_ms,
        );

        std::mem::swap(&mut self.order, &mut self.next_order);
        self.problem = Some(problem);
        self.last_was_warm = warm;
        if warm {
            self.stats.warm_solves += 1;
            self.stats.replayed_positions += start as u64;
        } else {
            self.stats.cold_solves += 1;
        }
        &self.schedule
    }

    /// Applies a frame-over-frame edit script to the stored instance and
    /// re-solves — the allocation-free steady-state entry point: no new
    /// instance is built, and only the edited objects' size maps are cloned.
    ///
    /// # Errors
    ///
    /// Propagates [`ProblemError`] when the delta is invalid for the stored
    /// instance; the solver then clears its state (the next solve is cold).
    ///
    /// # Panics
    ///
    /// Panics if no instance has been solved yet.
    pub fn apply_delta(&mut self, delta: &ProblemDelta) -> Result<&BalbSchedule, ProblemError> {
        let mut problem = self
            .problem
            .take()
            .expect("apply_delta requires a prior solve");

        // The previous instance is edited in place, so the prefix cannot be
        // found by comparing instances; derive it from the delta instead.
        // Positions strictly before the first one holding an edited object —
        // in both the old and the new scheduling order — carry the same
        // objects with the same size maps (dense re-indexing preserves the
        // survivors' relative order, and the index bits are only a sort
        // tie-break within groups whose membership did not change).
        let first_old_changed = self
            .order
            .iter()
            .position(|&key| {
                let id = ObjectId(order_key_index(key));
                delta.left.contains(&id) || delta.moved.iter().any(|(m, _)| *m == id)
            })
            .unwrap_or(self.order.len());

        if let Err(e) = delta.apply(&mut problem) {
            self.order.clear();
            self.decisions.clear();
            return Err(e);
        }

        // Post-apply dense ids of the edited survivors and of the entered
        // tail (a moved object also listed in `left` no longer exists).
        let n = problem.num_objects();
        let entered_start = n - delta.entered.len();
        let is_new_changed = |id: usize| {
            id >= entered_start
                || delta.moved.iter().any(|(m, _)| {
                    !delta.left.contains(m)
                        && id
                            == m.0
                                - delta
                                    .left
                                    .iter()
                                    .enumerate()
                                    .filter(|(i, l)| l.0 < m.0 && !delta.left[..*i].contains(l))
                                    .count()
                })
        };
        self.build_next_order(&problem);
        let first_new_changed = self
            .next_order
            .iter()
            .position(|&key| is_new_changed(order_key_index(key)))
            .unwrap_or(self.next_order.len());

        let shared = self.order.len().min(n).min(self.decisions.len());
        let prefix = first_old_changed.min(first_new_changed).min(shared);
        Ok(self.finish_solve(problem, prefix))
    }

    /// Traced variant of [`BalbSolver::solve_owned`]: additionally records
    /// the same [`mvs_trace::Stage::Central`] span as
    /// [`balb_central_traced`], so swapping the warm solver into a pipeline
    /// leaves traces bitwise unchanged.
    pub fn solve_owned_traced(
        &mut self,
        problem: MvsProblem,
        trace: Option<&mut mvs_trace::TraceBuf>,
    ) -> &BalbSchedule {
        let num_objects = problem.num_objects();
        let schedule = self.solve_owned(problem);
        mvs_trace::span_into(trace, mvs_trace::Stage::Central, 0.0, num_objects);
        schedule
    }
}

#[cfg(test)]
mod tie_break_tests {
    use super::cross_cmp;
    use std::cmp::Ordering;

    #[test]
    fn equal_fractions_compare_equal() {
        assert_eq!(cross_cmp(1, 3, 2, 6), Ordering::Equal);
        assert_eq!(cross_cmp(2, 4, 1, 2), Ordering::Equal);
        assert_eq!(cross_cmp(0, 5, 0, 9), Ordering::Equal);
    }

    #[test]
    fn distinct_fractions_never_tie() {
        assert_eq!(cross_cmp(1, 2, 1, 3), Ordering::Greater);
        assert_eq!(cross_cmp(1, 4, 1, 3), Ordering::Less);
    }

    #[test]
    fn sub_epsilon_differences_are_resolved_exactly() {
        // 1/1_000_000_000_000 vs 1/1_000_000_000_001 differ by ~1e-24 in
        // float — far inside the old 1e-12 epsilon tie band — yet the
        // cross-multiplied comparison distinguishes them.
        let a = (1usize, 1_000_000_000_000usize);
        let b = (1usize, 1_000_000_000_001usize);
        assert_eq!(cross_cmp(a.0, a.1, b.0, b.1), Ordering::Greater);
        assert_eq!(cross_cmp(b.0, b.1, a.0, a.1), Ordering::Less);
    }

    #[test]
    fn huge_operands_do_not_overflow() {
        let big = usize::MAX;
        assert_eq!(cross_cmp(big, big, big, big), Ordering::Equal);
        assert_eq!(cross_cmp(big, big, big - 1, big), Ordering::Greater);
    }
}

#[cfg(test)]
mod solver_tests {
    use super::*;
    use crate::{CameraInfo, ProblemConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeMap;

    /// Bitwise schedule comparison: `PartialEq` would accept `-0.0 == 0.0`;
    /// the determinism contract is stronger.
    fn assert_bitwise_eq(warm: &BalbSchedule, cold: &BalbSchedule, ctx: &str) {
        assert_eq!(warm.assignment, cold.assignment, "{ctx}: assignment");
        assert_eq!(warm.priority, cold.priority, "{ctx}: priority");
        let warm_bits: Vec<u64> = warm
            .camera_latencies_ms
            .iter()
            .map(|l| l.to_bits())
            .collect();
        let cold_bits: Vec<u64> = cold
            .camera_latencies_ms
            .iter()
            .map(|l| l.to_bits())
            .collect();
        assert_eq!(warm_bits, cold_bits, "{ctx}: latency bits");
    }

    #[test]
    fn first_solve_is_cold_and_matches_central() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let p = MvsProblem::random(&mut rng, 4, 30, &ProblemConfig::default());
        let mut solver = BalbSolver::new();
        assert_bitwise_eq(solver.solve(&p), &balb_central(&p), "first solve");
        assert!(!solver.last_solve_was_warm());
        assert_eq!(solver.stats().cold_solves, 1);
        assert_eq!(solver.stats().warm_solves, 0);
    }

    #[test]
    fn small_delta_takes_warm_path_bitwise_identically() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let p = MvsProblem::random(&mut rng, 4, 40, &ProblemConfig::default());
        // Threshold 1.0: warm-start whenever any prefix survives, so the
        // test pins down prefix replay rather than the fallback heuristic.
        let mut solver = BalbSolver::with_fallback_threshold(1.0);
        solver.solve(&p);
        // Give the last object full coverage: coverage-4 objects sort last
        // and id 39 is the largest, so the whole prefix before its old
        // position survives.
        let mut next = p.clone();
        let moved_sizes: BTreeMap<CameraId, SizeClass> =
            (0..4).map(|c| (CameraId(c), SizeClass::S64)).collect();
        let delta = ProblemDelta {
            moved: vec![(ObjectId(39), moved_sizes)],
            ..ProblemDelta::default()
        };
        delta.apply(&mut next).unwrap();
        let warm = solver.apply_delta(&delta).unwrap().clone();
        assert_bitwise_eq(&warm, &balb_central(&next), "after delta");
        assert!(
            solver.last_solve_was_warm(),
            "one edit in 40 must warm-start"
        );
        assert!(solver.stats().replayed_positions > 0);
    }

    #[test]
    fn identical_resolve_replays_every_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(47);
        let p = MvsProblem::random(&mut rng, 3, 25, &ProblemConfig::default());
        let mut solver = BalbSolver::new();
        solver.solve(&p);
        let warm = solver
            .apply_delta(&ProblemDelta::default())
            .unwrap()
            .clone();
        assert_bitwise_eq(&warm, &balb_central(&p), "empty delta");
        assert!(solver.last_solve_was_warm());
        assert_eq!(solver.stats().replayed_positions, 25);
    }

    #[test]
    fn large_delta_falls_back_to_cold() {
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let a = MvsProblem::random(&mut rng, 4, 30, &ProblemConfig::default());
        let b = MvsProblem::random(&mut rng, 4, 30, &ProblemConfig::default());
        let mut solver = BalbSolver::new();
        solver.solve(&a);
        let delta = ProblemDelta::between(&a, &b);
        assert!(delta.len() > 8, "random instances should differ widely");
        let s = solver.apply_delta(&delta).unwrap().clone();
        assert_bitwise_eq(&s, &balb_central(&b), "cold fallback");
        assert!(!solver.last_solve_was_warm());
        assert_eq!(solver.stats().cold_solves, 2);
    }

    #[test]
    fn camera_fleet_change_forces_cold_solve() {
        let mut rng = ChaCha8Rng::seed_from_u64(59);
        let p = MvsProblem::random(&mut rng, 4, 20, &ProblemConfig::default());
        let mut solver = BalbSolver::new();
        solver.solve(&p);
        // Same objects, different fleet profile order.
        let cameras: Vec<CameraInfo> = (0..4)
            .map(|i| CameraInfo {
                id: CameraId(i),
                profile: p.cameras()[3 - i].profile.clone(),
            })
            .collect();
        let objects = p.objects().to_vec();
        let q = MvsProblem::new(cameras, objects).unwrap();
        assert_bitwise_eq(solver.solve(&q), &balb_central(&q), "new fleet");
        assert!(!solver.last_solve_was_warm());
    }

    #[test]
    fn invalid_delta_leaves_solver_usable_and_cold() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let p = MvsProblem::random(&mut rng, 3, 15, &ProblemConfig::default());
        let mut solver = BalbSolver::new();
        solver.solve(&p);
        let bad = ProblemDelta {
            left: vec![ObjectId(99)],
            ..ProblemDelta::default()
        };
        assert_eq!(
            solver.apply_delta(&bad),
            Err(crate::ProblemError::UnknownObject(ObjectId(99)))
        );
        // The solver recovers with a cold solve.
        assert_bitwise_eq(solver.solve(&p), &balb_central(&p), "recovery");
        assert!(!solver.last_solve_was_warm());
    }

    #[test]
    #[should_panic(expected = "no solve has run yet")]
    fn schedule_before_first_solve_panics() {
        let _ = BalbSolver::new().schedule();
    }

    #[test]
    #[should_panic(expected = "fallback threshold")]
    fn rejects_invalid_threshold() {
        let _ = BalbSolver::with_fallback_threshold(1.5);
    }

    #[test]
    fn growth_and_shrink_sequences_stay_bitwise_identical() {
        // Steady churn: every step removes one object, moves one, adds one.
        let mut rng = ChaCha8Rng::seed_from_u64(67);
        let mut reference = MvsProblem::random(&mut rng, 4, 30, &ProblemConfig::default());
        let mut solver = BalbSolver::with_fallback_threshold(0.5);
        solver.solve(&reference);
        for step in 0..20 {
            // Full-coverage S64 objects sort at the very end of the
            // Algorithm-1 order, so churning the two latest-sorting objects
            // (drop one, move one there, enter one) keeps a long surviving
            // prefix and must take the warm path under the 0.5 threshold.
            let full_small: BTreeMap<CameraId, SizeClass> =
                (0..4).map(|c| (CameraId(c), SizeClass::S64)).collect();
            let mut ids: Vec<ObjectId> = reference.objects().iter().map(|o| o.id).collect();
            ids.sort_by_key(|id| {
                let o = &reference.objects()[id.0];
                (
                    o.coverage_len(),
                    SizeClass::COUNT - 1 - o.max_size().unwrap().index(),
                    o.id.0,
                )
            });
            let delta = ProblemDelta {
                left: vec![*ids.last().unwrap()],
                moved: vec![(ids[ids.len() - 2], full_small.clone())],
                entered: vec![full_small],
            };
            delta.apply(&mut reference).unwrap();
            let warm = solver.apply_delta(&delta).unwrap().clone();
            assert_bitwise_eq(&warm, &balb_central(&reference), &format!("step {step}"));
        }
        assert!(
            solver.stats().warm_solves >= 15,
            "tail churn of 3/30 objects should almost always warm-start: {:?}",
            solver.stats()
        );
        assert!(solver.stats().replayed_positions > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CameraInfo, ObjectId, ObjectInfo, ProblemConfig};
    use mvs_geometry::SizeClass;
    use mvs_vision::{DeviceKind, LatencyProfile};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeMap;

    fn problem(devices: &[DeviceKind], objects: &[&[(usize, SizeClass)]]) -> MvsProblem {
        let cameras: Vec<CameraInfo> = devices
            .iter()
            .enumerate()
            .map(|(i, &d)| CameraInfo {
                id: CameraId(i),
                profile: LatencyProfile::for_device(d),
            })
            .collect();
        let objects: Vec<ObjectInfo> = objects
            .iter()
            .enumerate()
            .map(|(j, cov)| ObjectInfo {
                id: ObjectId(j),
                sizes: cov
                    .iter()
                    .map(|&(c, s)| (CameraId(c), s))
                    .collect::<BTreeMap<_, _>>(),
            })
            .collect();
        MvsProblem::new(cameras, objects).unwrap()
    }

    #[test]
    fn single_coverage_objects_are_deterministic() {
        let p = problem(
            &[DeviceKind::Xavier, DeviceKind::Nano],
            &[
                &[(0, SizeClass::S64)],
                &[(1, SizeClass::S128)],
                &[(1, SizeClass::S64)],
            ],
        );
        let s = balb_central(&p);
        assert_eq!(s.assignment.sole_owner(ObjectId(0)), Some(CameraId(0)));
        assert_eq!(s.assignment.sole_owner(ObjectId(1)), Some(CameraId(1)));
        assert_eq!(s.assignment.sole_owner(ObjectId(2)), Some(CameraId(1)));
    }

    #[test]
    fn shared_object_goes_to_less_loaded_camera() {
        // Xavier (fast) vs Nano (slow, high t_full): a shared object should
        // land on the Xavier.
        let p = problem(
            &[DeviceKind::Xavier, DeviceKind::Nano],
            &[&[(0, SizeClass::S128), (1, SizeClass::S128)]],
        );
        let s = balb_central(&p);
        assert_eq!(s.assignment.sole_owner(ObjectId(0)), Some(CameraId(0)));
    }

    #[test]
    fn open_batch_attracts_shared_objects() {
        // Object 0 is pinned to the Nano and opens an S64 batch there
        // (limit 4). Object 1 is visible from both cameras: despite the
        // Nano's higher latency, it joins the open batch for free.
        let p = problem(
            &[DeviceKind::Xavier, DeviceKind::Nano],
            &[
                &[(1, SizeClass::S64)],
                &[(0, SizeClass::S64), (1, SizeClass::S64)],
            ],
        );
        let s = balb_central(&p);
        assert_eq!(s.assignment.sole_owner(ObjectId(1)), Some(CameraId(1)));
        // And joining the batch did not raise the Nano's latency.
        assert!(
            (s.camera_latencies_ms[1] - (650.0 + 31.0)).abs() < 1e-9,
            "nano latency {}",
            s.camera_latencies_ms[1]
        );
    }

    #[test]
    fn new_batch_goes_to_min_updated_latency() {
        // Both cameras are Xaviers; object sizes differ per camera so the
        // *updated* latency rule matters: camera 0 sees it big (S512,
        // 40 ms), camera 1 sees it small (S64, 5 ms).
        let p = problem(
            &[DeviceKind::Xavier, DeviceKind::Xavier],
            &[&[(0, SizeClass::S512), (1, SizeClass::S64)]],
        );
        let s = balb_central(&p);
        assert_eq!(s.assignment.sole_owner(ObjectId(0)), Some(CameraId(1)));
    }

    #[test]
    fn latencies_match_recomputation() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..30 {
            let p = MvsProblem::random(&mut rng, 5, 40, &ProblemConfig::default());
            let s = balb_central(&p);
            assert!(s.assignment.is_feasible(&p));
            for i in 0..p.num_cameras() {
                let recomputed = s.assignment.camera_latency_ms(&p, CameraId(i), true);
                assert!(
                    (recomputed - s.camera_latencies_ms[i]).abs() < 1e-6,
                    "camera {i}: incremental {} vs recomputed {recomputed}",
                    s.camera_latencies_ms[i]
                );
            }
        }
    }

    #[test]
    fn priority_is_sorted_by_latency() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let p = MvsProblem::random(&mut rng, 6, 50, &ProblemConfig::default());
        let s = balb_central(&p);
        for w in s.priority.windows(2) {
            assert!(s.camera_latencies_ms[w[0].0] <= s.camera_latencies_ms[w[1].0]);
        }
    }

    #[test]
    fn every_object_has_exactly_one_owner() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let p = MvsProblem::random(&mut rng, 4, 60, &ProblemConfig::default());
        let s = balb_central(&p);
        for o in p.objects() {
            assert_eq!(s.assignment.owners_of(o.id).len(), 1);
        }
    }

    #[test]
    fn balances_better_than_naive_first_camera_assignment() {
        // Aggregated over random instances, BALB's max latency should beat
        // the trivial "assign to first covering camera" heuristic clearly
        // (greedy algorithms give no per-instance guarantee, so this is a
        // distributional check).
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let (mut balb_total, mut naive_total) = (0.0, 0.0);
        for _ in 0..20 {
            let p = MvsProblem::random(&mut rng, 4, 40, &ProblemConfig::default());
            let s = balb_central(&p);
            let mut naive = Assignment::empty(p.num_objects());
            for o in p.objects() {
                naive.assign(o.id, o.coverage().next().unwrap());
            }
            balb_total += s.system_latency_ms();
            naive_total += naive.system_latency_ms(&p, true);
        }
        assert!(
            balb_total < naive_total,
            "BALB total {balb_total} vs naive total {naive_total}"
        );
    }
}
