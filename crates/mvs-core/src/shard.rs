//! Overlap-graph sharding of the central BALB solve, for city-scale fleets.
//!
//! The paper's deployments stop at a handful of cameras, where one
//! [`balb_central`] call per key frame is cheap. At hundreds of cameras the
//! monolithic solve becomes the coordinator's bottleneck — but city fleets
//! are not one dense blob: view overlap is local (cameras around the same
//! intersection), so the *camera overlap graph* decomposes into many small
//! components. This module exploits that structure:
//!
//! 1. [`OverlapGraph`] — cameras as nodes, an edge wherever two cameras can
//!    co-observe (built either from an instance's coverage sets or from
//!    view polygons via [`Polygon::intersects`]);
//! 2. [`ShardPlan`] — connected components as shards, with an optional
//!    max-shard-size split for pathologically dense districts;
//! 3. [`balb_sharded`] / [`ShardedBalbSolver`] — independent per-shard BALB
//!    solves (cold or warm-started, optionally fanned out over the
//!    persistent pool, [`mvs_exec::pool`]), merged back into one
//!    deployment-wide [`BalbSchedule`];
//! 4. a cross-shard rebalance pass for objects whose coverage a forced
//!    split cut across shard boundaries.
//!
//! # Why sharding is exact on component shards
//!
//! When every shard is a whole connected component of the overlap graph
//! ([`ShardPlan::is_exact`]), the sharded schedule is **bitwise identical**
//! to [`balb_central`] — latencies compare equal under `f64::to_bits`:
//!
//! * every object's coverage set lies inside exactly one component, so the
//!   central greedy's per-object decision reads and writes only that
//!   component's latencies and batch counts — the central pass *is* an
//!   interleaving of independent per-component passes;
//! * Algorithm 1's scheduling order sorts by (coverage size, max crop size,
//!   object index); restricting to a component keeps objects in the same
//!   relative index order with unchanged coverage sizes and crop sizes, so
//!   each component's objects are visited in the same relative order either
//!   way ([`MvsProblem::restrict_to_cameras`] preserves relative order when
//!   it re-indexes densely);
//! * greedy tie-breaks compare latencies and camera *ids*; dense
//!   re-indexing is monotone in the original ids, so every comparison
//!   resolves identically;
//! * per-camera latency is the same sequence of f64 additions either way,
//!   hence bit-equal, and the global priority is one sort of the merged
//!   latencies — the same sort [`balb_central`] runs.
//!
//! A split component forfeits this guarantee for the objects it cuts: each
//! such *boundary object* is clipped to its home shard (the shard holding
//! most of its coverage) for the per-shard solves, then the rebalance pass
//! greedily moves boundary objects across shards whenever the move strictly
//! reduces the pairwise latency maximum — which can only lower (never
//! raise) the system latency relative to the clipped solution.

use crate::balb::{balb_central, greedy_place, order_key, order_key_index, sort_priority};
use crate::{
    Assignment, BalbSchedule, BalbSolver, CameraId, CameraSubset, MvsProblem, ObjectId, ObjectInfo,
};
use mvs_geometry::Polygon;
use mvs_vision::SizeCounts;
use std::collections::BTreeMap;

/// The camera view-overlap graph: one node per camera, an edge between two
/// cameras that can observe a common world region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapGraph {
    /// Sorted, deduplicated neighbour lists (no self-loops).
    adj: Vec<Vec<usize>>,
}

impl OverlapGraph {
    /// Builds the graph from an instance's coverage sets: two cameras are
    /// adjacent iff some object of `problem` is visible to both. This is
    /// the graph the scheduler itself induces, so shards derived from it
    /// are always coverage-closed ([`ShardPlan::from_components`] on this
    /// graph is always exact).
    pub fn from_problem(problem: &MvsProblem) -> OverlapGraph {
        let mut adj = vec![Vec::new(); problem.num_cameras()];
        for object in problem.objects() {
            let coverage: Vec<CameraId> = object.coverage().collect();
            for (k, &a) in coverage.iter().enumerate() {
                for &b in &coverage[k + 1..] {
                    adj[a.0].push(b.0);
                    adj[b.0].push(a.0);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        OverlapGraph { adj }
    }

    /// Builds the graph from camera view polygons: two cameras are adjacent
    /// iff their ground-plane footprints intersect (exact separating-axis
    /// test). This is the *static* overlap structure of a deployment —
    /// independent of any particular frame's objects — used for scenario
    /// statistics and association-training pruning.
    pub fn from_polygons(polygons: &[Polygon]) -> OverlapGraph {
        let mut adj = vec![Vec::new(); polygons.len()];
        for a in 0..polygons.len() {
            for b in a + 1..polygons.len() {
                if polygons[a].intersects(&polygons[b]) {
                    adj[a].push(b);
                    adj[b].push(a);
                }
            }
        }
        OverlapGraph { adj }
    }

    /// Number of cameras (nodes).
    pub fn num_cameras(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether two cameras' views overlap.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn are_overlapping(&self, a: CameraId, b: CameraId) -> bool {
        assert!(b.0 < self.adj.len(), "camera id out of range");
        self.adj[a.0].binary_search(&b.0).is_ok()
    }

    /// Connected components, each as a sorted camera-id list; the component
    /// list itself is ordered by smallest member id. Deterministic.
    pub fn components(&self) -> Vec<Vec<CameraId>> {
        let mut seen = vec![false; self.adj.len()];
        let mut components = Vec::new();
        for start in 0..self.adj.len() {
            if seen[start] {
                continue;
            }
            let mut member_ids = self.bfs_order(start, &mut seen);
            member_ids.sort_unstable();
            components.push(member_ids.into_iter().map(CameraId).collect());
        }
        components
    }

    /// Whether the whole fleet forms a single overlap component.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        self.bfs_order(0, &mut seen).len() == self.adj.len()
    }

    /// Breadth-first traversal order from `start` over unseen nodes
    /// (neighbours visited in ascending id order, so the order — used for
    /// deterministic shard splitting — is a pure function of the graph).
    fn bfs_order(&self, start: usize, seen: &mut [bool]) -> Vec<usize> {
        let mut order = vec![start];
        seen[start] = true;
        let mut head = 0;
        while head < order.len() {
            let node = order[head];
            head += 1;
            for &next in &self.adj[node] {
                if !seen[next] {
                    seen[next] = true;
                    order.push(next);
                }
            }
        }
        order
    }
}

/// A partition of the camera fleet into solve shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Sorted camera ids per shard; shards ordered by smallest member id.
    shards: Vec<Vec<CameraId>>,
    /// Shard index per camera id.
    shard_of: Vec<usize>,
    /// Overlap components that had to be cut by the max-shard-size limit.
    split_components: usize,
}

impl ShardPlan {
    /// One shard per connected component — the exact plan: solving it with
    /// [`balb_sharded`] reproduces [`balb_central`] bitwise (see the module
    /// docs for the argument).
    pub fn from_components(graph: &OverlapGraph) -> ShardPlan {
        Self::build(graph, usize::MAX)
    }

    /// Component shards, but any component larger than `max_cameras` is cut
    /// into consecutive chunks of its (deterministic) breadth-first order.
    /// Splitting caps per-shard solve cost in pathologically dense
    /// districts at the price of exactness: objects whose coverage spans a
    /// cut are clipped to a home shard and later revisited by the
    /// cross-shard rebalance pass.
    ///
    /// # Panics
    ///
    /// Panics if `max_cameras` is zero.
    pub fn with_max_shard_size(graph: &OverlapGraph, max_cameras: usize) -> ShardPlan {
        assert!(max_cameras > 0, "shards need at least one camera");
        Self::build(graph, max_cameras)
    }

    fn build(graph: &OverlapGraph, max_cameras: usize) -> ShardPlan {
        let mut seen = vec![false; graph.num_cameras()];
        let mut shards: Vec<Vec<CameraId>> = Vec::new();
        let mut split_components = 0;
        for start in 0..graph.num_cameras() {
            if seen[start] {
                continue;
            }
            let order = graph.bfs_order(start, &mut seen);
            if order.len() > max_cameras {
                split_components += 1;
            }
            for chunk in order.chunks(max_cameras.min(order.len())) {
                let mut ids: Vec<usize> = chunk.to_vec();
                ids.sort_unstable();
                shards.push(ids.into_iter().map(CameraId).collect());
            }
        }
        shards.sort_by_key(|s| s[0]);
        let mut shard_of = vec![0usize; graph.num_cameras()];
        for (idx, shard) in shards.iter().enumerate() {
            for &c in shard {
                shard_of[c.0] = idx;
            }
        }
        ShardPlan {
            shards,
            shard_of,
            split_components,
        }
    }

    /// The shards: sorted camera-id lists, ordered by smallest member id.
    /// Together they partition `0..M` exactly.
    pub fn shards(&self) -> &[Vec<CameraId>] {
        &self.shards
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Cameras in the largest shard (the per-shard solve-cost bound).
    pub fn largest_shard(&self) -> usize {
        self.shards.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Which shard a camera belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn shard_of(&self, camera: CameraId) -> usize {
        self.shard_of[camera.0]
    }

    /// True when every shard is a whole overlap component — the regime in
    /// which the sharded solve is provably bitwise-equal to the central
    /// one. A plan built by [`ShardPlan::from_components`] is always exact;
    /// one built by [`ShardPlan::with_max_shard_size`] is exact iff no
    /// component exceeded the limit.
    pub fn is_exact(&self) -> bool {
        self.split_components == 0
    }

    /// The shard holding the majority of `object`'s coverage set (ties to
    /// the lowest shard index) — where a boundary object is clipped to for
    /// the per-shard solves.
    fn home_shard(&self, object: &ObjectInfo) -> usize {
        let mut votes: BTreeMap<usize, usize> = BTreeMap::new();
        for camera in object.coverage() {
            *votes.entry(self.shard_of(camera)).or_insert(0) += 1;
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(shard, _)| shard)
            .expect("coverage sets are non-empty by problem validation")
    }

    /// Whether the object's coverage set crosses a shard boundary (only
    /// possible under a split plan).
    fn is_boundary(&self, object: &ObjectInfo) -> bool {
        let mut coverage = object.coverage();
        let first = self.shard_of(coverage.next().expect("non-empty coverage"));
        coverage.any(|c| self.shard_of(c) != first)
    }
}

/// Statistics of the most recent sharded solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedSolveStats {
    /// Shards solved.
    pub shards: usize,
    /// Shards whose [`BalbSolver`] took the warm (prefix-replay) path.
    pub warm_shards: usize,
    /// Boundary objects moved across shards by the rebalance pass.
    pub rebalance_moves: usize,
}

/// Sharded cold solve: per-shard [`balb_central`] merged into a
/// deployment-wide schedule (plus the rebalance pass under a split plan).
///
/// Bitwise-equal to `balb_central(problem)` whenever `plan.is_exact()`.
///
/// # Examples
///
/// ```
/// use mvs_core::{balb_central, balb_sharded, MvsProblem, OverlapGraph, ProblemConfig, ShardPlan};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
/// let problem = MvsProblem::random(&mut rng, 6, 40, &ProblemConfig::default());
/// let plan = ShardPlan::from_components(&OverlapGraph::from_problem(&problem));
/// let sharded = balb_sharded(&problem, &plan);
/// assert_eq!(sharded, balb_central(&problem));
/// ```
///
/// # Panics
///
/// Panics if the plan was built for a different fleet size.
pub fn balb_sharded(problem: &MvsProblem, plan: &ShardPlan) -> BalbSchedule {
    balb_sharded_threaded(problem, plan, 1)
}

/// [`balb_sharded`] with the per-shard solves fanned out across up to
/// `threads` scoped threads. The merge order is fixed by the plan, so the
/// result is identical at any thread count.
///
/// # Panics
///
/// Panics if the plan was built for a different fleet size.
pub fn balb_sharded_threaded(
    problem: &MvsProblem,
    plan: &ShardPlan,
    threads: usize,
) -> BalbSchedule {
    if plan.is_exact() {
        return balb_sharded_exact(problem, plan, threads);
    }
    let subsets = shard_subproblems(problem, plan);
    let schedules = mvs_exec::pool().par_map(&subsets, threads, |sub| balb_central(&sub.problem));
    let borrowed: Vec<&BalbSchedule> = schedules.iter().collect();
    merge_shards(problem, plan, &subsets, &borrowed).0
}

/// Zero-copy sharded solve for exact (whole-component) plans: no
/// sub-instance is materialized. On an exact plan every object's coverage
/// set lies inside one shard, so objects are tagged with their shard and
/// packed scheduling key and scattered into per-shard buckets (parallel
/// over object chunks, each worker filling private buckets), each shard
/// sorts its bucket and replays the greedy pass *against the original
/// instance* — each worker only ever touches its own shard's entries of a
/// private full-width latency/counts scratch — and the merge copies back
/// exactly the shard-owned latency entries. Per-bucket sorted order is
/// the restriction of the global scheduling order (packed keys are unique
/// and comparisons don't cross buckets), so this performs the exact
/// sequence of [`greedy_place`] calls of [`balb_central`] per component
/// and stays bitwise identical at any thread count. The serial residue is
/// the per-shard bucket concatenation (integer memcpys) plus the
/// O(M log M + N) merge.
fn balb_sharded_exact(problem: &MvsProblem, plan: &ShardPlan, threads: usize) -> BalbSchedule {
    balb_sharded_exact_timed(problem, plan, threads).0
}

/// Wall-clock breakdown of one exact sharded solve, reported by
/// [`balb_sharded_profiled`] so the fleet benchmark can model thread
/// scaling from the timings of the *actual* execution path.
#[derive(Debug, Clone)]
pub struct ShardTimings {
    /// Time spent computing per-object (shard, scheduling-key) tags and
    /// scattering them into buckets — embarrassingly parallel over object
    /// chunks (each worker fills private buckets).
    pub keying_ms: f64,
    /// Per-shard solve time (bucket sort + greedy replay + scratch init),
    /// one entry per shard in plan order — parallel across shards.
    pub shard_ms: Vec<f64>,
    /// Serial residue: bucket concatenation, latency/owner merge, and the
    /// global priority sort.
    pub serial_ms: f64,
    /// The latency/owner merge portion of `serial_ms` — the part the
    /// pipelined solve ([`balb_sharded_pipelined`]) overlaps with the
    /// still-running shard solves instead of paying after the join.
    pub merge_ms: f64,
    /// End-to-end wall clock of the solve.
    pub total_ms: f64,
}

/// [`balb_sharded`] on one thread with a wall-clock breakdown — the
/// measurement hook behind `bench_fleet`'s thread-scaling model.
///
/// # Panics
///
/// Panics if the plan is not exact ([`ShardPlan::is_exact`]) or was built
/// for a different fleet size.
pub fn balb_sharded_profiled(
    problem: &MvsProblem,
    plan: &ShardPlan,
) -> (BalbSchedule, ShardTimings) {
    assert!(
        plan.is_exact(),
        "profiled sharded solves require an exact (whole-component) plan"
    );
    let started = std::time::Instant::now();
    let (schedule, keying_ms, shard_ms, solves_ms, merge_ms) =
        balb_sharded_exact_timed(problem, plan, 1);
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    // Subtract the whole solve *window* rather than the per-shard sum, so
    // the per-shard timer overhead (which the untimed production path does
    // not pay between shards) is not misattributed to the serial residue.
    let serial_ms = (total_ms - keying_ms - solves_ms).max(0.0);
    (
        schedule,
        ShardTimings {
            keying_ms,
            shard_ms,
            serial_ms,
            merge_ms: merge_ms.min(serial_ms),
            total_ms,
        },
    )
}

/// Tags every object with its (shard, packed scheduling key) pair and
/// scatters the keys into per-shard buckets, parallel over object chunks:
/// each worker fills its own private bucket set, and the serial residue is
/// one per-shard `append` concatenation (a memcpy of integers). Bucket
/// element order is irrelevant — every bucket is sorted in
/// [`solve_bucket`] and packed keys are unique — so chunked scattering is
/// bitwise equivalent to the serial pass. Returns the buckets and the
/// wall-clock of the parallelizable tag+scatter portion. The key
/// derivation walks the object's crop-size map, so at city scale this
/// pass costs as much as the greedy itself and must not stay serial.
fn tag_and_bucket(problem: &MvsProblem, plan: &ShardPlan, threads: usize) -> (Vec<Vec<u64>>, f64) {
    let n = problem.num_objects();
    let num_shards = plan.num_shards();
    let keying_start = std::time::Instant::now();
    let tag = |j: usize, object: &ObjectInfo| {
        let camera = object
            .coverage()
            .next()
            .expect("coverage sets are non-empty by problem validation");
        (plan.shard_of(camera) as u32, order_key(object, j))
    };
    let workers = threads.clamp(1, n.max(1));
    if workers == 1 {
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); num_shards];
        for (j, object) in problem.objects().iter().enumerate() {
            let (shard, key) = tag(j, object);
            buckets[shard as usize].push(key);
        }
        let keying_ms = keying_start.elapsed().as_secs_f64() * 1e3;
        return (buckets, keying_ms);
    }
    let locals: Vec<Vec<Vec<u64>>> =
        mvs_exec::pool().par_chunks(problem.objects(), workers, |start, chunk| {
            let mut local: Vec<Vec<u64>> = vec![Vec::new(); num_shards];
            for (off, object) in chunk.iter().enumerate() {
                let (shard, key) = tag(start + off, object);
                local[shard as usize].push(key);
            }
            local
        });
    let keying_ms = keying_start.elapsed().as_secs_f64() * 1e3;
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); num_shards];
    for local in locals {
        for (shard, mut keys) in local.into_iter().enumerate() {
            if buckets[shard].is_empty() {
                buckets[shard] = keys;
            } else {
                buckets[shard].append(&mut keys);
            }
        }
    }
    (buckets, keying_ms)
}

/// One shard's solved output: the worker's full-width latency columns,
/// the owner lists it allocated, and the shard's wall-clock in ms.
type ShardSolution = (Vec<f64>, Vec<(ObjectId, Vec<CameraId>)>, f64);

/// Solves one shard's bucket against the original instance: sorts the
/// bucket's packed keys (the restriction of the global scheduling order)
/// and replays [`greedy_place`] into a private full-width latency/counts
/// scratch. Owner lists are allocated here, in the worker, so the merge
/// moves them into place without touching the heap. Returns the local
/// latencies, the owner lists, and the shard's wall-clock.
fn solve_bucket(problem: &MvsProblem, full_frame: &[f64], bucket: &[u64]) -> ShardSolution {
    let shard_start = std::time::Instant::now();
    let mut keys = bucket.to_vec();
    keys.sort_unstable();
    let mut latencies = full_frame.to_vec();
    let mut counts = vec![SizeCounts::new(); full_frame.len()];
    let mut owners: Vec<(ObjectId, Vec<CameraId>)> = Vec::with_capacity(keys.len());
    for &key in &keys {
        let j = order_key_index(key);
        let object = &problem.objects()[j];
        let camera = greedy_place(problem, object, &mut latencies, &mut counts);
        owners.push((object.id, vec![camera]));
    }
    let ms = shard_start.elapsed().as_secs_f64() * 1e3;
    (latencies, owners, ms)
}

/// Folds one shard's output into the deployment-wide state. Exact plans
/// partition cameras and objects across shards, so every call writes a
/// disjoint set of latency entries and owner lists — the merged state is
/// independent of the order shards are folded in.
fn merge_shard_output(
    shard: &[CameraId],
    local: &[f64],
    owners: Vec<(ObjectId, Vec<CameraId>)>,
    latencies: &mut [f64],
    owner_lists: &mut [Vec<CameraId>],
) {
    for &camera in shard {
        latencies[camera.0] = local[camera.0];
    }
    for (object, list) in owners {
        owner_lists[object.0] = list;
    }
}

fn balb_sharded_exact_timed(
    problem: &MvsProblem,
    plan: &ShardPlan,
    threads: usize,
) -> (BalbSchedule, f64, Vec<f64>, f64, f64) {
    assert_eq!(
        plan.shard_of.len(),
        problem.num_cameras(),
        "shard plan was built for a different fleet"
    );
    let m = problem.num_cameras();
    let n = problem.num_objects();
    // Algorithm 1 line 1 template, computed once and memcpy'd per worker.
    let full_frame: Vec<f64> = (0..m)
        .map(|i| problem.profile(CameraId(i)).full_frame_ms())
        .collect();

    let (buckets, keying_ms) = tag_and_bucket(problem, plan, threads);

    let solves_start = std::time::Instant::now();
    let outcomes = mvs_exec::pool().par_map(&buckets, threads, |bucket| {
        solve_bucket(problem, &full_frame, bucket)
    });
    let solves_ms = solves_start.elapsed().as_secs_f64() * 1e3;

    let merge_start = std::time::Instant::now();
    let mut owner_lists: Vec<Vec<CameraId>> = vec![Vec::new(); n];
    let mut latencies = full_frame;
    let mut shard_ms = Vec::with_capacity(outcomes.len());
    for (shard, (local, owners, ms)) in plan.shards().iter().zip(outcomes) {
        merge_shard_output(shard, &local, owners, &mut latencies, &mut owner_lists);
        shard_ms.push(ms);
    }
    let merge_ms = merge_start.elapsed().as_secs_f64() * 1e3;
    let assignment = Assignment::from_owner_lists(owner_lists);
    let mut priority: Vec<CameraId> = (0..m).map(CameraId).collect();
    sort_priority(&mut priority, &latencies);
    let schedule = BalbSchedule {
        assignment,
        camera_latencies_ms: latencies,
        priority,
    };
    (schedule, keying_ms, shard_ms, solves_ms, merge_ms)
}

/// Pipelined exact sharded solve: identical shard computations to
/// [`balb_sharded_threaded`], but the deployment-wide merge runs on the
/// calling thread *as shards complete*
/// ([`mvs_exec::Executor::merge_as_completed`]) instead of after the
/// barrier, hiding the merge behind the still-running shard solves.
///
/// Exact plans partition cameras and objects across shards, so each
/// shard's fold writes a disjoint set of latency entries and owner lists —
/// the merged state, and therefore the schedule, is **bitwise identical**
/// to [`balb_sharded`] and [`balb_central`] regardless of shard completion
/// order or thread count (the differential suite locks this down).
///
/// # Panics
///
/// Panics if the plan is not exact ([`ShardPlan::is_exact`]) or was built
/// for a different fleet size.
pub fn balb_sharded_pipelined(
    problem: &MvsProblem,
    plan: &ShardPlan,
    threads: usize,
) -> BalbSchedule {
    assert!(
        plan.is_exact(),
        "pipelined sharded solves require an exact (whole-component) plan"
    );
    assert_eq!(
        plan.shard_of.len(),
        problem.num_cameras(),
        "shard plan was built for a different fleet"
    );
    let m = problem.num_cameras();
    let n = problem.num_objects();
    let full_frame: Vec<f64> = (0..m)
        .map(|i| problem.profile(CameraId(i)).full_frame_ms())
        .collect();

    let (buckets, _keying_ms) = tag_and_bucket(problem, plan, threads);

    let mut owner_lists: Vec<Vec<CameraId>> = vec![Vec::new(); n];
    let mut latencies = full_frame.clone();
    // Fold shard outputs in completion order (input order with one lane);
    // disjoint writes make the order irrelevant (see merge_shard_output).
    mvs_exec::pool().merge_as_completed(
        &buckets,
        threads,
        |_, bucket| solve_bucket(problem, &full_frame, bucket),
        |shard_idx, (local, owners, _ms)| {
            merge_shard_output(
                &plan.shards()[shard_idx],
                &local,
                owners,
                &mut latencies,
                &mut owner_lists,
            );
        },
    );

    let assignment = Assignment::from_owner_lists(owner_lists);
    let mut priority: Vec<CameraId> = (0..m).map(CameraId).collect();
    sort_priority(&mut priority, &latencies);
    BalbSchedule {
        assignment,
        camera_latencies_ms: latencies,
        priority,
    }
}

/// Warm-started sharded solver: one persistent [`BalbSolver`] per shard, so
/// steady-state key frames repair each shard's previous schedule instead of
/// recomputing it. The per-shard solvers are keyed by the shard's smallest
/// camera id and survive plan changes that leave that shard untouched.
///
/// Like [`BalbSolver`], the output is bitwise identical whether a shard
/// takes its warm or cold path — and therefore bitwise identical to
/// [`balb_central`] whenever the plan is exact.
#[derive(Debug, Default)]
pub struct ShardedBalbSolver {
    /// Per-shard warm solvers, keyed by the shard's smallest camera id.
    solvers: BTreeMap<usize, BalbSolver>,
    stats: ShardedSolveStats,
}

impl ShardedBalbSolver {
    /// A solver with no per-shard state (every first shard solve is cold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics of the most recent [`ShardedBalbSolver::solve`] call.
    pub fn last_stats(&self) -> ShardedSolveStats {
        self.stats
    }

    /// Discards all per-shard warm state (every next shard solve is cold).
    /// Reconfiguration paths — e.g. a serving tenant shedding redundancy —
    /// call this because the cached schedules describe instances of the
    /// old configuration.
    pub fn reset(&mut self) {
        self.solvers.clear();
        self.stats = ShardedSolveStats::default();
    }

    /// Solves `problem` shard-by-shard (warm where possible), fanning the
    /// per-shard solves out over up to `threads` scoped threads, and
    /// returns the merged deployment-wide schedule.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different fleet size.
    pub fn solve(
        &mut self,
        problem: &MvsProblem,
        plan: &ShardPlan,
        threads: usize,
    ) -> BalbSchedule {
        let subsets = shard_subproblems(problem, plan);
        // Key solvers by smallest shard camera id; drop solvers whose shard
        // disappeared so a re-planned fleet cannot leak stale state.
        let keys: Vec<usize> = plan.shards().iter().map(|s| s[0].0).collect();
        self.solvers.retain(|k, _| keys.binary_search(k).is_ok());
        for &k in &keys {
            self.solvers.entry(k).or_default();
        }
        // BTreeMap iteration is key-ascending, which is exactly the shard
        // order (shards are sorted by smallest member id), so zipping is
        // positional.
        let mut tasks: Vec<(&mut BalbSolver, &CameraSubset)> =
            self.solvers.values_mut().zip(subsets.iter()).collect();
        mvs_exec::pool().par_for_each_mut(&mut tasks, threads, |(solver, sub)| {
            solver.solve(&sub.problem);
        });
        let schedules: Vec<&BalbSchedule> =
            self.solvers.values().map(BalbSolver::schedule).collect();
        let (schedule, rebalance_moves) = merge_shards(problem, plan, &subsets, &schedules);
        self.stats = ShardedSolveStats {
            shards: plan.num_shards(),
            warm_shards: self
                .solvers
                .values()
                .filter(|s| s.last_solve_was_warm())
                .count(),
            rebalance_moves,
        };
        schedule
    }
}

/// Restricts `problem` to each shard's cameras. Under an exact plan every
/// object's coverage lies inside one shard, so the per-shard subsets
/// partition the objects as-is; under a split plan, boundary objects are
/// first clipped to their home shard so each is solved exactly once.
fn shard_subproblems(problem: &MvsProblem, plan: &ShardPlan) -> Vec<CameraSubset> {
    assert_eq!(
        plan.shard_of.len(),
        problem.num_cameras(),
        "shard plan was built for a different fleet"
    );
    let restrict = |p: &MvsProblem| -> Vec<CameraSubset> {
        plan.shards()
            .iter()
            .map(|shard| {
                p.restrict_to_cameras(shard)
                    .expect("shards are non-empty by construction")
            })
            .collect()
    };
    if plan.is_exact() {
        return restrict(problem);
    }
    let objects = problem
        .objects()
        .iter()
        .map(|o| {
            if !plan.is_boundary(o) {
                return o.clone();
            }
            let home = plan.home_shard(o);
            let mut clipped = o.clone();
            clipped.sizes.retain(|c, _| plan.shard_of(*c) == home);
            clipped
        })
        .collect();
    let clipped = MvsProblem::new(problem.cameras().to_vec(), objects)
        .expect("clipping keeps instances valid");
    restrict(&clipped)
}

/// Merges per-shard schedules back onto deployment ids: shard latencies and
/// owners are lifted through each [`CameraSubset`], the priority is one
/// global latency sort (the same sort the central solve runs), and under a
/// split plan the cross-shard rebalance pass then revisits boundary
/// objects. Returns the schedule and the number of rebalance moves.
fn merge_shards(
    problem: &MvsProblem,
    plan: &ShardPlan,
    subsets: &[CameraSubset],
    schedules: &[&BalbSchedule],
) -> (BalbSchedule, usize) {
    let m = problem.num_cameras();
    let mut assignment = Assignment::empty(problem.num_objects());
    let mut latencies: Vec<f64> = (0..m)
        .map(|i| problem.profile(CameraId(i)).full_frame_ms())
        .collect();
    for (sub, schedule) in subsets.iter().zip(schedules) {
        for (new, &orig) in sub.cameras.iter().enumerate() {
            latencies[orig.0] = schedule.camera_latencies_ms[new];
        }
        for (new, &orig) in sub.objects.iter().enumerate() {
            for &owner in schedule.assignment.owners_of(crate::ObjectId(new)) {
                assignment.assign(orig, sub.original_camera(owner));
            }
        }
    }
    let moves = if plan.is_exact() {
        0
    } else {
        rebalance(problem, plan, &mut assignment, &mut latencies)
    };
    let mut priority: Vec<CameraId> = (0..m).map(CameraId).collect();
    sort_priority(&mut priority, &latencies);
    (
        BalbSchedule {
            assignment,
            camera_latencies_ms: latencies,
            priority,
        },
        moves,
    )
}

/// Cross-shard rebalance: one deterministic pass over boundary objects in
/// ascending id order, moving an object from its owner to any covering
/// camera (in any shard) whenever the move *strictly* reduces the pairwise
/// latency maximum of the two cameras. Each accepted move leaves every
/// other camera untouched, so the system latency never increases; an object
/// is only ever placed on a camera in its coverage set.
fn rebalance(
    problem: &MvsProblem,
    plan: &ShardPlan,
    assignment: &mut Assignment,
    latencies: &mut [f64],
) -> usize {
    let mut counts: Vec<SizeCounts> = (0..problem.num_cameras())
        .map(|i| assignment.size_counts(problem, CameraId(i)))
        .collect();
    let mut moves = 0;
    for object in problem.objects() {
        if !plan.is_boundary(object) {
            continue;
        }
        let owners = assignment.owners_of(object.id);
        // The rebalance targets the paper's single-owner schedules; an
        // object something else multi-assigned is left alone.
        let &[from] = owners else { continue };
        let from_size = object.size_on(from).expect("owners cover their objects");
        let from_profile = problem.profile(from);
        // Hypothetical removal (counts are Copy — trial on a scratch copy).
        let mut from_counts = counts[from.0];
        let from_after = latencies[from.0] - from_counts.remove_with_delta(from_size, from_profile);
        // Best strictly-improving destination, ties to the lowest camera id.
        let mut best: Option<(f64, CameraId, f64)> = None;
        for to in object.coverage() {
            if to == from {
                continue;
            }
            let to_size = object.size_on(to).expect("coverage yields covered cameras");
            let mut to_counts = counts[to.0];
            let to_after = latencies[to.0] + to_counts.add_with_delta(to_size, problem.profile(to));
            let pair_after = from_after.max(to_after);
            let pair_before = latencies[from.0].max(latencies[to.0]);
            if pair_after < pair_before
                && best.is_none_or(|(b, c, _)| pair_after < b || (pair_after == b && to < c))
            {
                best = Some((pair_after, to, to_after));
            }
        }
        if let Some((_, to, to_after)) = best {
            let to_size = object.size_on(to).expect("chosen from coverage");
            counts[from.0].remove(from_size);
            counts[to.0].add(to_size);
            latencies[from.0] = from_after;
            latencies[to.0] = to_after;
            assignment.unassign(object.id, from);
            assignment.assign(object.id, to);
            moves += 1;
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CameraInfo, ObjectId, ProblemConfig};
    use mvs_geometry::SizeClass;
    use mvs_vision::{DeviceKind, LatencyProfile};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn camera(i: usize, device: DeviceKind) -> CameraInfo {
        CameraInfo {
            id: CameraId(i),
            profile: LatencyProfile::for_device(device),
        }
    }

    fn object(j: usize, coverage: &[(usize, SizeClass)]) -> ObjectInfo {
        ObjectInfo {
            id: ObjectId(j),
            sizes: coverage.iter().map(|&(c, s)| (CameraId(c), s)).collect(),
        }
    }

    /// Two independent 2-camera islands plus an isolated camera.
    fn island_problem() -> MvsProblem {
        MvsProblem::new(
            vec![
                camera(0, DeviceKind::Xavier),
                camera(1, DeviceKind::Nano),
                camera(2, DeviceKind::Tx2),
                camera(3, DeviceKind::Nano),
                camera(4, DeviceKind::Xavier),
            ],
            vec![
                object(0, &[(0, SizeClass::S128), (1, SizeClass::S64)]),
                object(1, &[(1, SizeClass::S256)]),
                object(2, &[(2, SizeClass::S64), (3, SizeClass::S128)]),
                object(3, &[(3, SizeClass::S64)]),
                object(4, &[(2, SizeClass::S512)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn coverage_graph_components_are_deterministic_islands() {
        let p = island_problem();
        let g = OverlapGraph::from_problem(&p);
        assert_eq!(g.num_cameras(), 5);
        assert_eq!(g.num_edges(), 2);
        assert!(g.are_overlapping(CameraId(0), CameraId(1)));
        assert!(!g.are_overlapping(CameraId(1), CameraId(2)));
        assert!(!g.is_connected());
        let comps = g.components();
        assert_eq!(
            comps,
            vec![
                vec![CameraId(0), CameraId(1)],
                vec![CameraId(2), CameraId(3)],
                vec![CameraId(4)],
            ]
        );
    }

    #[test]
    fn polygon_graph_matches_pairwise_intersections() {
        let polys = vec![
            Polygon::view_wedge(mvs_geometry::Point2::new(0.0, 0.0), 0.0, 0.4, 2.0, 40.0),
            Polygon::view_wedge(
                mvs_geometry::Point2::new(30.0, 0.0),
                std::f64::consts::PI,
                0.4,
                2.0,
                40.0,
            ),
            Polygon::view_wedge(mvs_geometry::Point2::new(500.0, 0.0), 0.0, 0.4, 2.0, 40.0),
        ];
        let g = OverlapGraph::from_polygons(&polys);
        assert!(g.are_overlapping(CameraId(0), CameraId(1)));
        assert!(!g.are_overlapping(CameraId(0), CameraId(2)));
        assert_eq!(g.components().len(), 2);
    }

    #[test]
    fn component_plan_is_exact_and_partitions() {
        let p = island_problem();
        let plan = ShardPlan::from_components(&OverlapGraph::from_problem(&p));
        assert!(plan.is_exact());
        assert_eq!(plan.num_shards(), 3);
        assert_eq!(plan.largest_shard(), 2);
        assert_eq!(plan.shard_of(CameraId(3)), 1);
        let mut all: Vec<usize> = plan.shards().iter().flatten().map(|c| c.0).collect();
        all.sort_unstable();
        assert_eq!(all, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn max_size_split_marks_plan_inexact() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = MvsProblem::random(
            &mut rng,
            8,
            60,
            &ProblemConfig {
                overlap_prob: 0.6,
                ..Default::default()
            },
        );
        let g = OverlapGraph::from_problem(&p);
        assert!(g.is_connected(), "dense instance should be one component");
        let plan = ShardPlan::with_max_shard_size(&g, 3);
        assert!(!plan.is_exact());
        assert!(plan.largest_shard() <= 3);
        assert!(plan.num_shards() >= 3);
        let mut all: Vec<usize> = plan.shards().iter().flatten().map(|c| c.0).collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_equals_central_bitwise_on_islands() {
        let p = island_problem();
        let plan = ShardPlan::from_components(&OverlapGraph::from_problem(&p));
        let central = balb_central(&p);
        for threads in [1, 2, 4] {
            let sharded = balb_sharded_threaded(&p, &plan, threads);
            assert_eq!(sharded.assignment, central.assignment, "threads={threads}");
            assert_eq!(sharded.priority, central.priority, "threads={threads}");
            let bits = |s: &BalbSchedule| -> Vec<u64> {
                s.camera_latencies_ms.iter().map(|l| l.to_bits()).collect()
            };
            assert_eq!(bits(&sharded), bits(&central), "threads={threads}");
        }
    }

    #[test]
    fn pipelined_merge_equals_central_bitwise_at_any_thread_count() {
        // The completion-order fold must reproduce the in-order merge
        // exactly — disjoint writes make the two indistinguishable.
        let p = island_problem();
        let plan = ShardPlan::from_components(&OverlapGraph::from_problem(&p));
        let central = balb_central(&p);
        for threads in [1, 2, 4, 8] {
            let pipelined = balb_sharded_pipelined(&p, &plan, threads);
            assert_eq!(
                pipelined.assignment, central.assignment,
                "threads={threads}"
            );
            assert_eq!(pipelined.priority, central.priority, "threads={threads}");
            let bits = |s: &BalbSchedule| -> Vec<u64> {
                s.camera_latencies_ms.iter().map(|l| l.to_bits()).collect()
            };
            assert_eq!(bits(&pipelined), bits(&central), "threads={threads}");
        }
    }

    #[test]
    fn pipelined_merge_matches_sharded_on_random_island_fleets() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for case in 0..10 {
            let p = MvsProblem::random(
                &mut rng,
                12,
                80,
                &ProblemConfig {
                    overlap_prob: 0.0, // coverage-1 objects: many components
                    ..Default::default()
                },
            );
            let plan = ShardPlan::from_components(&OverlapGraph::from_problem(&p));
            assert!(plan.is_exact());
            let reference = balb_sharded_threaded(&p, &plan, 4);
            for threads in [1, 3, 8] {
                let pipelined = balb_sharded_pipelined(&p, &plan, threads);
                assert_eq!(pipelined, reference, "case {case} threads={threads}");
            }
        }
    }

    #[test]
    fn warm_sharded_solver_matches_cold_across_frames() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let config = ProblemConfig {
            overlap_prob: 0.0, // coverage-1 objects: many small components
            ..Default::default()
        };
        let mut frames = vec![MvsProblem::random(&mut rng, 6, 30, &config)];
        // Steady frame: identical instance. Small frame: one object leaves.
        frames.push(frames[0].clone());
        let shrunk = MvsProblem::new(
            frames[0].cameras().to_vec(),
            frames[0].objects()[..29]
                .iter()
                .cloned()
                .map(|mut o| {
                    o.id = ObjectId(o.id.0.min(28));
                    o
                })
                .collect(),
        )
        .unwrap();
        frames.push(shrunk);
        let mut solver = ShardedBalbSolver::new();
        for (frame, p) in frames.iter().enumerate() {
            let plan = ShardPlan::from_components(&OverlapGraph::from_problem(p));
            let warm = solver.solve(p, &plan, 2);
            let cold = balb_central(p);
            assert_eq!(warm, cold, "frame {frame}");
            assert_eq!(solver.last_stats().shards, plan.num_shards());
            assert_eq!(solver.last_stats().rebalance_moves, 0);
            if frame > 0 {
                assert!(
                    solver.last_stats().warm_shards > 0,
                    "steady frame {frame} should warm-start at least one shard"
                );
            }
        }
    }

    #[test]
    fn split_plan_rebalance_reduces_or_keeps_system_latency() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for case in 0..20 {
            let p = MvsProblem::random(
                &mut rng,
                9,
                70,
                &ProblemConfig {
                    overlap_prob: 0.5,
                    ..Default::default()
                },
            );
            let g = OverlapGraph::from_problem(&p);
            let plan = ShardPlan::with_max_shard_size(&g, 3);
            if plan.is_exact() {
                continue;
            }
            let sharded = balb_sharded(&p, &plan);
            assert!(sharded.assignment.is_feasible(&p), "case {case}");
            // Every owner can actually see its object.
            for o in p.objects() {
                let owners = sharded.assignment.owners_of(o.id);
                assert_eq!(owners.len(), 1, "case {case} object {}", o.id.0);
                assert!(
                    o.covered_by(owners[0]),
                    "case {case}: object {} assigned outside its coverage",
                    o.id.0
                );
            }
            // Reported latencies stay consistent with the assignment.
            for i in 0..p.num_cameras() {
                let recomputed = sharded.assignment.camera_latency_ms(&p, CameraId(i), true);
                assert!(
                    (recomputed - sharded.camera_latencies_ms[i]).abs() < 1e-6,
                    "case {case} camera {i}"
                );
            }
        }
    }
}
