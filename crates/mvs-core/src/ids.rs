//! Identifier newtypes for cameras and objects.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense index of a camera within an [`MvsProblem`](crate::MvsProblem).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CameraId(pub usize);

impl fmt::Display for CameraId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<usize> for CameraId {
    fn from(i: usize) -> Self {
        CameraId(i)
    }
}

/// Dense index of a physical object within an
/// [`MvsProblem`](crate::MvsProblem) (a *global* identity spanning all
/// cameras, produced by cross-camera association).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub usize);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl From<usize> for ObjectId {
    fn from(i: usize) -> Self {
        ObjectId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(CameraId(3).to_string(), "c3");
        assert_eq!(ObjectId(11).to_string(), "o11");
    }

    #[test]
    fn conversions_and_ordering() {
        assert_eq!(CameraId::from(2), CameraId(2));
        assert!(ObjectId(1) < ObjectId(2));
    }
}
