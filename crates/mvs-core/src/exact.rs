//! Exact branch-and-bound solver for small MVS instances.
//!
//! The MVS problem is strongly NP-hard (Claim 1), so this solver is not
//! part of the online pipeline; it exists to measure BALB's approximation
//! quality on instances small enough to solve optimally (the
//! `balb_vs_exact` ablation bench) and to anchor property tests.

use crate::{Assignment, CameraId, MvsProblem, ObjectId};
use mvs_vision::SizeCounts;

/// Outcome of an exact solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// An optimal feasible single-owner assignment.
    pub assignment: Assignment,
    /// Its system latency (ms), including the `t^full` initialization when
    /// requested.
    pub system_latency_ms: f64,
    /// Number of search nodes expanded.
    pub nodes: u64,
}

/// Error returned when an instance exceeds the solver's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The node budget that was exhausted.
    pub budget: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exact solver exceeded its budget of {} nodes",
            self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Solves the MVS instance to optimality by depth-first branch and bound.
///
/// Objects are expanded in BALB's order (smallest coverage first) so the
/// deterministic prefix is fixed early; the incumbent is initialized from
/// a greedy pass so pruning bites immediately. `include_full_frame`
/// matches the corresponding [`Assignment::system_latency_ms`] flag.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when more than `node_budget` nodes would be
/// expanded — callers choose how much work an instance is worth.
///
/// # Examples
///
/// ```
/// use mvs_core::{exact, balb_central, MvsProblem, ProblemConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let p = MvsProblem::random(&mut rng, 3, 8, &ProblemConfig::default());
/// let opt = exact::solve(&p, true, 1_000_000)?;
/// let balb = balb_central(&p);
/// assert!(opt.system_latency_ms <= balb.system_latency_ms() + 1e-9);
/// # Ok::<(), mvs_core::exact::BudgetExceeded>(())
/// ```
pub fn solve(
    problem: &MvsProblem,
    include_full_frame: bool,
    node_budget: u64,
) -> Result<ExactSolution, BudgetExceeded> {
    let m = problem.num_cameras();
    let n = problem.num_objects();

    // Same object order as BALB: least flexible first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let oa = &problem.objects()[a];
        let ob = &problem.objects()[b];
        oa.coverage_len()
            .cmp(&ob.coverage_len())
            .then(ob.max_size().cmp(&oa.max_size()))
            .then(a.cmp(&b))
    });

    let base: Vec<f64> = (0..m)
        .map(|i| {
            if include_full_frame {
                problem.profile(CameraId(i)).full_frame_ms()
            } else {
                0.0
            }
        })
        .collect();

    // Incumbent from BALB (a feasible upper bound).
    let greedy = crate::balb_central(problem);
    let mut best_assignment = greedy.assignment.clone();
    let mut best = greedy
        .assignment
        .system_latency_ms(problem, include_full_frame);

    struct Ctx<'a> {
        problem: &'a MvsProblem,
        order: &'a [usize],
        nodes: u64,
        budget: u64,
        best: f64,
        best_choice: Vec<CameraId>,
        exhausted: bool,
    }

    // `lat[i]` carries `base[i] + counts[i].latency_ms(profile_i)`
    // incrementally via the O(1) batch-open/close deltas, so neither the
    // per-node max nor the branch projections re-sum the size classes.
    fn dfs(
        ctx: &mut Ctx<'_>,
        depth: usize,
        counts: &mut [SizeCounts],
        lat: &mut [f64],
        choice: &mut Vec<CameraId>,
    ) {
        if ctx.exhausted {
            return;
        }
        ctx.nodes += 1;
        if ctx.nodes > ctx.budget {
            ctx.exhausted = true;
            return;
        }
        let current_max = lat.iter().fold(0.0, |a, &b| f64::max(a, b));
        if current_max >= ctx.best - 1e-9 {
            return; // prune: cannot improve
        }
        if depth == ctx.order.len() {
            ctx.best = current_max;
            ctx.best_choice = choice.clone();
            return;
        }
        let j = ctx.order[depth];
        let object = &ctx.problem.objects()[j];
        // Branch over covering cameras, cheapest projected latency first.
        let mut branches: Vec<(CameraId, f64)> = object
            .coverage()
            .map(|c| {
                let s = object.size_on(c).expect("covered");
                let mut tmp = counts[c.0];
                let delta = tmp.add_with_delta(s, ctx.problem.profile(c));
                (c, lat[c.0] + delta)
            })
            .collect();
        branches.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        for (c, projected) in branches {
            let s = object.size_on(c).expect("covered");
            counts[c.0].add(s);
            let saved = lat[c.0];
            lat[c.0] = projected;
            choice.push(c);
            dfs(ctx, depth + 1, counts, lat, choice);
            choice.pop();
            lat[c.0] = saved;
            counts[c.0].remove(s);
        }
    }

    let mut ctx = Ctx {
        problem,
        order: &order,
        nodes: 0,
        budget: node_budget,
        best,
        best_choice: Vec::new(),
        exhausted: false,
    };
    let mut counts = vec![SizeCounts::new(); m];
    let mut lat = base;
    let mut choice = Vec::with_capacity(n);
    dfs(&mut ctx, 0, &mut counts, &mut lat, &mut choice);
    if ctx.exhausted {
        return Err(BudgetExceeded {
            budget: node_budget,
        });
    }
    let nodes = ctx.nodes;
    if !ctx.best_choice.is_empty() {
        let mut a = Assignment::empty(n);
        for (depth, &c) in ctx.best_choice.iter().enumerate() {
            a.assign(ObjectId(order[depth]), c);
        }
        best = ctx.best;
        best_assignment = a;
    }
    Ok(ExactSolution {
        assignment: best_assignment,
        system_latency_ms: best,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{balb_central, CameraInfo, ObjectInfo, ProblemConfig};
    use mvs_geometry::SizeClass;
    use mvs_vision::{DeviceKind, LatencyProfile};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeMap;

    #[test]
    fn optimal_never_exceeds_balb() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for _ in 0..15 {
            let p = MvsProblem::random(&mut rng, 3, 9, &ProblemConfig::default());
            let opt = solve(&p, true, 10_000_000).unwrap();
            let balb = balb_central(&p);
            assert!(opt.assignment.is_feasible(&p));
            assert!(
                opt.system_latency_ms <= balb.system_latency_ms() + 1e-9,
                "opt {} > balb {}",
                opt.system_latency_ms,
                balb.system_latency_ms()
            );
            // Reported latency matches the assignment's recomputation.
            let recomputed = opt.assignment.system_latency_ms(&p, true);
            assert!((recomputed - opt.system_latency_ms).abs() < 1e-6);
        }
    }

    #[test]
    fn matches_brute_force_on_tiny_instance() {
        // 2 cameras, 3 objects all shared: 8 assignments, check by hand.
        let cameras = vec![
            CameraInfo {
                id: CameraId(0),
                profile: LatencyProfile::for_device(DeviceKind::Xavier),
            },
            CameraInfo {
                id: CameraId(1),
                profile: LatencyProfile::for_device(DeviceKind::Tx2),
            },
        ];
        let objects: Vec<ObjectInfo> = (0..3)
            .map(|j| {
                let mut sizes = BTreeMap::new();
                sizes.insert(CameraId(0), SizeClass::S512);
                sizes.insert(CameraId(1), SizeClass::S512);
                ObjectInfo {
                    id: ObjectId(j),
                    sizes,
                }
            })
            .collect();
        let p = MvsProblem::new(cameras, objects).unwrap();
        let opt = solve(&p, false, 1_000_000).unwrap();
        // Xavier S512: 67 ms per batch of up to 2; TX2 S512: 92 ms per
        // batch of 1. All on the Xavier costs two batches (134 ms); the
        // optimum puts two objects in one Xavier batch (67 ms) and one on
        // the TX2 (92 ms) → system latency 92 ms.
        assert!((opt.system_latency_ms - 92.0).abs() < 1e-9);
        let on_xavier = (0..3)
            .filter(|&j| opt.assignment.sole_owner(ObjectId(j)) == Some(CameraId(0)))
            .count();
        assert_eq!(on_xavier, 2);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = MvsProblem::random(
            &mut rng,
            4,
            20,
            &ProblemConfig {
                overlap_prob: 0.9,
                ..Default::default()
            },
        );
        // Without the t^full floor the incumbent cannot prune the root, so
        // a 10-node budget must be exhausted on a 20-object instance.
        assert_eq!(solve(&p, false, 10), Err(BudgetExceeded { budget: 10 }));
    }

    #[test]
    fn deterministic_objects_fix_the_solution() {
        // Every object visible from exactly one camera: only one feasible
        // assignment exists and the solver must return it.
        let cameras = vec![
            CameraInfo {
                id: CameraId(0),
                profile: LatencyProfile::for_device(DeviceKind::Nano),
            },
            CameraInfo {
                id: CameraId(1),
                profile: LatencyProfile::for_device(DeviceKind::Nano),
            },
        ];
        let objects: Vec<ObjectInfo> = (0..4)
            .map(|j| {
                let mut sizes = BTreeMap::new();
                sizes.insert(CameraId(j % 2), SizeClass::S128);
                ObjectInfo {
                    id: ObjectId(j),
                    sizes,
                }
            })
            .collect();
        let p = MvsProblem::new(cameras, objects).unwrap();
        let opt = solve(&p, false, 100_000).unwrap();
        for j in 0..4 {
            assert_eq!(
                opt.assignment.sole_owner(ObjectId(j)),
                Some(CameraId(j % 2))
            );
        }
    }

    #[test]
    fn balb_is_often_optimal_on_small_instances() {
        // Not a guarantee, but the approximation should match the optimum
        // on a healthy fraction of small instances.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut optimal_hits = 0;
        let trials = 20;
        for _ in 0..trials {
            let p = MvsProblem::random(&mut rng, 3, 8, &ProblemConfig::default());
            let opt = solve(&p, true, 10_000_000).unwrap();
            let balb = balb_central(&p);
            if (balb.system_latency_ms() - opt.system_latency_ms).abs() < 1e-9 {
                optimal_hits += 1;
            }
        }
        assert!(
            optimal_hits >= trials / 2,
            "BALB optimal on only {optimal_hits}/{trials} instances"
        );
    }
}
