//! Object→camera assignments and the latency arithmetic of Definition 1.

use crate::{CameraId, MvsProblem, ObjectId};
use mvs_vision::{SizeCounts, SizeCountsBatch};
use serde::{Deserialize, Serialize};

/// An assignment matrix `X` between cameras and objects (Definition 2),
/// stored per object as the list of tracking cameras.
///
/// BALB and the exact solver produce single-owner assignments; BALB-Ind
/// (every camera tracks everything it sees) produces multi-owner ones, so
/// the representation allows both.
///
/// # Examples
///
/// ```
/// use mvs_core::{Assignment, CameraId, MvsProblem, ProblemConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
/// let p = MvsProblem::random(&mut rng, 2, 5, &ProblemConfig::default());
/// let mut a = Assignment::empty(p.num_objects());
/// for o in p.objects() {
///     let cam = o.coverage().next().unwrap();
///     a.assign(o.id, cam);
/// }
/// assert!(a.is_feasible(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// `owners[j]` = cameras tracking object `j` (sorted, deduplicated).
    owners: Vec<Vec<CameraId>>,
}

impl Assignment {
    /// An assignment with no owners for any of `num_objects` objects.
    pub fn empty(num_objects: usize) -> Self {
        Assignment {
            owners: vec![Vec::new(); num_objects],
        }
    }

    /// Number of objects covered by this assignment.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True when there are no objects at all.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Builds an assignment directly from per-object owner lists. Each
    /// list must already be sorted and deduplicated (checked in debug
    /// builds) — the bulk-construction path of the sharded solver, which
    /// allocates the lists inside its parallel workers so the serial merge
    /// is pure moves.
    pub(crate) fn from_owner_lists(owners: Vec<Vec<CameraId>>) -> Self {
        debug_assert!(owners.iter().all(|o| o.windows(2).all(|w| w[0] < w[1])));
        Assignment { owners }
    }

    /// Clears every owner list in place and resizes to `num_objects`,
    /// reusing the outer table and each per-object list's capacity — the
    /// buffer-reuse path of the warm scheduler
    /// ([`BalbSolver`](crate::BalbSolver)): once the object count is
    /// steady, repeated solves allocate nothing here.
    pub fn reset(&mut self, num_objects: usize) {
        self.owners.iter_mut().for_each(Vec::clear);
        self.owners.resize_with(num_objects, Vec::new);
    }

    /// Marks `camera` as tracking `object` (`x_ij := 1`). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the object id is out of range.
    pub fn assign(&mut self, object: ObjectId, camera: CameraId) {
        let owners = &mut self.owners[object.0];
        if let Err(pos) = owners.binary_search(&camera) {
            owners.insert(pos, camera);
        }
    }

    /// Removes `camera` from `object`'s owners. Returns whether it was set.
    ///
    /// # Panics
    ///
    /// Panics if the object id is out of range.
    pub fn unassign(&mut self, object: ObjectId, camera: CameraId) -> bool {
        let owners = &mut self.owners[object.0];
        match owners.binary_search(&camera) {
            Ok(pos) => {
                owners.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Cameras tracking `object`.
    ///
    /// # Panics
    ///
    /// Panics if the object id is out of range.
    pub fn owners_of(&self, object: ObjectId) -> &[CameraId] {
        &self.owners[object.0]
    }

    /// The single owner of `object`, if exactly one.
    pub fn sole_owner(&self, object: ObjectId) -> Option<CameraId> {
        match self.owners_of(object) {
            [c] => Some(*c),
            _ => None,
        }
    }

    /// Objects tracked by `camera`.
    pub fn objects_of(&self, camera: CameraId) -> Vec<ObjectId> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, cams)| cams.contains(&camera))
            .map(|(j, _)| ObjectId(j))
            .collect()
    }

    /// Feasibility per Definition 2: every object tracked by ≥ 1 camera,
    /// and only by cameras that can see it.
    pub fn is_feasible(&self, problem: &MvsProblem) -> bool {
        if self.owners.len() != problem.num_objects() {
            return false;
        }
        problem.objects().iter().all(|o| {
            let owners = self.owners_of(o.id);
            !owners.is_empty() && owners.iter().all(|&c| o.covered_by(c))
        })
    }

    /// Per-size crop counts charged to `camera` by this assignment.
    ///
    /// # Panics
    ///
    /// Panics if an owner camera lies outside some object's coverage set
    /// (infeasible assignments have no defined latency).
    pub fn size_counts(&self, problem: &MvsProblem, camera: CameraId) -> SizeCounts {
        let mut counts = SizeCounts::new();
        for (j, owners) in self.owners.iter().enumerate() {
            if owners.contains(&camera) {
                let size = problem.objects()[j]
                    .size_on(camera)
                    .expect("owner camera must cover the object");
                counts.add(size);
            }
        }
        counts
    }

    /// Camera latency `L_i` (Definition 1): greedy-batched partial-frame
    /// inspection time, plus the camera's full-frame time when
    /// `include_full_frame` (Algorithm 1 initializes `L_i := t_i^full`).
    pub fn camera_latency_ms(
        &self,
        problem: &MvsProblem,
        camera: CameraId,
        include_full_frame: bool,
    ) -> f64 {
        let profile = problem.profile(camera);
        let base = if include_full_frame {
            profile.full_frame_ms()
        } else {
            0.0
        };
        base + self.size_counts(problem, camera).latency_ms(profile)
    }

    /// Per-camera latencies `L_i` for *every* camera at once, through the
    /// batched size-count matrix: one object-major pass over the owner
    /// lists fills `scratch`, then one flat pass over the matrix computes
    /// each camera's latency. `out[i]` is bitwise identical to
    /// [`camera_latency_ms`](Self::camera_latency_ms) for camera `i` —
    /// the per-camera counts are the same multiset and the latency terms
    /// are summed in the same size-class order — while avoiding the
    /// scalar path's full owner-table scan per camera.
    pub fn camera_latencies_batched_into(
        &self,
        problem: &MvsProblem,
        include_full_frame: bool,
        scratch: &mut SizeCountsBatch,
        out: &mut Vec<f64>,
    ) {
        let m = problem.num_cameras();
        scratch.reset(m);
        for (j, owners) in self.owners.iter().enumerate() {
            for &camera in owners {
                let size = problem.objects()[j]
                    .size_on(camera)
                    .expect("owner camera must cover the object");
                scratch.add(camera.0, size);
            }
        }
        out.clear();
        out.extend((0..m).map(|i| {
            let profile = problem.profile(CameraId(i));
            let base = if include_full_frame {
                profile.full_frame_ms()
            } else {
                0.0
            };
            base + scratch.latency_row_ms(i, profile)
        }));
    }

    /// System latency `L = max_i L_i` over all cameras.
    ///
    /// Runs on the batched path
    /// ([`camera_latencies_batched_into`](Self::camera_latencies_batched_into)),
    /// folding the max in camera order — the exact value the per-camera
    /// scalar loop produced.
    pub fn system_latency_ms(&self, problem: &MvsProblem, include_full_frame: bool) -> f64 {
        let mut scratch = SizeCountsBatch::new();
        let mut latencies = Vec::new();
        self.camera_latencies_batched_into(
            problem,
            include_full_frame,
            &mut scratch,
            &mut latencies,
        );
        latencies.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CameraInfo, ObjectInfo};
    use mvs_geometry::SizeClass;
    use mvs_vision::{DeviceKind, LatencyProfile};
    use std::collections::BTreeMap;

    fn two_camera_problem() -> MvsProblem {
        let cameras = vec![
            CameraInfo {
                id: CameraId(0),
                profile: LatencyProfile::for_device(DeviceKind::Xavier),
            },
            CameraInfo {
                id: CameraId(1),
                profile: LatencyProfile::for_device(DeviceKind::Nano),
            },
        ];
        let mut objects = Vec::new();
        // Object 0 visible to both; object 1 only to camera 1.
        let mut s0 = BTreeMap::new();
        s0.insert(CameraId(0), SizeClass::S128);
        s0.insert(CameraId(1), SizeClass::S64);
        objects.push(ObjectInfo {
            id: ObjectId(0),
            sizes: s0,
        });
        let mut s1 = BTreeMap::new();
        s1.insert(CameraId(1), SizeClass::S256);
        objects.push(ObjectInfo {
            id: ObjectId(1),
            sizes: s1,
        });
        MvsProblem::new(cameras, objects).unwrap()
    }

    #[test]
    fn assign_unassign_round_trip() {
        let mut a = Assignment::empty(3);
        a.assign(ObjectId(1), CameraId(2));
        a.assign(ObjectId(1), CameraId(0));
        a.assign(ObjectId(1), CameraId(2)); // idempotent
        assert_eq!(a.owners_of(ObjectId(1)), &[CameraId(0), CameraId(2)]);
        assert!(a.unassign(ObjectId(1), CameraId(0)));
        assert!(!a.unassign(ObjectId(1), CameraId(0)));
        assert_eq!(a.sole_owner(ObjectId(1)), Some(CameraId(2)));
    }

    #[test]
    fn feasibility_rules() {
        let p = two_camera_problem();
        let mut a = Assignment::empty(2);
        assert!(!a.is_feasible(&p)); // object untracked
        a.assign(ObjectId(0), CameraId(0));
        a.assign(ObjectId(1), CameraId(1));
        assert!(a.is_feasible(&p));
        // Camera 0 cannot see object 1.
        a.assign(ObjectId(1), CameraId(0));
        assert!(!a.is_feasible(&p));
        // Wrong object count.
        let b = Assignment::empty(1);
        assert!(!b.is_feasible(&p));
    }

    #[test]
    fn latency_uses_per_camera_sizes() {
        let p = two_camera_problem();
        let mut a = Assignment::empty(2);
        a.assign(ObjectId(0), CameraId(0)); // S128 on Xavier: one 30 ms batch
        a.assign(ObjectId(1), CameraId(1)); // S256 on Nano: one 112 ms batch
        assert!((a.camera_latency_ms(&p, CameraId(0), false) - 30.0).abs() < 1e-9);
        assert!((a.camera_latency_ms(&p, CameraId(1), false) - 112.0).abs() < 1e-9);
        assert!((a.system_latency_ms(&p, false) - 112.0).abs() < 1e-9);
        // Full-frame initialization adds t^full.
        assert!((a.camera_latency_ms(&p, CameraId(0), true) - (110.0 + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn same_object_costs_differently_per_camera() {
        let p = two_camera_problem();
        let mut on_fast = Assignment::empty(2);
        on_fast.assign(ObjectId(0), CameraId(0));
        on_fast.assign(ObjectId(1), CameraId(1));
        let mut on_slow = Assignment::empty(2);
        on_slow.assign(ObjectId(0), CameraId(1)); // S64 on Nano: 25 ms
        on_slow.assign(ObjectId(1), CameraId(1));
        // Moving object 0 to the Nano piles everything on one device.
        assert!(
            on_slow.camera_latency_ms(&p, CameraId(1), false)
                > on_fast.camera_latency_ms(&p, CameraId(1), false)
        );
    }

    #[test]
    fn objects_of_lists_assignments() {
        let mut a = Assignment::empty(3);
        a.assign(ObjectId(0), CameraId(1));
        a.assign(ObjectId(2), CameraId(1));
        a.assign(ObjectId(1), CameraId(0));
        assert_eq!(a.objects_of(CameraId(1)), vec![ObjectId(0), ObjectId(2)]);
    }
}
