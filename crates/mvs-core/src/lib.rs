//! The Multi-View Scheduling (MVS) problem and the Batch-Aware
//! Latency-Balanced (BALB) scheduler — the paper's core contribution.
//!
//! A set of cameras with heterogeneous GPUs and partially overlapping
//! fields of view must track a set of objects. Each object can be tracked
//! by any camera in its *coverage set*; tracking costs a partial-frame DNN
//! inspection whose latency depends on the object's quantized crop size and
//! the camera's device profile, with same-size crops batchable on the GPU.
//! The MVS problem (Definition 3) asks for an object→camera assignment
//! minimizing the *maximum* per-camera latency; it is strongly NP-hard
//! (Claim 1, by reduction from bin packing).
//!
//! This crate provides:
//!
//! * [`MvsProblem`] — the task model (Sec. III-A) plus a random-instance
//!   generator for benchmarks;
//! * [`Assignment`] — feasible assignments (Definition 2) and the camera /
//!   system latency arithmetic (Definition 1);
//! * [`balb_central`] — Algorithm 1, the central-stage scheduler run at
//!   every key frame;
//! * [`BalbSolver`] — a warm-started incremental re-solver that repairs the
//!   previous schedule from a [`ProblemDelta`] (bitwise identical to the
//!   cold solve) while reusing every buffer across frames;
//! * [`CameraMask`] / [`DistributedPolicy`] — the distributed stage run at
//!   every regular frame, deciding new-object and takeover responsibility
//!   from synchronized cell masks without cross-camera communication;
//! * [`baselines`] — Full, BALB-Ind, and static partitioning comparators;
//! * [`extensions`] — the paper's Sec. V future-work ideas, implemented:
//!   redundant multi-camera assignment and the total-workload objective;
//! * [`exact`] — a branch-and-bound solver for small instances, used to
//!   measure BALB's approximation quality.
//!
//! # Examples
//!
//! ```
//! use mvs_core::{balb_central, MvsProblem, ProblemConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let problem = MvsProblem::random(&mut rng, 3, 12, &ProblemConfig::default());
//! let schedule = balb_central(&problem);
//! assert!(schedule.assignment.is_feasible(&problem));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod balb;
pub mod baselines;
mod distributed;
pub mod exact;
pub mod extensions;
mod ids;
mod mask;
mod problem;
mod shard;

pub use assignment::Assignment;
pub use balb::{balb_central, balb_central_traced, BalbSchedule, BalbSolver, SolverStats};
pub use distributed::{
    scan_takeovers, scan_takeovers_into, DistributedPolicy, ShadowTrack, ShadowVerdict,
};
pub use ids::{CameraId, ObjectId};
pub use mask::CameraMask;
pub use problem::{
    CameraInfo, CameraSubset, MvsProblem, ObjectInfo, ProblemConfig, ProblemDelta, ProblemError,
};
pub use shard::{
    balb_sharded, balb_sharded_pipelined, balb_sharded_profiled, balb_sharded_threaded,
    OverlapGraph, ShardPlan, ShardTimings, ShardedBalbSolver, ShardedSolveStats,
};
