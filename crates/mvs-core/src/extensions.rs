//! Extensions sketched in the paper's Sec. V (limitations / future work),
//! implemented and evaluated here:
//!
//! * [`balb_redundant`] — *"we may allocate multiple cameras to track the
//!   same object"*: after the normal BALB pass, objects receive up to
//!   `redundancy − 1` additional owner cameras (chosen latency-aware), so
//!   a dynamic occlusion on one camera no longer loses the object.
//! * [`min_total_workload`] — *"an alternative formulation might simply
//!   minimize the cumulative processed workload"*: a scheduler for the
//!   non-real-time regime that minimizes the *sum* of camera latencies
//!   instead of the maximum.
//! * [`balb_quality_aware`] — *"assigning an object to a camera that is
//!   closer … might help improve classification accuracy"*: Algorithm 1
//!   with a tunable latency-vs-quality bias toward larger views.
//! * [`min_upload_cover`] — *"the multi-view scheduling idea may be
//!   extended to [centralized processing] by … uploading the minimum
//!   number of views that offers complete coverage of all objects"*: a
//!   greedy set-cover selection of cameras whose views jointly contain
//!   every object, for bandwidth-limited deployments that stream frames
//!   to an edge server instead of running DNNs onboard.

use crate::{balb_central, Assignment, BalbSchedule, CameraId, MvsProblem};
use mvs_vision::SizeCounts;
use std::collections::BTreeSet;

/// BALB with `redundancy`-fold object coverage.
///
/// The first owner per object comes from the standard central stage
/// (Algorithm 1). Extra owners are then added per object — most-covered
/// objects first, mirroring Algorithm 1's flexibility ordering — choosing
/// at each step the remaining covering camera with an open batch of the
/// object's size, or else the one with the smallest updated latency.
/// Objects seen by fewer cameras than `redundancy` simply get all of them.
///
/// With `redundancy == 1` this is exactly [`balb_central`].
///
/// # Panics
///
/// Panics if `redundancy` is zero.
///
/// # Examples
///
/// ```
/// use mvs_core::{extensions::balb_redundant, MvsProblem, ProblemConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let p = MvsProblem::random(&mut rng, 4, 15, &ProblemConfig::default());
/// let single = balb_redundant(&p, 1);
/// let double = balb_redundant(&p, 2);
/// assert!(double.system_latency_ms() >= single.system_latency_ms());
/// ```
pub fn balb_redundant(problem: &MvsProblem, redundancy: usize) -> BalbSchedule {
    assert!(redundancy > 0, "redundancy must be at least one");
    let schedule = balb_central(problem);
    if redundancy == 1 {
        return schedule;
    }
    let m = problem.num_cameras();
    let mut assignment = schedule.assignment;
    let mut latencies = schedule.camera_latencies_ms;
    let mut counts: Vec<SizeCounts> = vec![SizeCounts::new(); m];
    // Rebuild batch occupancy from the single-owner assignment.
    for object in problem.objects() {
        for &owner in assignment.owners_of(object.id) {
            counts[owner.0].add(object.size_on(owner).expect("owner covers object"));
        }
    }
    // Most-covered objects first: they benefit most from extra views.
    let mut order: Vec<usize> = (0..problem.num_objects()).collect();
    order.sort_by(|&a, &b| {
        let oa = &problem.objects()[a];
        let ob = &problem.objects()[b];
        ob.coverage_len().cmp(&oa.coverage_len()).then(a.cmp(&b))
    });
    // Reused candidate-filter buffer: owners are re-read per step because
    // `assign` below invalidates any borrow of the owner list.
    let mut owners: Vec<CameraId> = Vec::new();
    for &j in &order {
        let object = &problem.objects()[j];
        while assignment.owners_of(object.id).len() < redundancy.min(object.coverage_len()) {
            // Candidates: covering cameras not yet owners.
            owners.clear();
            owners.extend_from_slice(assignment.owners_of(object.id));
            let candidate = object
                .coverage()
                .filter(|c| !owners.contains(c))
                .map(|c| {
                    let size = object.size_on(c).expect("covered");
                    let profile = problem.profile(c);
                    let open = counts[c.0].open_batch_capacity(size, profile) > 0;
                    let updated = if open {
                        latencies[c.0]
                    } else {
                        latencies[c.0] + profile.batch_latency_ms(size)
                    };
                    (c, open, updated)
                })
                // Open batches first (free), then the smallest updated
                // latency, then the lowest id for determinism.
                .min_by(|a, b| {
                    b.1.cmp(&a.1)
                        .then(a.2.partial_cmp(&b.2).expect("finite latencies"))
                        .then(a.0.cmp(&b.0))
                });
            let Some((camera, _, updated)) = candidate else {
                break;
            };
            let size = object.size_on(camera).expect("covered");
            counts[camera.0].add(size);
            latencies[camera.0] = updated;
            assignment.assign(object.id, camera);
        }
    }
    let mut priority: Vec<CameraId> = (0..m).map(CameraId).collect();
    priority.sort_by(|a, b| {
        latencies[a.0]
            .partial_cmp(&latencies[b.0])
            .expect("finite latencies")
            .then(a.0.cmp(&b.0))
    });
    BalbSchedule {
        assignment,
        camera_latencies_ms: latencies,
        priority,
    }
}

/// Traced variant of [`balb_redundant`]: records one
/// [`mvs_trace::Stage::Central`] span for the whole central solve
/// (including the redundancy pass), items = objects scheduled. Span
/// duration is zero for the same determinism reason as
/// [`balb_central_traced`](crate::balb_central_traced).
///
/// # Panics
///
/// Panics if `redundancy` is zero.
pub fn balb_redundant_traced(
    problem: &MvsProblem,
    redundancy: usize,
    trace: Option<&mut mvs_trace::TraceBuf>,
) -> BalbSchedule {
    let schedule = balb_redundant(problem, redundancy);
    mvs_trace::span_into(trace, mvs_trace::Stage::Central, 0.0, problem.num_objects());
    schedule
}

/// Alternative objective: minimize the **total** processed workload
/// `Σ_i L_i` instead of the maximum (for applications without a real-time
/// response requirement).
///
/// Greedy single pass in BALB's order: each object joins an open batch of
/// its size when one exists anywhere in its coverage set (zero marginal
/// cost), and otherwise goes to the camera whose *new batch* is cheapest
/// in absolute milliseconds — regardless of how loaded that camera already
/// is. Returns the assignment and the total workload in ms.
///
/// # Examples
///
/// ```
/// use mvs_core::{extensions::min_total_workload, MvsProblem, ProblemConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let p = MvsProblem::random(&mut rng, 4, 15, &ProblemConfig::default());
/// let (assignment, total) = min_total_workload(&p);
/// assert!(assignment.is_feasible(&p));
/// assert!(total > 0.0);
/// ```
pub fn min_total_workload(problem: &MvsProblem) -> (Assignment, f64) {
    let m = problem.num_cameras();
    let mut assignment = Assignment::empty(problem.num_objects());
    let mut counts: Vec<SizeCounts> = vec![SizeCounts::new(); m];
    let mut order: Vec<usize> = (0..problem.num_objects()).collect();
    order.sort_by(|&a, &b| {
        let oa = &problem.objects()[a];
        let ob = &problem.objects()[b];
        oa.coverage_len()
            .cmp(&ob.coverage_len())
            .then(ob.max_size().cmp(&oa.max_size()))
            .then(a.cmp(&b))
    });
    for &j in &order {
        let object = &problem.objects()[j];
        let (camera, _) = object
            .coverage()
            .map(|c| {
                let size = object.size_on(c).expect("covered");
                let profile = problem.profile(c);
                let marginal = if counts[c.0].open_batch_capacity(size, profile) > 0 {
                    0.0
                } else {
                    profile.batch_latency_ms(size)
                };
                (c, marginal)
            })
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite costs")
                    .then(a.0.cmp(&b.0))
            })
            .expect("non-empty coverage by problem validation");
        counts[camera.0].add(object.size_on(camera).expect("covered"));
        assignment.assign(object.id, camera);
    }
    let total = (0..m)
        .map(|i| counts[i].latency_ms(problem.profile(CameraId(i))))
        .sum();
    (assignment, total)
}

/// Total workload `Σ_i L_i` (ms, without full-frame floors) of an
/// arbitrary assignment — the metric [`min_total_workload`] optimizes.
///
/// Computed through the batched size-count matrix (one pass over the
/// assignment instead of one owner-table scan per camera); the summands
/// and summation order match the per-camera scalar loop exactly.
pub fn total_workload_ms(problem: &MvsProblem, assignment: &Assignment) -> f64 {
    let mut scratch = mvs_vision::SizeCountsBatch::new();
    let mut latencies = Vec::new();
    assignment.camera_latencies_batched_into(problem, false, &mut scratch, &mut latencies);
    latencies.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectId, ProblemConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_problem(seed: u64, m: usize, n: usize) -> MvsProblem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        MvsProblem::random(
            &mut rng,
            m,
            n,
            &ProblemConfig {
                overlap_prob: 0.7,
                ..Default::default()
            },
        )
    }

    #[test]
    fn redundancy_one_is_plain_balb() {
        let p = random_problem(1, 4, 20);
        let a = balb_redundant(&p, 1);
        let b = balb_central(&p);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.camera_latencies_ms, b.camera_latencies_ms);
    }

    #[test]
    fn redundancy_adds_owners_up_to_coverage() {
        let p = random_problem(2, 4, 20);
        let s = balb_redundant(&p, 2);
        assert!(s.assignment.is_feasible(&p));
        for o in p.objects() {
            let owners = s.assignment.owners_of(o.id).len();
            assert_eq!(owners, 2.min(o.coverage_len()), "object {}", o.id);
        }
    }

    #[test]
    fn high_redundancy_saturates_at_full_coverage() {
        let p = random_problem(3, 3, 12);
        let s = balb_redundant(&p, 10);
        for o in p.objects() {
            assert_eq!(s.assignment.owners_of(o.id).len(), o.coverage_len());
        }
    }

    #[test]
    fn redundancy_monotonically_increases_latency() {
        let p = random_problem(4, 4, 25);
        let mut prev = 0.0;
        for r in 1..=3 {
            let s = balb_redundant(&p, r);
            let latency = s.system_latency_ms();
            assert!(latency + 1e-9 >= prev, "redundancy {r}: {latency} < {prev}");
            prev = latency;
        }
    }

    #[test]
    fn redundant_latencies_match_recomputation() {
        let p = random_problem(5, 5, 30);
        let s = balb_redundant(&p, 2);
        for i in 0..p.num_cameras() {
            let recomputed = s.assignment.camera_latency_ms(&p, CameraId(i), true);
            assert!(
                (recomputed - s.camera_latencies_ms[i]).abs() < 1e-6,
                "camera {i}: {} vs {recomputed}",
                s.camera_latencies_ms[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "redundancy must be at least one")]
    fn zero_redundancy_panics() {
        let p = random_problem(6, 2, 5);
        balb_redundant(&p, 0);
    }

    #[test]
    fn total_workload_objective_beats_balb_on_its_own_metric() {
        let mut balb_total = 0.0;
        let mut opt_total = 0.0;
        for seed in 0..15 {
            let p = random_problem(seed, 4, 30);
            let balb = balb_central(&p);
            balb_total += total_workload_ms(&p, &balb.assignment);
            let (_, total) = min_total_workload(&p);
            opt_total += total;
        }
        assert!(
            opt_total <= balb_total + 1e-9,
            "total-workload scheduler lost on its own objective: {opt_total} vs {balb_total}"
        );
    }

    #[test]
    fn total_workload_assignment_is_feasible_single_owner() {
        let p = random_problem(7, 5, 40);
        let (a, total) = min_total_workload(&p);
        assert!(a.is_feasible(&p));
        for o in p.objects() {
            assert_eq!(a.owners_of(o.id).len(), 1);
        }
        assert!((total_workload_ms(&p, &a) - total).abs() < 1e-6);
    }

    #[test]
    fn objectives_disagree_when_loads_skew() {
        // A case where total-workload happily piles everything on one
        // camera while BALB spreads it: many same-size shared objects.
        use crate::{CameraInfo, ObjectInfo};
        use mvs_geometry::SizeClass;
        use mvs_vision::{DeviceKind, LatencyProfile};
        use std::collections::BTreeMap;
        let cameras = vec![
            CameraInfo {
                id: CameraId(0),
                profile: LatencyProfile::for_device(DeviceKind::Xavier),
            },
            CameraInfo {
                id: CameraId(1),
                profile: LatencyProfile::for_device(DeviceKind::Xavier),
            },
        ];
        let objects: Vec<ObjectInfo> = (0..24)
            .map(|j| {
                let mut sizes = BTreeMap::new();
                sizes.insert(CameraId(0), SizeClass::S64);
                sizes.insert(CameraId(1), SizeClass::S64);
                ObjectInfo {
                    id: ObjectId(j),
                    sizes,
                }
            })
            .collect();
        let p = MvsProblem::new(cameras, objects).unwrap();
        let balb = balb_central(&p);
        let (workload_a, _) = min_total_workload(&p);
        // Total-workload never opens a second batch while one is open →
        // fills camera 0 completely; BALB balances the two cameras.
        let balb_max = balb.assignment.system_latency_ms(&p, false);
        let workload_max = workload_a.system_latency_ms(&p, false);
        assert!(
            balb_max <= workload_max,
            "BALB max {balb_max} vs workload max {workload_max}"
        );
        assert!(
            total_workload_ms(&p, &workload_a) <= total_workload_ms(&p, &balb.assignment) + 1e-9
        );
    }
}

/// Selects a small set of cameras whose views jointly cover every object —
/// the paper's proposed bandwidth-saving rule for centralized processing
/// ("uploading the minimum number of views that offers complete coverage
/// of all objects").
///
/// Minimum set cover is NP-hard; this is the classical greedy
/// `ln(N)`-approximation: repeatedly pick the camera that covers the most
/// still-uncovered objects (ties to the faster device, then the lower id).
/// Returns the chosen cameras in selection order.
///
/// # Examples
///
/// ```
/// use mvs_core::{extensions::min_upload_cover, MvsProblem, ProblemConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let p = MvsProblem::random(&mut rng, 5, 30, &ProblemConfig::default());
/// let chosen = min_upload_cover(&p);
/// // Every object is visible from at least one chosen camera.
/// for o in p.objects() {
///     assert!(o.coverage().any(|c| chosen.contains(&c)));
/// }
/// ```
pub fn min_upload_cover(problem: &MvsProblem) -> Vec<CameraId> {
    let mut uncovered: BTreeSet<usize> = (0..problem.num_objects()).collect();
    let mut chosen = Vec::new();
    let mut available: BTreeSet<usize> = (0..problem.num_cameras()).collect();
    while !uncovered.is_empty() {
        let (best, gain) = available
            .iter()
            .map(|&i| {
                let cam = CameraId(i);
                let gain = uncovered
                    .iter()
                    .filter(|&&j| problem.objects()[j].covered_by(cam))
                    .count();
                (i, gain)
            })
            .max_by(|a, b| {
                a.1.cmp(&b.1).then_with(|| {
                    problem
                        .profile(CameraId(a.0))
                        .speed_score()
                        .partial_cmp(&problem.profile(CameraId(b.0)).speed_score())
                        .expect("finite speed scores")
                        .then(b.0.cmp(&a.0))
                })
            })
            .expect("cameras remain while objects are uncovered");
        debug_assert!(gain > 0, "problem validation guarantees coverage");
        available.remove(&best);
        let cam = CameraId(best);
        uncovered.retain(|&j| !problem.objects()[j].covered_by(cam));
        chosen.push(cam);
    }
    chosen
}

#[cfg(test)]
mod cover_tests {
    use super::*;
    use crate::{CameraInfo, ObjectId, ObjectInfo, ProblemConfig};
    use mvs_geometry::SizeClass;
    use mvs_vision::{DeviceKind, LatencyProfile};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeMap;

    #[test]
    fn cover_is_complete_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..20 {
            let p = MvsProblem::random(&mut rng, 5, 25, &ProblemConfig::default());
            let chosen = min_upload_cover(&p);
            for o in p.objects() {
                assert!(
                    o.coverage().any(|c| chosen.contains(&c)),
                    "object {} uncovered",
                    o.id
                );
            }
            assert!(chosen.len() <= p.num_cameras());
        }
    }

    #[test]
    fn full_overlap_needs_one_camera() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let p = MvsProblem::random(
            &mut rng,
            4,
            20,
            &ProblemConfig {
                overlap_prob: 1.0,
                ..Default::default()
            },
        );
        let chosen = min_upload_cover(&p);
        assert_eq!(chosen.len(), 1);
        // Tie-break prefers the fastest device (the generator's camera 0
        // is a Xavier).
        assert_eq!(chosen[0], CameraId(0));
    }

    #[test]
    fn disjoint_views_need_every_camera() {
        let cameras: Vec<CameraInfo> = (0..3)
            .map(|i| CameraInfo {
                id: CameraId(i),
                profile: LatencyProfile::for_device(DeviceKind::Tx2),
            })
            .collect();
        let objects: Vec<ObjectInfo> = (0..6)
            .map(|j| ObjectInfo {
                id: ObjectId(j),
                sizes: BTreeMap::from([(CameraId(j % 3), SizeClass::S128)]),
            })
            .collect();
        let p = MvsProblem::new(cameras, objects).unwrap();
        let chosen = min_upload_cover(&p);
        assert_eq!(chosen.len(), 3);
    }

    #[test]
    fn greedy_prefers_high_gain_cameras() {
        // Camera 0 sees everything; cameras 1 and 2 see halves. Greedy
        // must pick only camera 0.
        let cameras: Vec<CameraInfo> = (0..3)
            .map(|i| CameraInfo {
                id: CameraId(i),
                profile: LatencyProfile::for_device(DeviceKind::Nano),
            })
            .collect();
        let objects: Vec<ObjectInfo> = (0..8)
            .map(|j| {
                let mut sizes = BTreeMap::from([(CameraId(0), SizeClass::S64)]);
                sizes.insert(CameraId(1 + j % 2), SizeClass::S64);
                ObjectInfo {
                    id: ObjectId(j),
                    sizes,
                }
            })
            .collect();
        let p = MvsProblem::new(cameras, objects).unwrap();
        assert_eq!(min_upload_cover(&p), vec![CameraId(0)]);
    }
}

/// Quality-aware BALB (paper Sec. V, "Object size" / "Heterogeneity among
/// cameras"): *"assigning an object to a camera that is closer (e.g., one
/// where the object accounts for more screen pixels) might help improve
/// classification accuracy. … The resulting trade-off between quality and
/// resource savings must be explored."*
///
/// This variant explores it: when an object must start a new batch, the
/// candidate cameras' updated latencies are discounted by
/// `quality_bias_ms × size_index` (size index 0–3 for 64–512 px), so
/// cameras with a *larger* (closer, easier-to-classify) view of the object
/// win ties and near-ties. `quality_bias_ms = 0` reduces to Algorithm 1's
/// choice rule; larger values trade latency for detection quality.
///
/// # Panics
///
/// Panics if `quality_bias_ms` is negative or not finite.
pub fn balb_quality_aware(problem: &MvsProblem, quality_bias_ms: f64) -> BalbSchedule {
    assert!(
        quality_bias_ms >= 0.0 && quality_bias_ms.is_finite(),
        "quality bias must be a non-negative finite number of milliseconds"
    );
    let m = problem.num_cameras();
    let mut assignment = Assignment::empty(problem.num_objects());
    let mut latencies: Vec<f64> = (0..m)
        .map(|i| problem.profile(CameraId(i)).full_frame_ms())
        .collect();
    let mut counts: Vec<SizeCounts> = vec![SizeCounts::new(); m];
    let mut order: Vec<usize> = (0..problem.num_objects()).collect();
    order.sort_by(|&a, &b| {
        let oa = &problem.objects()[a];
        let ob = &problem.objects()[b];
        oa.coverage_len()
            .cmp(&ob.coverage_len())
            .then(ob.max_size().cmp(&oa.max_size()))
            .then(a.cmp(&b))
    });
    for &j in &order {
        let object = &problem.objects()[j];
        // Open-batch preference is unchanged from Algorithm 1 (joining a
        // batch is free either way); quality only biases new-batch choices.
        let mut best_open: Option<(CameraId, f64)> = None;
        for camera in object.coverage() {
            let size = object.size_on(camera).expect("covered");
            let profile = problem.profile(camera);
            let cap = counts[camera.0].open_batch_capacity(size, profile);
            if cap > 0 {
                let rel = cap as f64 / profile.batch_limit(size) as f64;
                if best_open.is_none_or(|(_, prev)| rel > prev) {
                    best_open = Some((camera, rel));
                }
            }
        }
        if let Some((camera, _)) = best_open {
            counts[camera.0].add(object.size_on(camera).expect("covered"));
            assignment.assign(object.id, camera);
            continue;
        }
        let (camera, size, cost) = object
            .coverage()
            .map(|c| {
                let s = object.size_on(c).expect("covered");
                let t = problem.profile(c).batch_latency_ms(s);
                // Larger view (higher size index) → bigger discount.
                let discount = quality_bias_ms * s.index() as f64;
                (c, s, latencies[c.0] + t - discount)
            })
            .min_by(|a, b| {
                a.2.partial_cmp(&b.2)
                    .expect("finite scores")
                    .then(a.0.cmp(&b.0))
            })
            .expect("non-empty coverage");
        counts[camera.0].add(size);
        latencies[camera.0] += problem.profile(camera).batch_latency_ms(size);
        let _ = cost;
        assignment.assign(object.id, camera);
    }
    let mut priority: Vec<CameraId> = (0..m).map(CameraId).collect();
    priority.sort_by(|a, b| {
        latencies[a.0]
            .partial_cmp(&latencies[b.0])
            .expect("finite latencies")
            .then(a.0.cmp(&b.0))
    });
    BalbSchedule {
        assignment,
        camera_latencies_ms: latencies,
        priority,
    }
}

#[cfg(test)]
mod quality_tests {
    use super::*;
    use crate::{CameraInfo, ObjectId, ObjectInfo, ProblemConfig};
    use mvs_geometry::SizeClass;
    use mvs_vision::{DeviceKind, LatencyProfile};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeMap;

    #[test]
    fn zero_bias_matches_plain_balb_objective_value() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        for _ in 0..10 {
            let p = MvsProblem::random(&mut rng, 4, 25, &ProblemConfig::default());
            let plain = balb_central(&p);
            let quality = balb_quality_aware(&p, 0.0);
            assert!(quality.assignment.is_feasible(&p));
            // Tie-breaking differs slightly (open-batch rule), but the
            // achieved system latency must be essentially the same.
            assert!(
                (quality.system_latency_ms() - plain.system_latency_ms()).abs()
                    < plain.system_latency_ms() * 0.15 + 1e-9,
                "quality {} vs plain {}",
                quality.system_latency_ms(),
                plain.system_latency_ms()
            );
        }
    }

    #[test]
    fn bias_pulls_objects_to_the_larger_view() {
        // Identical devices; the object appears large (S512) on camera 0
        // and small (S64) on camera 1. Plain BALB takes the cheap small
        // view; a strong quality bias flips the choice.
        let cameras: Vec<CameraInfo> = (0..2)
            .map(|i| CameraInfo {
                id: CameraId(i),
                profile: LatencyProfile::for_device(DeviceKind::Xavier),
            })
            .collect();
        let objects = vec![ObjectInfo {
            id: ObjectId(0),
            sizes: BTreeMap::from([
                (CameraId(0), SizeClass::S512),
                (CameraId(1), SizeClass::S64),
            ]),
        }];
        let p = MvsProblem::new(cameras, objects).unwrap();
        let plain = balb_quality_aware(&p, 0.0);
        assert_eq!(plain.assignment.sole_owner(ObjectId(0)), Some(CameraId(1)));
        let biased = balb_quality_aware(&p, 100.0);
        assert_eq!(biased.assignment.sole_owner(ObjectId(0)), Some(CameraId(0)));
    }

    #[test]
    fn bias_increases_mean_assigned_view_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let p = MvsProblem::random(
            &mut rng,
            4,
            60,
            &ProblemConfig {
                overlap_prob: 0.8,
                ..Default::default()
            },
        );
        let mean_size = |s: &BalbSchedule| {
            let total: usize = p
                .objects()
                .iter()
                .map(|o| {
                    let owner = s.assignment.owners_of(o.id)[0];
                    o.size_on(owner).expect("covered").index()
                })
                .sum();
            total as f64 / p.num_objects() as f64
        };
        let plain = balb_quality_aware(&p, 0.0);
        let biased = balb_quality_aware(&p, 40.0);
        assert!(
            mean_size(&biased) > mean_size(&plain),
            "bias should raise the mean assigned view size: {} vs {}",
            mean_size(&biased),
            mean_size(&plain)
        );
        // And pay for it in latency.
        assert!(biased.system_latency_ms() >= plain.system_latency_ms());
    }

    #[test]
    #[should_panic(expected = "quality bias must be")]
    fn negative_bias_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = MvsProblem::random(&mut rng, 2, 5, &ProblemConfig::default());
        balb_quality_aware(&p, -1.0);
    }
}
