//! The MVS task model (Sec. III-A) and a random-instance generator.

use crate::{CameraId, ObjectId};
use mvs_geometry::SizeClass;
use mvs_vision::{DeviceKind, LatencyProfile};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One camera of the deployment: its identity and profiled device speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraInfo {
    /// Dense camera index.
    pub id: CameraId,
    /// Offline-profiled latency table of the onboard GPU.
    pub profile: LatencyProfile,
}

/// One physical object: the cameras that can see it and its quantized crop
/// size on each of them (`s_ij` — sizes differ across cameras because of
/// perspective).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectInfo {
    /// Dense object index (global identity after cross-camera association).
    pub id: ObjectId,
    /// Target crop size per covering camera. The key set *is* the coverage
    /// set `C_j`.
    pub sizes: BTreeMap<CameraId, SizeClass>,
}

impl ObjectInfo {
    /// The coverage set `C_j`: cameras that can see this object.
    pub fn coverage(&self) -> impl Iterator<Item = CameraId> + '_ {
        self.sizes.keys().copied()
    }

    /// Number of cameras that can see this object.
    pub fn coverage_len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether `camera` can see this object.
    pub fn covered_by(&self, camera: CameraId) -> bool {
        self.sizes.contains_key(&camera)
    }

    /// Crop size on `camera`, if covered.
    pub fn size_on(&self, camera: CameraId) -> Option<SizeClass> {
        self.sizes.get(&camera).copied()
    }

    /// The largest crop size over the coverage set (used for Algorithm 1's
    /// tie-breaking).
    pub fn max_size(&self) -> Option<SizeClass> {
        self.sizes.values().copied().max()
    }
}

/// Error returned by [`MvsProblem::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// The camera list was empty.
    NoCameras,
    /// Camera ids were not the dense sequence `0..M`.
    NonDenseCameraIds,
    /// Object ids were not the dense sequence `0..N`.
    NonDenseObjectIds,
    /// An object had an empty coverage set (unschedulable).
    EmptyCoverage(ObjectId),
    /// An object referenced a camera outside the camera list.
    UnknownCamera(ObjectId, CameraId),
    /// A [`ProblemDelta`] referenced an object id absent from the instance.
    UnknownObject(ObjectId),
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::NoCameras => write!(f, "problem has no cameras"),
            ProblemError::NonDenseCameraIds => write!(f, "camera ids must be dense 0..M"),
            ProblemError::NonDenseObjectIds => write!(f, "object ids must be dense 0..N"),
            ProblemError::EmptyCoverage(o) => write!(f, "object {o} has an empty coverage set"),
            ProblemError::UnknownCamera(o, c) => {
                write!(f, "object {o} references unknown camera {c}")
            }
            ProblemError::UnknownObject(o) => {
                write!(f, "delta references unknown object {o}")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

/// A complete MVS instance: cameras, objects, coverage, and crop sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvsProblem {
    cameras: Vec<CameraInfo>,
    objects: Vec<ObjectInfo>,
}

impl MvsProblem {
    /// Validates and builds an instance.
    ///
    /// # Errors
    ///
    /// See [`ProblemError`]: ids must be dense, every object must be seen
    /// by at least one *known* camera.
    pub fn new(cameras: Vec<CameraInfo>, objects: Vec<ObjectInfo>) -> Result<Self, ProblemError> {
        if cameras.is_empty() {
            return Err(ProblemError::NoCameras);
        }
        for (i, c) in cameras.iter().enumerate() {
            if c.id.0 != i {
                return Err(ProblemError::NonDenseCameraIds);
            }
        }
        for (j, o) in objects.iter().enumerate() {
            if o.id.0 != j {
                return Err(ProblemError::NonDenseObjectIds);
            }
            if o.sizes.is_empty() {
                return Err(ProblemError::EmptyCoverage(o.id));
            }
            for &c in o.sizes.keys() {
                if c.0 >= cameras.len() {
                    return Err(ProblemError::UnknownCamera(o.id, c));
                }
            }
        }
        Ok(MvsProblem { cameras, objects })
    }

    /// The cameras, indexed by [`CameraId`].
    pub fn cameras(&self) -> &[CameraInfo] {
        &self.cameras
    }

    /// The objects, indexed by [`ObjectId`].
    pub fn objects(&self) -> &[ObjectInfo] {
        &self.objects
    }

    /// Number of cameras `M`.
    pub fn num_cameras(&self) -> usize {
        self.cameras.len()
    }

    /// Number of objects `N`.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Latency profile of one camera.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn profile(&self, camera: CameraId) -> &LatencyProfile {
        &self.cameras[camera.0].profile
    }

    /// Generates a random instance for benchmarks and property tests.
    pub fn random<R: Rng + ?Sized>(
        rng: &mut R,
        num_cameras: usize,
        num_objects: usize,
        config: &ProblemConfig,
    ) -> MvsProblem {
        assert!(num_cameras > 0, "need at least one camera");
        let cameras: Vec<CameraInfo> = (0..num_cameras)
            .map(|i| CameraInfo {
                id: CameraId(i),
                profile: LatencyProfile::for_device(match i % 3 {
                    0 => DeviceKind::Xavier,
                    1 => DeviceKind::Tx2,
                    _ => DeviceKind::Nano,
                }),
            })
            .collect();
        let objects: Vec<ObjectInfo> = (0..num_objects)
            .map(|j| {
                let mut sizes = BTreeMap::new();
                // Every object is seen by at least one camera; extra
                // coverage is added per `overlap_prob`.
                let primary = rng.gen_range(0..num_cameras);
                sizes.insert(CameraId(primary), random_size(rng, config));
                for c in 0..num_cameras {
                    if c != primary && rng.gen_bool(config.overlap_prob) {
                        sizes.insert(CameraId(c), random_size(rng, config));
                    }
                }
                ObjectInfo {
                    id: ObjectId(j),
                    sizes,
                }
            })
            .collect();
        MvsProblem { cameras, objects }
    }
}

/// An MVS instance restricted to a surviving subset of its cameras, plus
/// the bookkeeping to translate the sub-problem's dense ids back to the
/// original instance. Built by [`MvsProblem::restrict_to_cameras`] when the
/// scheduler must re-solve on whatever part of the fleet is still
/// reachable (camera dropouts, lost key-frame uploads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraSubset {
    /// The restricted instance with dense re-indexed camera/object ids.
    pub problem: MvsProblem,
    /// Original id of each surviving camera, indexed by its new id.
    pub cameras: Vec<CameraId>,
    /// Original id of each surviving object, indexed by its new id.
    pub objects: Vec<ObjectId>,
    /// Original ids of objects whose entire coverage set died with the
    /// removed cameras — they cannot be scheduled and are counted as
    /// coverage loss by the caller instead of crashing the solve.
    pub lost_objects: Vec<ObjectId>,
}

impl CameraSubset {
    /// Original id of a camera of the restricted instance.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the sub-problem.
    pub fn original_camera(&self, camera: CameraId) -> CameraId {
        self.cameras[camera.0]
    }

    /// Original id of an object of the restricted instance.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the sub-problem.
    pub fn original_object(&self, object: ObjectId) -> ObjectId {
        self.objects[object.0]
    }

    /// Translates a priority order over sub-problem camera ids (e.g. from
    /// [`BalbSchedule::priority`](crate::BalbSchedule)) back to original
    /// camera ids. Removed cameras simply do not appear — exactly the
    /// degraded-mode order the distributed stage fails over along.
    pub fn lift_priority(&self, priority: &[CameraId]) -> Vec<CameraId> {
        priority.iter().map(|&c| self.original_camera(c)).collect()
    }
}

impl MvsProblem {
    /// Restricts the instance to the given surviving cameras, re-indexing
    /// cameras and objects densely. Objects left with an empty coverage
    /// set are dropped and reported in
    /// [`CameraSubset::lost_objects`]. Duplicate and out-of-range entries
    /// in `alive` are ignored; the surviving cameras keep their relative
    /// id order.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::NoCameras`] when no valid camera survives.
    pub fn restrict_to_cameras(&self, alive: &[CameraId]) -> Result<CameraSubset, ProblemError> {
        let mut keep = vec![false; self.cameras.len()];
        for &c in alive {
            if c.0 < keep.len() {
                keep[c.0] = true;
            }
        }
        let surviving: Vec<CameraId> = (0..self.cameras.len())
            .filter(|&i| keep[i])
            .map(CameraId)
            .collect();
        if surviving.is_empty() {
            return Err(ProblemError::NoCameras);
        }
        // old camera id -> new dense id
        let mut new_id = vec![usize::MAX; self.cameras.len()];
        for (new, old) in surviving.iter().enumerate() {
            new_id[old.0] = new;
        }
        let cameras: Vec<CameraInfo> = surviving
            .iter()
            .enumerate()
            .map(|(new, old)| CameraInfo {
                id: CameraId(new),
                profile: self.cameras[old.0].profile.clone(),
            })
            .collect();
        let mut objects = Vec::new();
        let mut object_map = Vec::new();
        let mut lost_objects = Vec::new();
        for o in &self.objects {
            let sizes: BTreeMap<CameraId, SizeClass> = o
                .sizes
                .iter()
                .filter(|(c, _)| keep[c.0])
                .map(|(c, &s)| (CameraId(new_id[c.0]), s))
                .collect();
            if sizes.is_empty() {
                lost_objects.push(o.id);
            } else {
                objects.push(ObjectInfo {
                    id: ObjectId(object_map.len()),
                    sizes,
                });
                object_map.push(o.id);
            }
        }
        let problem = MvsProblem::new(cameras, objects)?;
        Ok(CameraSubset {
            problem,
            cameras: surviving,
            objects: object_map,
            lost_objects,
        })
    }
}

/// A frame-over-frame edit script between two MVS instances that share the
/// same camera fleet: which objects left the scene, which changed coverage
/// or crop sizes, and which entered. Consumed by
/// [`BalbSolver::apply_delta`](crate::BalbSolver::apply_delta) to repair
/// the stored instance in place instead of rebuilding it.
///
/// Ids in [`ProblemDelta::left`] and [`ProblemDelta::moved`] refer to the
/// *previous* instance's dense object ids. Application order: `moved` size
/// maps are swapped in first, then `left` objects are removed and the
/// survivors re-indexed densely (keeping their relative order), then
/// `entered` objects are appended with fresh ids.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProblemDelta {
    /// Previous-frame ids of objects that left every visibility set.
    pub left: Vec<ObjectId>,
    /// Previous-frame ids of objects whose coverage set or crop sizes
    /// changed, with the replacement size map.
    pub moved: Vec<(ObjectId, BTreeMap<CameraId, SizeClass>)>,
    /// Size maps of objects that entered the scene.
    pub entered: Vec<BTreeMap<CameraId, SizeClass>>,
}

impl ProblemDelta {
    /// True when the delta edits nothing.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.moved.is_empty() && self.entered.is_empty()
    }

    /// Number of edited objects.
    pub fn len(&self) -> usize {
        self.left.len() + self.moved.len() + self.entered.len()
    }

    /// Applies the edit script to `problem` in place.
    ///
    /// # Errors
    ///
    /// Validates the whole delta *before* mutating, so on error the
    /// instance is unchanged: [`ProblemError::UnknownObject`] for
    /// out-of-range `left`/`moved` ids, [`ProblemError::EmptyCoverage`] /
    /// [`ProblemError::UnknownCamera`] for invalid size maps (for `entered`
    /// maps the reported id is the one the object would have received).
    pub fn apply(&self, problem: &mut MvsProblem) -> Result<(), ProblemError> {
        let n = problem.objects.len();
        let m = problem.cameras.len();
        let check_sizes = |id: ObjectId, sizes: &BTreeMap<CameraId, SizeClass>| {
            if sizes.is_empty() {
                return Err(ProblemError::EmptyCoverage(id));
            }
            for &c in sizes.keys() {
                if c.0 >= m {
                    return Err(ProblemError::UnknownCamera(id, c));
                }
            }
            Ok(())
        };
        for &id in &self.left {
            if id.0 >= n {
                return Err(ProblemError::UnknownObject(id));
            }
        }
        for (id, sizes) in &self.moved {
            if id.0 >= n {
                return Err(ProblemError::UnknownObject(*id));
            }
            check_sizes(*id, sizes)?;
        }
        // Ids the entered objects will receive (duplicates in `left`
        // remove only one object, so count distinct ids).
        let distinct_left = self
            .left
            .iter()
            .enumerate()
            .filter(|(i, id)| !self.left[..*i].contains(id))
            .count();
        for (k, sizes) in self.entered.iter().enumerate() {
            check_sizes(ObjectId(n - distinct_left + k), sizes)?;
        }

        for (id, sizes) in &self.moved {
            problem.objects[id.0].sizes = sizes.clone();
        }
        problem.objects.retain(|o| !self.left.contains(&o.id));
        for (j, o) in problem.objects.iter_mut().enumerate() {
            o.id = ObjectId(j);
        }
        for sizes in &self.entered {
            let id = ObjectId(problem.objects.len());
            problem.objects.push(ObjectInfo {
                id,
                sizes: sizes.clone(),
            });
        }
        Ok(())
    }

    /// Positional diff between two instances over the same camera fleet:
    /// objects at the same dense id with different size maps become
    /// [`ProblemDelta::moved`]; a shrinking tail becomes
    /// [`ProblemDelta::left`], a growing one [`ProblemDelta::entered`].
    /// Applying the result to `prev` reproduces `next` exactly.
    ///
    /// # Panics
    ///
    /// Panics if the two instances have different camera fleets.
    pub fn between(prev: &MvsProblem, next: &MvsProblem) -> ProblemDelta {
        assert_eq!(
            prev.cameras, next.cameras,
            "delta requires an unchanged camera fleet"
        );
        let np = prev.objects.len();
        let nn = next.objects.len();
        let mut delta = ProblemDelta::default();
        for j in 0..np.min(nn) {
            if prev.objects[j].sizes != next.objects[j].sizes {
                delta
                    .moved
                    .push((ObjectId(j), next.objects[j].sizes.clone()));
            }
        }
        delta.left.extend((nn..np).map(ObjectId));
        delta
            .entered
            .extend(next.objects[np.min(nn)..].iter().map(|o| o.sizes.clone()));
        delta
    }
}

fn random_size<R: Rng + ?Sized>(rng: &mut R, config: &ProblemConfig) -> SizeClass {
    // Geometric-ish distribution over size classes: small crops dominate,
    // mirroring the long-tail object-size distribution of traffic scenes.
    let mut idx = 0usize;
    while idx + 1 < SizeClass::COUNT && rng.gen_bool(config.size_growth_prob) {
        idx += 1;
    }
    SizeClass::from_index(idx)
}

/// Parameters of the random-instance generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemConfig {
    /// Probability that an additional camera also sees an object.
    pub overlap_prob: f64,
    /// Probability of escalating to the next larger size class when drawing
    /// an object's crop size.
    pub size_growth_prob: f64,
}

impl Default for ProblemConfig {
    fn default() -> Self {
        ProblemConfig {
            overlap_prob: 0.45,
            size_growth_prob: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn camera(i: usize) -> CameraInfo {
        CameraInfo {
            id: CameraId(i),
            profile: LatencyProfile::for_device(DeviceKind::Xavier),
        }
    }

    fn object(j: usize, coverage: &[(usize, SizeClass)]) -> ObjectInfo {
        ObjectInfo {
            id: ObjectId(j),
            sizes: coverage.iter().map(|&(c, s)| (CameraId(c), s)).collect(),
        }
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            MvsProblem::new(vec![], vec![]),
            Err(ProblemError::NoCameras)
        );
        let bad_cam = vec![CameraInfo {
            id: CameraId(1),
            ..camera(0)
        }];
        assert_eq!(
            MvsProblem::new(bad_cam, vec![]),
            Err(ProblemError::NonDenseCameraIds)
        );
        assert_eq!(
            MvsProblem::new(vec![camera(0)], vec![object(1, &[(0, SizeClass::S64)])]),
            Err(ProblemError::NonDenseObjectIds)
        );
        assert_eq!(
            MvsProblem::new(vec![camera(0)], vec![object(0, &[])]),
            Err(ProblemError::EmptyCoverage(ObjectId(0)))
        );
        assert_eq!(
            MvsProblem::new(vec![camera(0)], vec![object(0, &[(3, SizeClass::S64)])]),
            Err(ProblemError::UnknownCamera(ObjectId(0), CameraId(3)))
        );
    }

    #[test]
    fn object_accessors() {
        let o = object(0, &[(0, SizeClass::S64), (2, SizeClass::S256)]);
        assert_eq!(o.coverage_len(), 2);
        assert!(o.covered_by(CameraId(2)));
        assert!(!o.covered_by(CameraId(1)));
        assert_eq!(o.size_on(CameraId(0)), Some(SizeClass::S64));
        assert_eq!(o.max_size(), Some(SizeClass::S256));
        let cov: Vec<CameraId> = o.coverage().collect();
        assert_eq!(cov, vec![CameraId(0), CameraId(2)]);
    }

    #[test]
    fn random_instances_are_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            let p = MvsProblem::random(&mut rng, 4, 25, &ProblemConfig::default());
            assert_eq!(p.num_cameras(), 4);
            assert_eq!(p.num_objects(), 25);
            // Re-validates through the constructor.
            assert!(MvsProblem::new(p.cameras().to_vec(), p.objects().to_vec()).is_ok());
        }
    }

    #[test]
    fn random_generator_is_deterministic() {
        let a = MvsProblem::random(
            &mut ChaCha8Rng::seed_from_u64(9),
            3,
            10,
            &ProblemConfig::default(),
        );
        let b = MvsProblem::random(
            &mut ChaCha8Rng::seed_from_u64(9),
            3,
            10,
            &ProblemConfig::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn restriction_reindexes_and_reports_losses() {
        let cameras = vec![camera(0), camera(1), camera(2)];
        let objects = vec![
            object(0, &[(0, SizeClass::S64)]),
            object(1, &[(1, SizeClass::S128), (2, SizeClass::S64)]),
            object(2, &[(2, SizeClass::S256)]),
        ];
        let p = MvsProblem::new(cameras, objects).unwrap();
        // Camera 2 dies; duplicates and out-of-range survivors are ignored.
        let s = p
            .restrict_to_cameras(&[CameraId(1), CameraId(0), CameraId(0), CameraId(9)])
            .unwrap();
        assert_eq!(s.cameras, vec![CameraId(0), CameraId(1)]);
        assert_eq!(s.problem.num_cameras(), 2);
        // Object 2 was visible only from the dead camera.
        assert_eq!(s.lost_objects, vec![ObjectId(2)]);
        assert_eq!(s.objects, vec![ObjectId(0), ObjectId(1)]);
        // Object 1's coverage shrank to the re-indexed camera 1.
        let o1 = &s.problem.objects()[1];
        assert_eq!(o1.coverage().collect::<Vec<_>>(), vec![CameraId(1)]);
        assert_eq!(o1.size_on(CameraId(1)), Some(SizeClass::S128));
        // Back-translation round-trips.
        assert_eq!(s.original_camera(CameraId(1)), CameraId(1));
        assert_eq!(s.original_object(ObjectId(1)), ObjectId(1));
        assert_eq!(
            s.lift_priority(&[CameraId(1), CameraId(0)]),
            vec![CameraId(1), CameraId(0)]
        );
    }

    #[test]
    fn restriction_to_nothing_is_an_error() {
        let p = MvsProblem::new(vec![camera(0)], vec![object(0, &[(0, SizeClass::S64)])]).unwrap();
        assert_eq!(p.restrict_to_cameras(&[]), Err(ProblemError::NoCameras));
        assert_eq!(
            p.restrict_to_cameras(&[CameraId(5)]),
            Err(ProblemError::NoCameras)
        );
    }

    #[test]
    fn restriction_to_all_cameras_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let p = MvsProblem::random(&mut rng, 4, 30, &ProblemConfig::default());
        let all: Vec<CameraId> = (0..4).map(CameraId).collect();
        let s = p.restrict_to_cameras(&all).unwrap();
        assert_eq!(s.problem, p);
        assert!(s.lost_objects.is_empty());
    }

    #[test]
    fn delta_between_and_apply_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let prev = MvsProblem::random(&mut rng, 4, 25, &ProblemConfig::default());
        // Same fleet, different objects (both sides drawn from the same
        // generator, so entered/left/moved all occur across sizes).
        let mut next = MvsProblem::random(&mut rng, 4, 31, &ProblemConfig::default());
        next = MvsProblem::new(prev.cameras().to_vec(), next.objects().to_vec()).unwrap();
        let delta = ProblemDelta::between(&prev, &next);
        assert!(!delta.is_empty());
        assert_eq!(delta.entered.len(), 6);
        let mut patched = prev.clone();
        delta.apply(&mut patched).unwrap();
        assert_eq!(patched, next);
    }

    #[test]
    fn empty_delta_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let p = MvsProblem::random(&mut rng, 3, 10, &ProblemConfig::default());
        let delta = ProblemDelta::between(&p, &p);
        assert!(delta.is_empty());
        assert_eq!(delta.len(), 0);
        let mut patched = p.clone();
        delta.apply(&mut patched).unwrap();
        assert_eq!(patched, p);
    }

    #[test]
    fn delta_apply_reindexes_survivors_densely() {
        let cameras = vec![camera(0), camera(1)];
        let objects = vec![
            object(0, &[(0, SizeClass::S64)]),
            object(1, &[(1, SizeClass::S128)]),
            object(2, &[(0, SizeClass::S256), (1, SizeClass::S64)]),
        ];
        let mut p = MvsProblem::new(cameras, objects).unwrap();
        let delta = ProblemDelta {
            left: vec![ObjectId(1), ObjectId(1)], // duplicate removes once
            moved: vec![(
                ObjectId(2),
                [(CameraId(0), SizeClass::S512)].into_iter().collect(),
            )],
            entered: vec![[(CameraId(1), SizeClass::S64)].into_iter().collect()],
        };
        delta.apply(&mut p).unwrap();
        assert_eq!(p.num_objects(), 3);
        // Survivors keep relative order with fresh dense ids.
        assert_eq!(
            p.objects()[0].sizes,
            object(0, &[(0, SizeClass::S64)]).sizes
        );
        assert_eq!(p.objects()[1].id, ObjectId(1));
        assert_eq!(p.objects()[1].size_on(CameraId(0)), Some(SizeClass::S512));
        assert_eq!(p.objects()[2].size_on(CameraId(1)), Some(SizeClass::S64));
        // The patched instance still passes full validation.
        assert!(MvsProblem::new(p.cameras().to_vec(), p.objects().to_vec()).is_ok());
    }

    #[test]
    fn delta_apply_validates_before_mutating() {
        let cameras = vec![camera(0)];
        let objects = vec![object(0, &[(0, SizeClass::S64)])];
        let p = MvsProblem::new(cameras, objects).unwrap();
        let cases = [
            (
                ProblemDelta {
                    left: vec![ObjectId(5)],
                    ..Default::default()
                },
                ProblemError::UnknownObject(ObjectId(5)),
            ),
            (
                ProblemDelta {
                    moved: vec![(
                        ObjectId(3),
                        [(CameraId(0), SizeClass::S64)].into_iter().collect(),
                    )],
                    ..Default::default()
                },
                ProblemError::UnknownObject(ObjectId(3)),
            ),
            (
                ProblemDelta {
                    moved: vec![(ObjectId(0), BTreeMap::new())],
                    ..Default::default()
                },
                ProblemError::EmptyCoverage(ObjectId(0)),
            ),
            (
                ProblemDelta {
                    entered: vec![[(CameraId(7), SizeClass::S64)].into_iter().collect()],
                    ..Default::default()
                },
                ProblemError::UnknownCamera(ObjectId(1), CameraId(7)),
            ),
            (
                ProblemDelta {
                    left: vec![ObjectId(0)],
                    entered: vec![BTreeMap::new()],
                    ..Default::default()
                },
                ProblemError::EmptyCoverage(ObjectId(0)),
            ),
        ];
        for (delta, expected) in cases {
            let mut patched = p.clone();
            assert_eq!(delta.apply(&mut patched), Err(expected));
            assert_eq!(patched, p, "failed apply must leave the instance unchanged");
        }
    }

    #[test]
    #[should_panic(expected = "unchanged camera fleet")]
    fn delta_between_rejects_fleet_changes() {
        let a = MvsProblem::new(vec![camera(0)], vec![object(0, &[(0, SizeClass::S64)])]).unwrap();
        let b = MvsProblem::new(
            vec![camera(0), camera(1)],
            vec![object(0, &[(1, SizeClass::S64)])],
        )
        .unwrap();
        let _ = ProblemDelta::between(&a, &b);
    }

    #[test]
    fn overlap_probability_drives_coverage() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let sparse = MvsProblem::random(
            &mut rng,
            5,
            200,
            &ProblemConfig {
                overlap_prob: 0.05,
                ..Default::default()
            },
        );
        let dense = MvsProblem::random(
            &mut rng,
            5,
            200,
            &ProblemConfig {
                overlap_prob: 0.9,
                ..Default::default()
            },
        );
        let avg = |p: &MvsProblem| {
            p.objects().iter().map(|o| o.coverage_len()).sum::<usize>() as f64
                / p.num_objects() as f64
        };
        assert!(avg(&dense) > avg(&sparse) + 1.0);
    }
}
