//! The MVS task model (Sec. III-A) and a random-instance generator.

use crate::{CameraId, ObjectId};
use mvs_geometry::SizeClass;
use mvs_vision::{DeviceKind, LatencyProfile};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One camera of the deployment: its identity and profiled device speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraInfo {
    /// Dense camera index.
    pub id: CameraId,
    /// Offline-profiled latency table of the onboard GPU.
    pub profile: LatencyProfile,
}

/// One physical object: the cameras that can see it and its quantized crop
/// size on each of them (`s_ij` — sizes differ across cameras because of
/// perspective).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectInfo {
    /// Dense object index (global identity after cross-camera association).
    pub id: ObjectId,
    /// Target crop size per covering camera. The key set *is* the coverage
    /// set `C_j`.
    pub sizes: BTreeMap<CameraId, SizeClass>,
}

impl ObjectInfo {
    /// The coverage set `C_j`: cameras that can see this object.
    pub fn coverage(&self) -> impl Iterator<Item = CameraId> + '_ {
        self.sizes.keys().copied()
    }

    /// Number of cameras that can see this object.
    pub fn coverage_len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether `camera` can see this object.
    pub fn covered_by(&self, camera: CameraId) -> bool {
        self.sizes.contains_key(&camera)
    }

    /// Crop size on `camera`, if covered.
    pub fn size_on(&self, camera: CameraId) -> Option<SizeClass> {
        self.sizes.get(&camera).copied()
    }

    /// The largest crop size over the coverage set (used for Algorithm 1's
    /// tie-breaking).
    pub fn max_size(&self) -> Option<SizeClass> {
        self.sizes.values().copied().max()
    }
}

/// Error returned by [`MvsProblem::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// The camera list was empty.
    NoCameras,
    /// Camera ids were not the dense sequence `0..M`.
    NonDenseCameraIds,
    /// Object ids were not the dense sequence `0..N`.
    NonDenseObjectIds,
    /// An object had an empty coverage set (unschedulable).
    EmptyCoverage(ObjectId),
    /// An object referenced a camera outside the camera list.
    UnknownCamera(ObjectId, CameraId),
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::NoCameras => write!(f, "problem has no cameras"),
            ProblemError::NonDenseCameraIds => write!(f, "camera ids must be dense 0..M"),
            ProblemError::NonDenseObjectIds => write!(f, "object ids must be dense 0..N"),
            ProblemError::EmptyCoverage(o) => write!(f, "object {o} has an empty coverage set"),
            ProblemError::UnknownCamera(o, c) => {
                write!(f, "object {o} references unknown camera {c}")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

/// A complete MVS instance: cameras, objects, coverage, and crop sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvsProblem {
    cameras: Vec<CameraInfo>,
    objects: Vec<ObjectInfo>,
}

impl MvsProblem {
    /// Validates and builds an instance.
    ///
    /// # Errors
    ///
    /// See [`ProblemError`]: ids must be dense, every object must be seen
    /// by at least one *known* camera.
    pub fn new(cameras: Vec<CameraInfo>, objects: Vec<ObjectInfo>) -> Result<Self, ProblemError> {
        if cameras.is_empty() {
            return Err(ProblemError::NoCameras);
        }
        for (i, c) in cameras.iter().enumerate() {
            if c.id.0 != i {
                return Err(ProblemError::NonDenseCameraIds);
            }
        }
        for (j, o) in objects.iter().enumerate() {
            if o.id.0 != j {
                return Err(ProblemError::NonDenseObjectIds);
            }
            if o.sizes.is_empty() {
                return Err(ProblemError::EmptyCoverage(o.id));
            }
            for &c in o.sizes.keys() {
                if c.0 >= cameras.len() {
                    return Err(ProblemError::UnknownCamera(o.id, c));
                }
            }
        }
        Ok(MvsProblem { cameras, objects })
    }

    /// The cameras, indexed by [`CameraId`].
    pub fn cameras(&self) -> &[CameraInfo] {
        &self.cameras
    }

    /// The objects, indexed by [`ObjectId`].
    pub fn objects(&self) -> &[ObjectInfo] {
        &self.objects
    }

    /// Number of cameras `M`.
    pub fn num_cameras(&self) -> usize {
        self.cameras.len()
    }

    /// Number of objects `N`.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Latency profile of one camera.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn profile(&self, camera: CameraId) -> &LatencyProfile {
        &self.cameras[camera.0].profile
    }

    /// Generates a random instance for benchmarks and property tests.
    pub fn random<R: Rng + ?Sized>(
        rng: &mut R,
        num_cameras: usize,
        num_objects: usize,
        config: &ProblemConfig,
    ) -> MvsProblem {
        assert!(num_cameras > 0, "need at least one camera");
        let cameras: Vec<CameraInfo> = (0..num_cameras)
            .map(|i| CameraInfo {
                id: CameraId(i),
                profile: LatencyProfile::for_device(match i % 3 {
                    0 => DeviceKind::Xavier,
                    1 => DeviceKind::Tx2,
                    _ => DeviceKind::Nano,
                }),
            })
            .collect();
        let objects: Vec<ObjectInfo> = (0..num_objects)
            .map(|j| {
                let mut sizes = BTreeMap::new();
                // Every object is seen by at least one camera; extra
                // coverage is added per `overlap_prob`.
                let primary = rng.gen_range(0..num_cameras);
                sizes.insert(CameraId(primary), random_size(rng, config));
                for c in 0..num_cameras {
                    if c != primary && rng.gen_bool(config.overlap_prob) {
                        sizes.insert(CameraId(c), random_size(rng, config));
                    }
                }
                ObjectInfo {
                    id: ObjectId(j),
                    sizes,
                }
            })
            .collect();
        MvsProblem { cameras, objects }
    }
}

fn random_size<R: Rng + ?Sized>(rng: &mut R, config: &ProblemConfig) -> SizeClass {
    // Geometric-ish distribution over size classes: small crops dominate,
    // mirroring the long-tail object-size distribution of traffic scenes.
    let mut idx = 0usize;
    while idx + 1 < SizeClass::COUNT && rng.gen_bool(config.size_growth_prob) {
        idx += 1;
    }
    SizeClass::from_index(idx)
}

/// Parameters of the random-instance generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemConfig {
    /// Probability that an additional camera also sees an object.
    pub overlap_prob: f64,
    /// Probability of escalating to the next larger size class when drawing
    /// an object's crop size.
    pub size_growth_prob: f64,
}

impl Default for ProblemConfig {
    fn default() -> Self {
        ProblemConfig {
            overlap_prob: 0.45,
            size_growth_prob: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn camera(i: usize) -> CameraInfo {
        CameraInfo {
            id: CameraId(i),
            profile: LatencyProfile::for_device(DeviceKind::Xavier),
        }
    }

    fn object(j: usize, coverage: &[(usize, SizeClass)]) -> ObjectInfo {
        ObjectInfo {
            id: ObjectId(j),
            sizes: coverage.iter().map(|&(c, s)| (CameraId(c), s)).collect(),
        }
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            MvsProblem::new(vec![], vec![]),
            Err(ProblemError::NoCameras)
        );
        let bad_cam = vec![CameraInfo {
            id: CameraId(1),
            ..camera(0)
        }];
        assert_eq!(
            MvsProblem::new(bad_cam, vec![]),
            Err(ProblemError::NonDenseCameraIds)
        );
        assert_eq!(
            MvsProblem::new(vec![camera(0)], vec![object(1, &[(0, SizeClass::S64)])]),
            Err(ProblemError::NonDenseObjectIds)
        );
        assert_eq!(
            MvsProblem::new(vec![camera(0)], vec![object(0, &[])]),
            Err(ProblemError::EmptyCoverage(ObjectId(0)))
        );
        assert_eq!(
            MvsProblem::new(vec![camera(0)], vec![object(0, &[(3, SizeClass::S64)])]),
            Err(ProblemError::UnknownCamera(ObjectId(0), CameraId(3)))
        );
    }

    #[test]
    fn object_accessors() {
        let o = object(0, &[(0, SizeClass::S64), (2, SizeClass::S256)]);
        assert_eq!(o.coverage_len(), 2);
        assert!(o.covered_by(CameraId(2)));
        assert!(!o.covered_by(CameraId(1)));
        assert_eq!(o.size_on(CameraId(0)), Some(SizeClass::S64));
        assert_eq!(o.max_size(), Some(SizeClass::S256));
        let cov: Vec<CameraId> = o.coverage().collect();
        assert_eq!(cov, vec![CameraId(0), CameraId(2)]);
    }

    #[test]
    fn random_instances_are_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            let p = MvsProblem::random(&mut rng, 4, 25, &ProblemConfig::default());
            assert_eq!(p.num_cameras(), 4);
            assert_eq!(p.num_objects(), 25);
            // Re-validates through the constructor.
            assert!(MvsProblem::new(p.cameras().to_vec(), p.objects().to_vec()).is_ok());
        }
    }

    #[test]
    fn random_generator_is_deterministic() {
        let a = MvsProblem::random(
            &mut ChaCha8Rng::seed_from_u64(9),
            3,
            10,
            &ProblemConfig::default(),
        );
        let b = MvsProblem::random(
            &mut ChaCha8Rng::seed_from_u64(9),
            3,
            10,
            &ProblemConfig::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn overlap_probability_drives_coverage() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let sparse = MvsProblem::random(
            &mut rng,
            5,
            200,
            &ProblemConfig {
                overlap_prob: 0.05,
                ..Default::default()
            },
        );
        let dense = MvsProblem::random(
            &mut rng,
            5,
            200,
            &ProblemConfig {
                overlap_prob: 0.9,
                ..Default::default()
            },
        );
        let avg = |p: &MvsProblem| {
            p.objects().iter().map(|o| o.coverage_len()).sum::<usize>() as f64
                / p.num_objects() as f64
        };
        assert!(avg(&dense) > avg(&sparse) + 1.0);
    }
}
