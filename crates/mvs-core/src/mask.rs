//! Camera masks for the distributed stage (Fig. 8).
//!
//! After the central stage, each camera's frame is divided into a grid of
//! cells; for each cell the *coverage set* (which cameras can observe the
//! world region behind that cell) is computed via the cross-camera models,
//! and the cell is claimed by the highest-priority covering camera. During
//! the horizon each camera tracks new objects only in cells it owns — a
//! consistent, communication-free division of responsibility, because every
//! camera derives the same masks from the same synchronized inputs.

use crate::CameraId;
use mvs_geometry::{BBox, Grid, Point2};
use serde::{Deserialize, Serialize};

/// The per-camera responsibility mask over frame cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraMask {
    camera: CameraId,
    grid: Grid,
    /// Owner camera of each cell, indexed by cell index.
    owners: Vec<CameraId>,
}

impl CameraMask {
    /// Builds the mask for `camera`'s frame.
    ///
    /// `priority` is the central stage's latency-sorted camera order
    /// (highest priority first). `observed_by(other, cell_center)` answers
    /// whether camera `other` can also observe the world region behind this
    /// camera's pixel `cell_center` — in the paper this comes from the
    /// cross-camera KNN classification model. The camera itself always
    /// covers its own cells.
    ///
    /// # Panics
    ///
    /// Panics if `priority` does not contain `camera`.
    pub fn build<F>(camera: CameraId, grid: Grid, priority: &[CameraId], observed_by: F) -> Self
    where
        F: Fn(CameraId, Point2) -> bool,
    {
        let mut mask = CameraMask {
            camera,
            grid,
            owners: Vec::new(),
        };
        mask.rebuild(priority, observed_by);
        mask
    }

    /// Recomputes the per-cell owners in place for a new `priority` order,
    /// reusing the owner buffer (and the grid, which is a per-camera
    /// constant). Key-frame mask refreshes go through this path so the
    /// steady-state loop allocates nothing here.
    ///
    /// # Panics
    ///
    /// Panics if `priority` does not contain the mask's own camera.
    pub fn rebuild<F>(&mut self, priority: &[CameraId], observed_by: F)
    where
        F: Fn(CameraId, Point2) -> bool,
    {
        assert!(
            priority.contains(&self.camera),
            "priority order must contain the mask's own camera"
        );
        let camera = self.camera;
        let grid = &self.grid;
        self.owners.clear();
        self.owners.extend(grid.iter().map(|cell| {
            let center = grid.cell_center(cell);
            *priority
                .iter()
                .find(|&&c| c == camera || observed_by(c, center))
                .expect("own camera always covers its own cells")
        }));
    }

    /// Builds a mask from explicitly computed per-cell owners (used by
    /// allocation policies other than priority order, e.g. the static
    /// partitioning baseline's power-proportional split).
    ///
    /// # Panics
    ///
    /// Panics if the owner count does not match the grid's cell count.
    pub fn from_owners(camera: CameraId, grid: Grid, owners: Vec<CameraId>) -> Self {
        assert_eq!(owners.len(), grid.len(), "one owner per grid cell required");
        CameraMask {
            camera,
            grid,
            owners,
        }
    }

    /// The camera this mask belongs to.
    pub fn camera(&self) -> CameraId {
        self.camera
    }

    /// Owner of the cell containing `p`, or `None` outside the frame.
    pub fn owner_at(&self, p: Point2) -> Option<CameraId> {
        self.grid.cell_at(p).map(|cell| self.owners[cell.0])
    }

    /// Whether this camera is responsible for new objects appearing at `p`
    /// (i.e. it owns the cell — no higher-priority camera covers it).
    pub fn is_responsible_at(&self, p: Point2) -> bool {
        self.owner_at(p) == Some(self.camera)
    }

    /// Whether this camera is responsible for a new object with bounding
    /// box `b` (decided at the box centre).
    pub fn is_responsible_for(&self, b: &BBox) -> bool {
        self.is_responsible_at(b.center())
    }

    /// Fraction of cells owned by this camera (diagnostic).
    pub fn owned_fraction(&self) -> f64 {
        let own = self.owners.iter().filter(|&&c| c == self.camera).count();
        own as f64 / self.owners.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvs_geometry::FrameDims;

    fn grid() -> Grid {
        Grid::new(FrameDims::new(200, 100), 50)
    }

    #[test]
    fn sole_camera_owns_everything() {
        let mask = CameraMask::build(CameraId(0), grid(), &[CameraId(0)], |_, _| false);
        assert_eq!(mask.owned_fraction(), 1.0);
        assert!(mask.is_responsible_at(Point2::new(10.0, 10.0)));
    }

    #[test]
    fn higher_priority_camera_claims_shared_cells() {
        // Camera 1 (this mask) vs camera 0 with higher priority; camera 0
        // observes the left half of camera 1's frame.
        let observed = |c: CameraId, p: Point2| c == CameraId(0) && p.x < 100.0;
        let mask = CameraMask::build(CameraId(1), grid(), &[CameraId(0), CameraId(1)], observed);
        assert_eq!(mask.owner_at(Point2::new(10.0, 10.0)), Some(CameraId(0)));
        assert_eq!(mask.owner_at(Point2::new(150.0, 10.0)), Some(CameraId(1)));
        assert!(!mask.is_responsible_at(Point2::new(10.0, 10.0)));
        assert!(mask.is_responsible_at(Point2::new(150.0, 10.0)));
        assert!((mask.owned_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lower_priority_overlap_does_not_steal_cells() {
        // Camera 2 also sees everything, but has *lower* priority than this
        // camera (1), so this camera keeps its cells.
        let observed = |c: CameraId, _: Point2| c == CameraId(2);
        let mask = CameraMask::build(
            CameraId(1),
            grid(),
            &[CameraId(0), CameraId(1), CameraId(2)],
            observed,
        );
        assert_eq!(mask.owned_fraction(), 1.0);
    }

    #[test]
    fn out_of_frame_queries_return_none() {
        let mask = CameraMask::build(CameraId(0), grid(), &[CameraId(0)], |_, _| false);
        assert_eq!(mask.owner_at(Point2::new(-5.0, 10.0)), None);
        assert!(!mask.is_responsible_at(Point2::new(1000.0, 10.0)));
    }

    #[test]
    fn box_responsibility_uses_center() {
        let observed = |c: CameraId, p: Point2| c == CameraId(0) && p.x < 100.0;
        let mask = CameraMask::build(CameraId(1), grid(), &[CameraId(0), CameraId(1)], observed);
        // Box centred on the right half → responsible even if it pokes left.
        let b = BBox::new(80.0, 10.0, 180.0, 60.0).unwrap();
        assert!(mask.is_responsible_for(&b));
        let b_left = BBox::new(10.0, 10.0, 90.0, 60.0).unwrap();
        assert!(!mask.is_responsible_for(&b_left));
    }

    #[test]
    #[should_panic(expected = "priority order must contain")]
    fn build_requires_own_camera_in_priority() {
        CameraMask::build(CameraId(5), grid(), &[CameraId(0)], |_, _| false);
    }

    #[test]
    fn dropping_a_camera_from_priority_lifts_its_cells_to_survivors() {
        // Degraded re-sync: a dead camera is omitted from the priority
        // order entirely, so the cells it used to claim fall to the next
        // covering camera instead of going unowned.
        let observed = |c: CameraId, p: Point2| c == CameraId(0) && p.x < 100.0;
        let full = CameraMask::build(CameraId(1), grid(), &[CameraId(0), CameraId(1)], observed);
        assert_eq!(full.owner_at(Point2::new(10.0, 10.0)), Some(CameraId(0)));

        let degraded = CameraMask::build(CameraId(1), grid(), &[CameraId(1)], observed);
        // Camera 1 absorbs the dead camera's half …
        assert_eq!(
            degraded.owner_at(Point2::new(10.0, 10.0)),
            Some(CameraId(1))
        );
        assert_eq!(degraded.owned_fraction(), 1.0);
        // … and the right half is unchanged.
        assert_eq!(
            degraded.owner_at(Point2::new(150.0, 10.0)),
            full.owner_at(Point2::new(150.0, 10.0))
        );
    }

    #[test]
    fn reordering_priority_moves_contested_cells_only() {
        // Cameras 0 and 2 both observe the left half of camera 1's frame;
        // flipping their relative priority re-owns exactly the contested
        // cells and nothing else.
        let observed =
            |c: CameraId, p: Point2| (c == CameraId(0) || c == CameraId(2)) && p.x < 100.0;
        let zero_first = CameraMask::build(
            CameraId(1),
            grid(),
            &[CameraId(0), CameraId(2), CameraId(1)],
            observed,
        );
        let two_first = CameraMask::build(
            CameraId(1),
            grid(),
            &[CameraId(2), CameraId(0), CameraId(1)],
            observed,
        );
        let left = Point2::new(10.0, 10.0);
        let right = Point2::new(150.0, 10.0);
        assert_eq!(zero_first.owner_at(left), Some(CameraId(0)));
        assert_eq!(two_first.owner_at(left), Some(CameraId(2)));
        assert_eq!(zero_first.owner_at(right), Some(CameraId(1)));
        assert_eq!(two_first.owner_at(right), Some(CameraId(1)));
        assert_eq!(zero_first.owned_fraction(), two_first.owned_fraction());
    }

    #[test]
    fn promoting_own_camera_to_top_priority_claims_every_covered_cell() {
        // When this camera leads the priority order its cells cannot be
        // claimed by anyone, whatever the overlap models say.
        let observed = |_: CameraId, _: Point2| true;
        let mask = CameraMask::build(
            CameraId(1),
            grid(),
            &[CameraId(1), CameraId(0), CameraId(2)],
            observed,
        );
        assert_eq!(mask.owned_fraction(), 1.0);
    }
}
