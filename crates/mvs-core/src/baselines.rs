//! Comparison baselines from the paper's evaluation (Sec. IV-C/D).
//!
//! * **Full** — full-frame detection on every frame of every camera; its
//!   per-frame latency is simply the slowest camera's `t^full`.
//! * **BALB-Ind** — each camera independently tracks everything it sees
//!   (slicing and batching still apply, but no cross-camera workload
//!   sharing).
//! * **Static partitioning (SP)** — overlap regions are divided offline in
//!   proportion to processing power; each camera tracks only objects in its
//!   allocated region, regardless of the current load. At the abstract
//!   problem level this is realized with weighted rendezvous hashing over
//!   stable spatial keys: the same key always maps to the same camera
//!   (static), faster cameras win proportionally more keys
//!   (power-proportional), and the current load is ignored (the weakness
//!   BALB exploits).
//! * **BALB-Cen** is [`balb_central`](crate::balb_central) itself — the
//!   difference from full BALB (no distributed stage) only materializes in
//!   the frame-by-frame pipeline of `mvs-sim`.

use crate::{Assignment, CameraId, MvsProblem};

/// Per-frame system latency of the Full baseline: every camera runs a
/// full-frame inspection, so the slowest camera dominates.
pub fn full_frame_latency_ms(problem: &MvsProblem) -> f64 {
    (0..problem.num_cameras())
        .map(|i| problem.profile(CameraId(i)).full_frame_ms())
        .fold(0.0, f64::max)
}

/// BALB-Ind assignment: every camera tracks every object it can see.
pub fn balb_ind(problem: &MvsProblem) -> Assignment {
    let mut a = Assignment::empty(problem.num_objects());
    for o in problem.objects() {
        for c in o.coverage() {
            a.assign(o.id, c);
        }
    }
    a
}

/// Static-partitioning assignment over stable spatial keys.
///
/// `region_keys[j]` is a stable identifier of the spatial region where
/// object `j` currently is (e.g. a hash of its world-grid cell); the same
/// key always resolves to the same camera. Each object goes to the
/// rendezvous-winning camera among its coverage set, weighted by the
/// cameras' speed scores.
///
/// # Panics
///
/// Panics if `region_keys.len() != problem.num_objects()`.
pub fn static_partition(problem: &MvsProblem, region_keys: &[u64]) -> Assignment {
    assert_eq!(
        region_keys.len(),
        problem.num_objects(),
        "one region key per object required"
    );
    let mut a = Assignment::empty(problem.num_objects());
    for (o, &key) in problem.objects().iter().zip(region_keys) {
        let winner = o
            .coverage()
            .map(|c| {
                (
                    c,
                    rendezvous_score(key, c, problem.profile(c).speed_score()),
                )
            })
            .max_by(|x, y| {
                x.1.partial_cmp(&y.1)
                    .expect("rendezvous scores are finite")
                    .then(y.0.cmp(&x.0))
            })
            .expect("coverage sets are non-empty by problem validation")
            .0;
        a.assign(o.id, winner);
    }
    a
}

/// Static partitioning with the object's id as its region key — a
/// convenience for abstract instances without geometry.
pub fn static_partition_by_id(problem: &MvsProblem) -> Assignment {
    let keys: Vec<u64> = (0..problem.num_objects() as u64).collect();
    static_partition(problem, &keys)
}

/// Weighted rendezvous (highest-random-weight) score: camera `c` with
/// weight `w` scores `-w / ln(h)` where `h ∈ (0,1)` is a uniform hash of
/// `(key, c)`. The camera with the maximum score wins; the probability of
/// winning is proportional to `w`.
fn rendezvous_score(key: u64, camera: CameraId, weight: f64) -> f64 {
    let h = splitmix64(key ^ (camera.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Map to (0, 1); never exactly 0 or 1.
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    let u = u.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
    -weight / u.ln()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{balb_central, ObjectId, ProblemConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_problem(seed: u64, m: usize, n: usize) -> MvsProblem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        MvsProblem::random(&mut rng, m, n, &ProblemConfig::default())
    }

    #[test]
    fn full_frame_latency_is_slowest_camera() {
        let p = random_problem(1, 3, 5);
        // The generator cycles Xavier/TX2/Nano, so the Nano (650 ms) rules.
        assert_eq!(full_frame_latency_ms(&p), 650.0);
    }

    #[test]
    fn balb_ind_tracks_everything_it_sees() {
        let p = random_problem(2, 3, 20);
        let a = balb_ind(&p);
        assert!(a.is_feasible(&p));
        for o in p.objects() {
            assert_eq!(a.owners_of(o.id).len(), o.coverage_len());
        }
    }

    #[test]
    fn static_partition_is_feasible_and_deterministic() {
        let p = random_problem(3, 4, 30);
        let a = static_partition_by_id(&p);
        let b = static_partition_by_id(&p);
        assert!(a.is_feasible(&p));
        assert_eq!(a, b);
        for o in p.objects() {
            assert_eq!(a.owners_of(o.id).len(), 1);
        }
    }

    #[test]
    fn same_key_same_camera() {
        let p = random_problem(4, 4, 10);
        // Give two objects the same key; if their coverage sets agree they
        // must land on the same camera (that is what "static spatial
        // partition" means).
        let keys = vec![42u64; p.num_objects()];
        let a = static_partition(&p, &keys);
        for (i, oi) in p.objects().iter().enumerate() {
            for oj in &p.objects()[i + 1..] {
                let same_cov: Vec<_> = oi.coverage().collect();
                let other_cov: Vec<_> = oj.coverage().collect();
                if same_cov == other_cov {
                    assert_eq!(a.owners_of(oi.id), a.owners_of(oj.id));
                }
            }
        }
    }

    #[test]
    fn rendezvous_prefers_faster_cameras_in_aggregate() {
        // All objects seen by every camera: the Xavier (weight ≈ 1/110)
        // should win notably more keys than the Nano (weight ≈ 1/650).
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let p = MvsProblem::random(
            &mut rng,
            3,
            400,
            &ProblemConfig {
                overlap_prob: 1.0,
                ..Default::default()
            },
        );
        let a = static_partition_by_id(&p);
        let mut counts = [0usize; 3];
        for o in p.objects() {
            counts[a.owners_of(o.id)[0].0] += 1;
        }
        // Camera 0 = Xavier, camera 2 = Nano in the generator's cycle.
        assert!(
            counts[0] > counts[2] * 2,
            "xavier {} vs nano {}",
            counts[0],
            counts[2]
        );
    }

    #[test]
    fn balb_beats_static_partition_on_average() {
        // The headline comparison (Fig. 13's SP-vs-BALB gap) at the
        // abstract problem level: BALB's load-awareness must win in
        // aggregate.
        let (mut balb_total, mut sp_total) = (0.0, 0.0);
        for seed in 0..25 {
            let p = random_problem(seed, 5, 40);
            balb_total += balb_central(&p).system_latency_ms();
            sp_total += static_partition_by_id(&p).system_latency_ms(&p, true);
        }
        assert!(balb_total < sp_total, "BALB {balb_total} vs SP {sp_total}");
    }

    #[test]
    #[should_panic(expected = "one region key per object")]
    fn static_partition_validates_key_count() {
        let p = random_problem(6, 2, 5);
        static_partition(&p, &[1, 2]);
    }

    #[test]
    fn balb_ind_latency_is_never_below_balb() {
        for seed in 10..20 {
            let p = random_problem(seed, 4, 30);
            let ind = balb_ind(&p).system_latency_ms(&p, true);
            let balb = balb_central(&p).system_latency_ms();
            assert!(ind + 1e-9 >= balb, "seed {seed}: ind {ind} < balb {balb}");
        }
        let _ = ObjectId(0); // keep import used in all cfg combinations
    }
}
