//! The distributed stage of BALB.
//!
//! Between key frames, cameras cannot afford per-frame communication with
//! the central scheduler, so assignment updates for *new* objects and
//! *departed* objects follow fixed, self-organizing policies derived from
//! the central stage's latency order (Sec. III-C2):
//!
//! * A new object is tracked by the highest-priority camera whose mask owns
//!   the cell where it appeared.
//! * When an object leaves its assigned camera's view, the highest-priority
//!   camera that still sees it takes over.
//!
//! All cameras reach the same decisions without talking to each other
//! because they share the priority order and the (synchronized) masks.

use crate::{BalbSchedule, CameraId};
use mvs_geometry::BBox;
use mvs_trace::{span_into, Stage, TraceBuf};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The fixed per-horizon policy each camera runs locally at regular frames.
///
/// # Examples
///
/// ```
/// use mvs_core::{CameraId, DistributedPolicy};
///
/// let policy = DistributedPolicy::new(vec![CameraId(2), CameraId(0), CameraId(1)]);
/// // Camera 2 has the highest priority (lowest central-stage latency).
/// assert_eq!(policy.rank(CameraId(2)), Some(0));
/// // A camera missing from the order (e.g. one that dropped out before
/// // the central stage ran) has no rank.
/// assert_eq!(policy.rank(CameraId(7)), None);
/// // Takeover: the highest-priority camera among those still seeing the
/// // object wins.
/// assert_eq!(
///     policy.select_owner([CameraId(0), CameraId(1)]),
///     Some(CameraId(0))
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedPolicy {
    /// Cameras in decreasing priority (increasing central-stage latency).
    priority: Vec<CameraId>,
}

impl DistributedPolicy {
    /// Builds a policy from an explicit priority order (highest first).
    ///
    /// # Panics
    ///
    /// Panics if the order is empty or contains duplicates.
    pub fn new(priority: Vec<CameraId>) -> Self {
        assert!(!priority.is_empty(), "priority order must be non-empty");
        // Priority orders are fleet-sized (a handful of cameras), so a
        // quadratic scan beats cloning and sorting a scratch copy.
        for (i, c) in priority.iter().enumerate() {
            assert!(
                !priority[..i].contains(c),
                "priority order must not contain duplicates"
            );
        }
        DistributedPolicy { priority }
    }

    /// Extracts the policy from a central-stage schedule.
    pub fn from_schedule(schedule: &BalbSchedule) -> Self {
        DistributedPolicy::new(schedule.priority.clone())
    }

    /// The priority order, highest first.
    pub fn priority(&self) -> &[CameraId] {
        &self.priority
    }

    /// Rank of a camera (0 = highest priority), or `None` when the camera
    /// is not part of the order — e.g. it was dead or desynchronized when
    /// the central stage produced this horizon's priority.
    pub fn rank(&self, camera: CameraId) -> Option<usize> {
        self.priority.iter().position(|&c| c == camera)
    }

    /// Whether the camera participates in this horizon's order.
    pub fn contains(&self, camera: CameraId) -> bool {
        self.priority.contains(&camera)
    }

    /// Selects the owner for an object given the cameras currently able to
    /// see it: the highest-priority member of the coverage set. Cameras
    /// absent from the priority order (dead or desynchronized) are skipped;
    /// ownership fails over along the order. Returns `None` when no ranked
    /// camera sees the object (it is lost to every surviving view).
    pub fn select_owner<I: IntoIterator<Item = CameraId>>(&self, coverage: I) -> Option<CameraId> {
        coverage
            .into_iter()
            .filter_map(|c| self.rank(c).map(|r| (r, c)))
            .min()
            .map(|(_, c)| c)
    }

    /// Convenience for the per-camera decision: should `myself` start
    /// tracking an object with this coverage set? True iff `myself` is the
    /// selected owner. Every camera evaluating this on the same coverage
    /// set reaches a consistent answer; a camera outside the priority order
    /// never elects itself.
    pub fn should_track<I: IntoIterator<Item = CameraId>>(
        &self,
        myself: CameraId,
        coverage: I,
    ) -> bool {
        self.select_owner(coverage) == Some(myself)
    }
}

/// A camera's local estimate of an object assigned to *another* camera:
/// the flow-updated bounding box plus how many consecutive frames the
/// cross-camera models have said the object is gone from every owner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowTrack {
    /// This camera's flow-updated estimate of the object's box.
    pub bbox: BBox,
    /// Consecutive frames the owners have reported the object gone.
    pub gone_frames: u32,
}

impl ShadowTrack {
    /// A fresh shadow seeded from a key-frame detection.
    pub fn new(bbox: BBox) -> Self {
        ShadowTrack {
            bbox,
            gone_frames: 0,
        }
    }
}

/// Per-shadow answer to "should this camera consider taking the object
/// over?", produced by the caller's cross-camera models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowVerdict {
    /// This camera is itself an owner — nothing to take over.
    OwnedHere,
    /// The object has left every owner's view (per the synchronized pair
    /// models); one step toward the hysteresis threshold.
    Gone,
    /// At least one owner still sees the object; the gone-streak resets.
    Visible,
}

/// One regular-frame takeover scan: the core of the distributed stage.
///
/// Walks the shadows in ascending global-object order (the `BTreeMap`
/// order, which is what makes the scan deterministic), updates each
/// shadow's gone-streak from `verdict`, and collects the shadows whose
/// streak reached `hysteresis` *and* whose box falls in a cell this camera
/// owns (`responsible`). Collected shadows are removed from the map and
/// returned as `(global index, box)` seeds for the caller's tracker.
///
/// The hysteresis exists so one noisy classifier answer cannot steal a
/// still-tracked object (Sec. III-C2).
///
/// Records a [`Stage::Distributed`] span (items = takeovers; duration zero,
/// since the scan's wall-clock cost is accounted by the caller).
pub fn scan_takeovers<V, R>(
    shadows: &mut BTreeMap<usize, ShadowTrack>,
    hysteresis: u32,
    verdict: V,
    responsible: R,
    trace: Option<&mut TraceBuf>,
) -> Vec<(usize, BBox)>
where
    V: FnMut(usize, &BBox) -> ShadowVerdict,
    R: FnMut(&BBox) -> bool,
{
    let mut seeds: Vec<(usize, BBox)> = Vec::new();
    scan_takeovers_into(shadows, hysteresis, verdict, responsible, trace, &mut seeds);
    seeds
}

/// Buffer-reusing variant of [`scan_takeovers`]: clears `seeds` and fills
/// it with this frame's takeovers, so a caller that keeps the buffer
/// across frames allocates nothing here in steady state.
pub fn scan_takeovers_into<V, R>(
    shadows: &mut BTreeMap<usize, ShadowTrack>,
    hysteresis: u32,
    mut verdict: V,
    mut responsible: R,
    trace: Option<&mut TraceBuf>,
    seeds: &mut Vec<(usize, BBox)>,
) where
    V: FnMut(usize, &BBox) -> ShadowVerdict,
    R: FnMut(&BBox) -> bool,
{
    seeds.clear();
    for (&g, shadow) in shadows.iter_mut() {
        match verdict(g, &shadow.bbox) {
            ShadowVerdict::OwnedHere => continue,
            ShadowVerdict::Gone => shadow.gone_frames += 1,
            ShadowVerdict::Visible => shadow.gone_frames = 0,
        }
        if shadow.gone_frames >= hysteresis && responsible(&shadow.bbox) {
            seeds.push((g, shadow.bbox));
        }
    }
    for (g, _) in seeds.iter() {
        shadows.remove(g);
    }
    span_into(trace, Stage::Distributed, 0.0, seeds.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> DistributedPolicy {
        DistributedPolicy::new(vec![CameraId(1), CameraId(2), CameraId(0)])
    }

    #[test]
    fn ranks_follow_order() {
        let p = policy();
        assert_eq!(p.rank(CameraId(1)), Some(0));
        assert_eq!(p.rank(CameraId(2)), Some(1));
        assert_eq!(p.rank(CameraId(0)), Some(2));
    }

    #[test]
    fn unknown_camera_has_no_rank() {
        let p = policy();
        assert_eq!(p.rank(CameraId(3)), None);
        assert!(!p.contains(CameraId(3)));
        assert!(p.contains(CameraId(0)));
    }

    #[test]
    fn select_owner_skips_unknown_cameras() {
        // Camera 5 is not in the order (it dropped before the central
        // stage); ownership fails over to the best ranked survivor.
        let p = policy();
        assert_eq!(
            p.select_owner([CameraId(5), CameraId(0), CameraId(2)]),
            Some(CameraId(2))
        );
        // Coverage made up entirely of unknown cameras selects nobody.
        assert_eq!(p.select_owner([CameraId(5), CameraId(9)]), None);
    }

    #[test]
    fn unknown_camera_never_tracks() {
        let p = policy();
        let coverage = [CameraId(5), CameraId(0)];
        assert!(!p.should_track(CameraId(5), coverage));
        assert!(p.should_track(CameraId(0), coverage));
    }

    #[test]
    fn owner_is_highest_priority_in_coverage() {
        let p = policy();
        assert_eq!(
            p.select_owner([CameraId(0), CameraId(2)]),
            Some(CameraId(2))
        );
        assert_eq!(p.select_owner([CameraId(0)]), Some(CameraId(0)));
        assert_eq!(p.select_owner([]), None);
    }

    #[test]
    fn should_track_is_consistent_across_cameras() {
        let p = policy();
        let coverage = [CameraId(0), CameraId(1), CameraId(2)];
        let trackers: Vec<CameraId> = coverage
            .iter()
            .copied()
            .filter(|&c| p.should_track(c, coverage))
            .collect();
        // Exactly one camera decides to track, and it is the top-priority
        // one — the self-organized consistency property.
        assert_eq!(trackers, vec![CameraId(1)]);
    }

    #[test]
    #[should_panic(expected = "must not contain duplicates")]
    fn rejects_duplicate_cameras() {
        DistributedPolicy::new(vec![CameraId(0), CameraId(0)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_order() {
        DistributedPolicy::new(vec![]);
    }

    fn shadow_at(x: f64) -> ShadowTrack {
        ShadowTrack::new(BBox::new(x, 0.0, x + 10.0, 10.0).unwrap())
    }

    #[test]
    fn takeover_requires_consecutive_gone_frames() {
        let mut shadows = BTreeMap::from([(4usize, shadow_at(0.0))]);
        // Two gone frames, then a visible one, then two more: the streak
        // resets, so hysteresis 3 is never reached.
        for v in [
            ShadowVerdict::Gone,
            ShadowVerdict::Gone,
            ShadowVerdict::Visible,
            ShadowVerdict::Gone,
            ShadowVerdict::Gone,
        ] {
            let seeds = scan_takeovers(&mut shadows, 3, |_, _| v, |_| true, None);
            assert!(seeds.is_empty());
        }
        assert_eq!(shadows[&4].gone_frames, 2);
        // A third consecutive gone frame finally triggers the takeover and
        // removes the shadow.
        let seeds = scan_takeovers(&mut shadows, 3, |_, _| ShadowVerdict::Gone, |_| true, None);
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].0, 4);
        assert!(shadows.is_empty());
    }

    #[test]
    fn owned_shadows_are_skipped_entirely() {
        let mut shadows = BTreeMap::from([(0usize, shadow_at(0.0))]);
        for _ in 0..5 {
            let seeds = scan_takeovers(
                &mut shadows,
                1,
                |_, _| ShadowVerdict::OwnedHere,
                |_| true,
                None,
            );
            assert!(seeds.is_empty());
        }
        // OwnedHere neither increments nor resets the streak.
        assert_eq!(shadows[&0].gone_frames, 0);
    }

    #[test]
    fn irresponsible_camera_keeps_counting_but_never_takes() {
        let mut shadows = BTreeMap::from([(1usize, shadow_at(0.0))]);
        for _ in 0..4 {
            let seeds =
                scan_takeovers(&mut shadows, 3, |_, _| ShadowVerdict::Gone, |_| false, None);
            assert!(seeds.is_empty());
        }
        assert_eq!(shadows[&1].gone_frames, 4);
    }

    #[test]
    fn scan_visits_shadows_in_global_index_order() {
        let mut shadows = BTreeMap::from([
            (9usize, shadow_at(0.0)),
            (2usize, shadow_at(20.0)),
            (5usize, shadow_at(40.0)),
        ]);
        let mut visited = Vec::new();
        scan_takeovers(
            &mut shadows,
            1,
            |g, _| {
                visited.push(g);
                ShadowVerdict::Gone
            },
            |_| true,
            None,
        );
        assert_eq!(visited, vec![2, 5, 9]);
        assert!(shadows.is_empty());
    }
}
