//! Camera↔scheduler wire messages.
//!
//! The paper's testbed exchanges object lists and assignments over TCP;
//! these are the typed equivalents. The byte-size accounting used by
//! [`NetworkModel`](crate::NetworkModel) is grounded in each message's
//! compact fixed-width encoding (`encoded_len`), not in the JSON debug
//! form.

use mvs_geometry::{BBox, SizeClass};
use serde::{Deserialize, Serialize};

/// One detected object as a camera reports it at a key frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectRecord {
    /// Camera-local detection index.
    pub detection: u32,
    /// Detected bounding box.
    pub bbox: BBox,
    /// Detector confidence.
    pub confidence: f32,
    /// Quantized crop size the camera would use for this object.
    pub size: SizeClass,
}

impl ObjectRecord {
    /// Bytes of the compact encoding: u32 id + 4×f64 box + f32 confidence
    /// + u8 size class, padded to a word boundary.
    pub const ENCODED_LEN: usize = 4 + 32 + 4 + 1 + 3;
}

/// Key-frame upload: one camera's detected-object list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UploadMessage {
    /// Reporting camera.
    pub camera: u32,
    /// Frame index the detections belong to.
    pub frame: u64,
    /// The detections.
    pub objects: Vec<ObjectRecord>,
}

impl UploadMessage {
    /// Fixed header: camera id, frame index, object count, checksum.
    pub const HEADER_LEN: usize = 4 + 8 + 4 + 8;

    /// Bytes of the compact encoding.
    pub fn encoded_len(&self) -> usize {
        Self::HEADER_LEN + self.objects.len() * ObjectRecord::ENCODED_LEN
    }
}

/// Central-scheduler reply: the object→camera assignment for one horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentMessage {
    /// Horizon sequence number.
    pub horizon: u64,
    /// `(global object index, owner cameras)` pairs.
    pub assignments: Vec<(u32, Vec<u32>)>,
    /// Latency-sorted camera priority for the distributed stage.
    pub priority: Vec<u32>,
}

impl AssignmentMessage {
    /// Fixed header: horizon, entry count, priority count, checksum.
    pub const HEADER_LEN: usize = 8 + 4 + 4 + 8;

    /// Bytes of the compact encoding: each entry is a u32 global id, a u8
    /// owner count, and u32 per owner; priority is u32 per camera.
    pub fn encoded_len(&self) -> usize {
        let entries: usize = self
            .assignments
            .iter()
            .map(|(_, owners)| 4 + 1 + 4 * owners.len())
            .sum();
        Self::HEADER_LEN + entries + 4 * self.priority.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NetworkModel, BYTES_PER_OBJECT, MESSAGE_HEADER_BYTES};

    fn record(i: u32) -> ObjectRecord {
        ObjectRecord {
            detection: i,
            bbox: BBox::new(10.0, 10.0, 70.0, 60.0).unwrap(),
            confidence: 0.9,
            size: SizeClass::S128,
        }
    }

    #[test]
    fn upload_length_scales_with_objects() {
        let empty = UploadMessage {
            camera: 0,
            frame: 1,
            objects: vec![],
        };
        let five = UploadMessage {
            camera: 0,
            frame: 1,
            objects: (0..5).map(record).collect(),
        };
        assert_eq!(empty.encoded_len(), UploadMessage::HEADER_LEN);
        assert_eq!(
            five.encoded_len() - empty.encoded_len(),
            5 * ObjectRecord::ENCODED_LEN
        );
    }

    #[test]
    fn network_model_constants_match_the_wire_format() {
        // The analytic byte model used for Table II's network accounting
        // must agree with the typed messages within a few percent.
        const _: () = assert!(ObjectRecord::ENCODED_LEN == BYTES_PER_OBJECT + 4);
        const _: () = assert!(UploadMessage::HEADER_LEN <= MESSAGE_HEADER_BYTES);
        let msg = UploadMessage {
            camera: 1,
            frame: 100,
            objects: (0..20).map(record).collect(),
        };
        let analytic = NetworkModel::object_list_bytes(20);
        let actual = msg.encoded_len();
        let ratio = actual as f64 / analytic as f64;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "wire format {actual} vs analytic {analytic}"
        );
    }

    #[test]
    fn assignment_length_counts_redundant_owners() {
        let single = AssignmentMessage {
            horizon: 4,
            assignments: vec![(0, vec![1]), (1, vec![0])],
            priority: vec![0, 1],
        };
        let redundant = AssignmentMessage {
            horizon: 4,
            assignments: vec![(0, vec![1, 0]), (1, vec![0, 1])],
            priority: vec![0, 1],
        };
        assert_eq!(redundant.encoded_len() - single.encoded_len(), 8);
    }

    #[test]
    fn messages_round_trip_through_serde() {
        let msg = UploadMessage {
            camera: 2,
            frame: 77,
            objects: (0..3).map(record).collect(),
        };
        let json = serde_json::to_string(&msg).unwrap();
        let back: UploadMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(msg, back);
        let reply = AssignmentMessage {
            horizon: 7,
            assignments: vec![(0, vec![2])],
            priority: vec![2, 0, 1],
        };
        let json = serde_json::to_string(&reply).unwrap();
        let back: AssignmentMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(reply, back);
    }

    #[test]
    fn upload_time_for_a_busy_frame_is_sub_frame_period() {
        // Even a 50-object scene uploads in well under the 100 ms frame
        // period on the paper's 20 Mbps uplink — communication is not the
        // bottleneck, which is why only DNN time is scheduled.
        let msg = UploadMessage {
            camera: 0,
            frame: 0,
            objects: (0..50).map(record).collect(),
        };
        let net = NetworkModel::default();
        assert!(net.uplink_ms(msg.encoded_len()) < 5.0);
    }
}
