//! ASCII rendering of camera frames — a terminal visualization aid for
//! examples and debugging (no counterpart in the paper).

use mvs_geometry::{BBox, FrameDims};

/// Renders a camera frame as ASCII art.
///
/// Ground-truth boxes are drawn with `#`, tracked boxes with `*`; where a
/// track overlaps ground truth the cell shows `@` (a well-localized
/// track). Output is `rows` lines of `cols` characters plus a border.
///
/// # Panics
///
/// Panics if `cols` or `rows` is zero.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{BBox, FrameDims};
/// use mvs_sim::render_ascii;
///
/// let gt = [BBox::new(100.0, 100.0, 300.0, 300.0)?];
/// let art = render_ascii(FrameDims::REGULAR, &gt, &[], 64, 18);
/// assert!(art.contains('#'));
/// # Ok::<(), mvs_geometry::BBoxError>(())
/// ```
pub fn render_ascii(
    frame: FrameDims,
    ground_truth: &[BBox],
    tracks: &[BBox],
    cols: usize,
    rows: usize,
) -> String {
    assert!(cols > 0 && rows > 0, "render size must be positive");
    let mut cells = vec![vec![' '; cols]; rows];
    let sx = frame.width as f64 / cols as f64;
    let sy = frame.height as f64 / rows as f64;
    let mut paint = |b: &BBox, mark: char| {
        let c1 = (b.x1() / sx).floor().max(0.0) as usize;
        let r1 = (b.y1() / sy).floor().max(0.0) as usize;
        let c2 = ((b.x2() / sx).ceil() as usize).min(cols).max(c1 + 1);
        let r2 = ((b.y2() / sy).ceil() as usize).min(rows).max(r1 + 1);
        for row in cells.iter_mut().take(r2.min(rows)).skip(r1.min(rows - 1)) {
            for cell in row.iter_mut().take(c2).skip(c1.min(cols - 1)) {
                *cell = match (*cell, mark) {
                    ('#', '*') | ('*', '#') | ('@', _) => '@',
                    (_, m) => m,
                };
            }
        }
    };
    for b in ground_truth {
        paint(b, '#');
    }
    for b in tracks {
        paint(b, '*');
    }
    let mut out = String::with_capacity((cols + 3) * (rows + 2));
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    for row in &cells {
        out.push('|');
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push('+');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x1: f64, y1: f64, x2: f64, y2: f64) -> BBox {
        BBox::new(x1, y1, x2, y2).unwrap()
    }

    #[test]
    fn empty_frame_is_blank_with_border() {
        let art = render_ascii(FrameDims::REGULAR, &[], &[], 10, 4);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 6); // 4 rows + 2 border lines
        assert_eq!(lines[0], "+----------+");
        assert!(lines[1].starts_with('|') && lines[1].ends_with('|'));
        assert!(!art.contains('#'));
    }

    #[test]
    fn ground_truth_and_tracks_use_distinct_marks() {
        let gt = [bb(0.0, 0.0, 320.0, 176.0)]; // top-left quadrant-ish
        let tracks = [bb(960.0, 528.0, 1280.0, 704.0)]; // bottom-right
        let art = render_ascii(FrameDims::REGULAR, &gt, &tracks, 40, 12);
        assert!(art.contains('#'));
        assert!(art.contains('*'));
        assert!(!art.contains('@'), "disjoint boxes must not blend");
    }

    #[test]
    fn overlap_renders_as_at_sign() {
        let gt = [bb(100.0, 100.0, 400.0, 400.0)];
        let tracks = [bb(120.0, 110.0, 410.0, 390.0)];
        let art = render_ascii(FrameDims::REGULAR, &gt, &tracks, 40, 12);
        assert!(art.contains('@'));
    }

    #[test]
    fn boxes_partially_out_of_frame_are_clipped() {
        let gt = [bb(-100.0, -100.0, 64.0, 64.0)];
        let art = render_ascii(FrameDims::REGULAR, &gt, &[], 20, 8);
        assert!(art.contains('#'));
        // Every line stays within the border width.
        for line in art.lines() {
            assert!(line.chars().count() <= 22);
        }
    }

    #[test]
    #[should_panic(expected = "render size must be positive")]
    fn zero_size_panics() {
        render_ascii(FrameDims::REGULAR, &[], &[], 0, 5);
    }
}
