//! Correspondence-label generation and association-model training.
//!
//! The paper trains its cross-camera classification/regression models on
//! the first half of each scenario's videos using human-provided labels; in
//! this workspace the simulator plays annotator: it runs the scenario,
//! projects every object into every camera, and records, for each ordered
//! camera pair, where each source-camera box lands in the target camera
//! (or that it is invisible there).

use crate::scenario::Scenario;
use mvs_assoc::{train_pair_model, AssociationEngine, CameraPairModel, CorrespondenceSample};
use mvs_ml::MlError;
use rand::Rng;
use std::collections::BTreeMap;

/// Labeled correspondences for every ordered camera pair `(src, dst)`,
/// `src != dst`.
#[derive(Debug, Clone, Default)]
pub struct CorrespondenceData {
    /// Samples per ordered pair.
    pub pairs: BTreeMap<(usize, usize), Vec<CorrespondenceSample>>,
}

impl CorrespondenceData {
    /// Collects correspondence labels by simulating the scenario for
    /// `duration_s` seconds (after a warmup), sampling every
    /// `sample_every` frames.
    pub fn collect<R: Rng + ?Sized>(
        scenario: &Scenario,
        duration_s: f64,
        sample_every: usize,
        rng: &mut R,
    ) -> CorrespondenceData {
        assert!(sample_every > 0, "sample_every must be positive");
        let mut world = scenario.warmed_world(30.0, rng);
        let dt = scenario.frame_dt_s();
        let steps = (duration_s / dt).round() as usize;
        let m = scenario.num_cameras();
        // City-scale fleets make the all-pairs sweep quadratic in hundreds
        // of cameras, while almost every pair is geometrically disjoint:
        // prune to view-polygon-intersecting pairs there. The paper presets
        // keep the historical all-pairs behaviour.
        let related = if scenario.kind == crate::scenario::ScenarioKind::City {
            let polygons: Vec<_> = scenario.cameras.iter().map(|c| c.view_polygon()).collect();
            Some(mvs_core::OverlapGraph::from_polygons(&polygons))
        } else {
            None
        };
        let keep = |src: usize, dst: usize| match &related {
            Some(graph) => graph.are_overlapping(mvs_core::CameraId(src), mvs_core::CameraId(dst)),
            None => true,
        };
        let mut pairs: BTreeMap<(usize, usize), Vec<CorrespondenceSample>> = BTreeMap::new();
        for src in 0..m {
            for dst in 0..m {
                if src != dst && keep(src, dst) {
                    pairs.insert((src, dst), Vec::new());
                }
            }
        }
        for step in 0..steps {
            world.step(dt, rng);
            if step % sample_every != 0 {
                continue;
            }
            // Project every object into every camera once.
            let views: Vec<_> = scenario
                .cameras
                .iter()
                .map(|c| c.visible_objects(&world, scenario.occlusion_threshold))
                .collect();
            for src in 0..m {
                for dst in 0..m {
                    if src == dst || !keep(src, dst) {
                        continue;
                    }
                    let samples = pairs.get_mut(&(src, dst)).expect("initialized above");
                    for s_obj in &views[src] {
                        let dst_box = views[dst].iter().find(|d| d.id == s_obj.id).map(|d| d.bbox);
                        samples.push(CorrespondenceSample {
                            src: s_obj.bbox,
                            dst: dst_box,
                        });
                    }
                }
            }
        }
        CorrespondenceData { pairs }
    }

    /// Samples for one ordered pair.
    pub fn pair(&self, src: usize, dst: usize) -> &[CorrespondenceSample] {
        self.pairs
            .get(&(src, dst))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of labeled samples.
    pub fn len(&self) -> usize {
        self.pairs.values().map(Vec::len).sum()
    }

    /// True when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The trained models for every ordered camera pair, plus the association
/// engine over the `src < dst` half.
#[derive(Debug, Clone)]
pub struct TrainedAssociation {
    /// Number of cameras.
    pub num_cameras: usize,
    /// Model per ordered pair (both directions — the distributed stage
    /// needs `i → assigned` lookups in either direction).
    pub models: BTreeMap<(usize, usize), CameraPairModel>,
    /// The association engine (uses the `src < dst` models).
    pub engine: AssociationEngine,
}

impl TrainedAssociation {
    /// Trains KNN pair models (with `k` neighbours) on the collected data.
    ///
    /// Pairs with no samples at all (a camera never saw any object while
    /// another had data) get no model; the engine skips them and the
    /// distributed stage treats the target as "not visible".
    ///
    /// # Errors
    ///
    /// Propagates model-fitting errors other than empty training sets.
    pub fn train(
        num_cameras: usize,
        data: &CorrespondenceData,
        k: usize,
        iou_threshold: f64,
    ) -> Result<TrainedAssociation, MlError> {
        let mut models = BTreeMap::new();
        let mut engine = AssociationEngine::new(num_cameras, iou_threshold);
        for (&(src, dst), samples) in &data.pairs {
            match train_pair_model(k, samples) {
                Ok(model) => {
                    if src < dst {
                        engine.insert_model(src, dst, model.clone());
                    }
                    models.insert((src, dst), model);
                }
                Err(MlError::EmptyTrainingSet) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(TrainedAssociation {
            num_cameras,
            models,
            engine,
        })
    }

    /// Predicts where a box seen by `src` lands on `dst`; `None` when the
    /// models say it is not visible there (or no model exists).
    pub fn map_box(
        &self,
        src: usize,
        dst: usize,
        bbox: &mvs_geometry::BBox,
    ) -> Option<mvs_geometry::BBox> {
        self.models.get(&(src, dst))?.predict(bbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn collected() -> (Scenario, CorrespondenceData) {
        let sc = Scenario::new(ScenarioKind::S2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let data = CorrespondenceData::collect(&sc, 90.0, 3, &mut rng);
        (sc, data)
    }

    #[test]
    fn collection_produces_samples_for_all_pairs() {
        let (sc, data) = collected();
        assert!(!data.is_empty());
        let m = sc.num_cameras();
        assert_eq!(data.pairs.len(), m * (m - 1));
        // S2's cameras overlap: both directed pairs must contain positives.
        for (&(s, d), samples) in &data.pairs {
            let positives = samples.iter().filter(|x| x.dst.is_some()).count();
            assert!(
                positives > 0,
                "pair ({s},{d}) has no positive correspondences"
            );
        }
    }

    #[test]
    fn trained_models_map_shared_objects_close() {
        let (sc, data) = collected();
        let trained = TrainedAssociation::train(sc.num_cameras(), &data, 3, 0.15).unwrap();
        assert!(trained.models.contains_key(&(0, 1)));
        assert!(trained.models.contains_key(&(1, 0)));
        // Evaluate mapping error on held-out positives (tail of the data).
        let samples = data.pair(0, 1);
        let test: Vec<_> = samples
            .iter()
            .rev()
            .take(30)
            .filter(|s| s.dst.is_some())
            .collect();
        assert!(!test.is_empty());
        let mut hits = 0;
        for s in &test {
            if let Some(mapped) = trained.map_box(0, 1, &s.src) {
                if mapped.iou(&s.dst.expect("filtered")) > 0.2 {
                    hits += 1;
                }
            }
        }
        assert!(
            hits * 2 >= test.len(),
            "only {hits}/{} mappings landed near the truth",
            test.len()
        );
    }

    #[test]
    fn engine_associates_shared_objects_in_s2() {
        let (sc, data) = collected();
        let trained = TrainedAssociation::train(sc.num_cameras(), &data, 3, 0.15).unwrap();
        // Fresh world; find a frame where both cameras see a common object.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut world = sc.warmed_world(45.0, &mut rng);
        let dt = sc.frame_dt_s();
        let mut merged_any = false;
        for _ in 0..600 {
            world.step(dt, &mut rng);
            let views: Vec<Vec<_>> = sc
                .cameras
                .iter()
                .map(|c| c.visible_objects(&world, sc.occlusion_threshold))
                .collect();
            let shared = views[0]
                .iter()
                .any(|a| views[1].iter().any(|b| b.id == a.id));
            if !shared {
                continue;
            }
            let boxes: Vec<Vec<_>> = views
                .iter()
                .map(|v| v.iter().map(|g| g.bbox).collect())
                .collect();
            let globals = trained.engine.associate(&boxes);
            if globals.iter().any(|g| g.members.len() == 2) {
                merged_any = true;
                break;
            }
        }
        assert!(merged_any, "no shared object was ever merged");
    }

    #[test]
    fn determinism_of_collection() {
        let sc = Scenario::new(ScenarioKind::S2);
        let a = CorrespondenceData::collect(&sc, 20.0, 5, &mut ChaCha8Rng::seed_from_u64(4));
        let b = CorrespondenceData::collect(&sc, 20.0, 5, &mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.pair(0, 1), b.pair(0, 1));
    }
}
