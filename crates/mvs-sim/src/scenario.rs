//! The three evaluation scenarios (Sec. IV-A2, Table I).
//!
//! | Scenario | Cameras | Devices                        | Traffic |
//! |----------|---------|--------------------------------|---------|
//! | S1       | 5       | 2×Xavier, 2×TX2, 1×Nano        | signalized intersection, platooned |
//! | S2       | 2       | 1×Xavier, 1×Nano               | residential roadside, sparse |
//! | S3       | 3       | 1×Xavier, 1×TX2, 1×Nano        | busy fork road, small overlaps |
//!
//! Beyond the paper's deployments, [`Scenario::city`] procedurally
//! generates city-scale fleets (100–1000 cameras) on a seeded road grid:
//! camera clusters around intersections ("districts") with per-district
//! traffic intensity — the workload for the sharded scheduling path.

use crate::camera::CameraModel;
use crate::trajectory::{FollowingModel, Route, SpawnConfig, TrafficLight};
use crate::world::{Lane, World};
use mvs_geometry::{FrameDims, Point2};
use mvs_vision::DeviceKind;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the paper's deployment scenarios to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Five cameras around a signalized intersection.
    S1,
    /// Two cameras on a residential roadside with sparse traffic.
    S2,
    /// Three cameras on a busy fork road with small view overlaps.
    S3,
    /// A procedural city-scale fleet (see [`Scenario::city`]); defaults to
    /// [`CityConfig::default`].
    City,
}

impl ScenarioKind {
    /// The paper's scenarios in paper order. `City` is intentionally not
    /// listed: it is a procedural family, not a fixed preset, and at fleet
    /// scale it is far too large for the preset sweeps that iterate `ALL`.
    pub const ALL: [ScenarioKind; 3] = [ScenarioKind::S1, ScenarioKind::S2, ScenarioKind::S3];
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioKind::S1 => write!(f, "S1"),
            ScenarioKind::S2 => write!(f, "S2"),
            ScenarioKind::S3 => write!(f, "S3"),
            ScenarioKind::City => write!(f, "city"),
        }
    }
}

/// A fully specified deployment: cameras, devices, and world dynamics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Which paper scenario this is.
    pub kind: ScenarioKind,
    /// The camera models (indices are the pipeline's camera ids).
    pub cameras: Vec<CameraModel>,
    /// Device kind per camera (Table I).
    pub devices: Vec<DeviceKind>,
    /// Lanes driving the world.
    pub lanes: Vec<Lane>,
    /// Camera sampling rate (the dataset's 10 FPS).
    pub fps: f64,
    /// Occlusion coverage threshold (lower = more occlusion dropping).
    pub occlusion_threshold: f64,
}

impl Scenario {
    /// Builds the named scenario.
    pub fn new(kind: ScenarioKind) -> Scenario {
        match kind {
            ScenarioKind::S1 => s1(),
            ScenarioKind::S2 => s2(),
            ScenarioKind::S3 => s3(),
            ScenarioKind::City => Scenario::city(&CityConfig::default()),
        }
    }

    /// Number of cameras.
    pub fn num_cameras(&self) -> usize {
        self.cameras.len()
    }

    /// A fresh world in this scenario's initial state.
    pub fn make_world(&self) -> World {
        World::new(self.lanes.clone(), FollowingModel::default())
    }

    /// Seconds between frames.
    pub fn frame_dt_s(&self) -> f64 {
        1.0 / self.fps
    }

    /// Steps a fresh world for `warmup_s` seconds so traffic is flowing
    /// before measurement starts.
    pub fn warmed_world<R: Rng + ?Sized>(&self, warmup_s: f64, rng: &mut R) -> World {
        let mut w = self.make_world();
        let dt = self.frame_dt_s();
        let steps = (warmup_s / dt).round() as usize;
        for _ in 0..steps {
            w.step(dt, rng);
        }
        w
    }

    /// Per-camera object counts over time: the Fig. 2 series. Samples the
    /// world every `sample_every_s` seconds for `duration_s`, returning one
    /// count series per camera.
    pub fn workload_series<R: Rng + ?Sized>(
        &self,
        duration_s: f64,
        sample_every_s: f64,
        rng: &mut R,
    ) -> Vec<Vec<usize>> {
        let mut world = self.warmed_world(30.0, rng);
        let dt = self.frame_dt_s();
        let steps = (duration_s / dt).round() as usize;
        let sample_every = (sample_every_s / dt).round().max(1.0) as usize;
        let mut series = vec![Vec::new(); self.cameras.len()];
        for step in 0..steps {
            world.step(dt, rng);
            if step % sample_every == 0 {
                for (cam, out) in self.cameras.iter().zip(series.iter_mut()) {
                    out.push(cam.visible_objects(&world, self.occlusion_threshold).len());
                }
            }
        }
        series
    }
}

fn lane(waypoints: Vec<Point2>, speed: f64, rate: f64, light: Option<TrafficLight>) -> Lane {
    Lane {
        route: Route::new(waypoints, speed),
        light,
        spawn: SpawnConfig {
            rate_per_s: rate,
            min_gap_m: 10.0,
        },
    }
}

/// S1: four-way signalized intersection at the origin, five cameras.
fn s1() -> Scenario {
    let speed = 9.0;
    let rate = 0.16;
    // Each approach is 110 m long with its stop line 100 m in (10 m before
    // the centre); the light alternates between the EW and NS roads.
    let ew_light = |offset| TrafficLight {
        period_s: 40.0,
        green_fraction: 0.45,
        offset_s: offset,
        stop_line_s: 100.0,
    };
    let lanes = vec![
        // Eastbound and westbound (green first).
        lane(
            vec![Point2::new(-110.0, -3.0), Point2::new(110.0, -3.0)],
            speed,
            rate,
            Some(ew_light(0.0)),
        ),
        lane(
            vec![Point2::new(110.0, 3.0), Point2::new(-110.0, 3.0)],
            speed,
            rate,
            Some(ew_light(0.0)),
        ),
        // Northbound and southbound (opposite phase).
        lane(
            vec![Point2::new(3.0, -110.0), Point2::new(3.0, 110.0)],
            speed,
            rate,
            Some(ew_light(20.0)),
        ),
        lane(
            vec![Point2::new(-3.0, 110.0), Point2::new(-3.0, -110.0)],
            speed,
            rate,
            Some(ew_light(20.0)),
        ),
    ];
    let frame = FrameDims::REGULAR;
    let center = Point2::ORIGIN;
    let cameras = vec![
        CameraModel::looking_at(Point2::new(-45.0, -18.0), center, frame),
        CameraModel::looking_at(Point2::new(45.0, 18.0), center, frame),
        CameraModel::looking_at(Point2::new(18.0, -45.0), center, frame),
        CameraModel::looking_at(Point2::new(-18.0, 45.0), center, FrameDims::FISHEYE),
        // The Nano overlaps the Xavier/TX2 views almost entirely, so BALB
        // can offload nearly all of its workload (the deployments in the
        // paper's Fig. 1 share the intersection core across all cameras).
        CameraModel::looking_at(Point2::new(-40.0, 22.0), center, frame),
    ];
    Scenario {
        kind: ScenarioKind::S1,
        cameras,
        devices: vec![
            DeviceKind::Xavier,
            DeviceKind::Xavier,
            DeviceKind::Tx2,
            DeviceKind::Tx2,
            DeviceKind::Nano,
        ],
        lanes,
        fps: 10.0,
        occlusion_threshold: 0.75,
    }
}

/// S2: straight residential road, two cameras, sparse traffic.
fn s2() -> Scenario {
    let lanes = vec![
        lane(
            vec![Point2::new(-120.0, -2.5), Point2::new(120.0, -2.5)],
            8.0,
            0.07,
            None,
        ),
        lane(
            vec![Point2::new(120.0, 2.5), Point2::new(-120.0, 2.5)],
            8.0,
            0.06,
            None,
        ),
    ];
    let frame = FrameDims::REGULAR;
    let cameras = vec![
        // Both roadside cameras cover the stretch around the origin from
        // opposite ends: large view overlap. They sit well off the road so
        // vehicles do not stack up along the optical axis.
        CameraModel::looking_at(Point2::new(-35.0, -25.0), Point2::new(15.0, 0.0), frame),
        CameraModel::looking_at(Point2::new(35.0, -25.0), Point2::new(-15.0, 0.0), frame),
    ];
    Scenario {
        kind: ScenarioKind::S2,
        cameras,
        devices: vec![DeviceKind::Xavier, DeviceKind::Nano],
        lanes,
        fps: 10.0,
        occlusion_threshold: 0.75,
    }
}

/// S3: busy fork road, three cameras with small overlaps.
fn s3() -> Scenario {
    let speed = 9.0;
    let lanes = vec![
        // Main road splitting into an upper and a lower branch.
        lane(
            vec![
                Point2::new(-130.0, 0.0),
                Point2::new(0.0, 0.0),
                Point2::new(100.0, 38.0),
            ],
            speed,
            0.22,
            None,
        ),
        lane(
            vec![
                Point2::new(-130.0, -4.0),
                Point2::new(0.0, -4.0),
                Point2::new(100.0, -42.0),
            ],
            speed,
            0.22,
            None,
        ),
        // Return flow merging back onto the main road.
        lane(
            vec![
                Point2::new(100.0, 30.0),
                Point2::new(10.0, 6.0),
                Point2::new(-130.0, 6.0),
            ],
            speed,
            0.14,
            None,
        ),
    ];
    let frame = FrameDims::REGULAR;
    let cameras = vec![
        // Two cameras monitor the fork from either flank; the first one
        // also reaches a stretch of the approach road.
        CameraModel::looking_at(Point2::new(15.0, -35.0), Point2::new(-12.0, 2.0), frame),
        CameraModel::looking_at(Point2::new(30.0, 45.0), Point2::new(25.0, -5.0), frame),
        // …and one faces the approach road far upstream: little overlap
        // with the fork cameras.
        CameraModel::looking_at(Point2::new(-85.0, -16.0), Point2::new(-45.0, 0.0), frame),
    ];
    Scenario {
        kind: ScenarioKind::S3,
        cameras,
        devices: vec![DeviceKind::Xavier, DeviceKind::Tx2, DeviceKind::Nano],
        lanes,
        fps: 10.0,
        occlusion_threshold: 0.6,
    }
}

/// Configuration of the procedural city generator ([`Scenario::city`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    /// Fleet size. Cameras are grouped into districts of up to
    /// [`CityConfig::CAMERAS_PER_DISTRICT`].
    pub cameras: usize,
    /// Seed of the layout and traffic randomness; equal configs generate
    /// byte-identical scenarios.
    pub seed: u64,
    /// Global traffic intensity multiplier applied on top of the seeded
    /// per-district multipliers (1.0 = nominal).
    pub intensity: f64,
}

impl CityConfig {
    /// Cameras clustered around each district intersection.
    pub const CAMERAS_PER_DISTRICT: usize = 8;

    /// Number of districts this config generates.
    pub fn districts(&self) -> usize {
        self.cameras.div_ceil(Self::CAMERAS_PER_DISTRICT)
    }
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            cameras: 128,
            seed: 17,
            intensity: 1.0,
        }
    }
}

/// District intersections sit on a square grid with this spacing. It
/// exceeds twice the default camera range (90 m), so view wedges from
/// different districts can never intersect: the static overlap graph
/// decomposes into one connected component per district by construction.
const CITY_BLOCK_M: f64 = 300.0;

impl Scenario {
    /// Procedurally generates a city-scale deployment from a seeded road
    /// grid: districts of up to [`CityConfig::CAMERAS_PER_DISTRICT`]
    /// cameras ring their intersection (all facing the centre, so each
    /// district forms one view-overlap cluster), two signalized crossing
    /// streets per district carry traffic, and a seeded per-district
    /// multiplier — scaled by [`CityConfig::intensity`] — sets how busy
    /// each district is. Devices cycle Xavier → TX2 → Nano across the
    /// fleet.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvs_sim::{CityConfig, Scenario};
    ///
    /// let city = Scenario::city(&CityConfig { cameras: 32, seed: 7, intensity: 1.0 });
    /// assert_eq!(city.num_cameras(), 32);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `cameras` is zero or `intensity` is not a positive finite
    /// number.
    pub fn city(config: &CityConfig) -> Scenario {
        use rand::SeedableRng;
        assert!(config.cameras > 0, "city fleet needs at least one camera");
        assert!(
            config.intensity.is_finite() && config.intensity > 0.0,
            "intensity must be positive and finite"
        );
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(config.seed);
        let districts = config.districts();
        let grid_side = (districts as f64).sqrt().ceil() as usize;
        let device_cycle = [DeviceKind::Xavier, DeviceKind::Tx2, DeviceKind::Nano];
        let frame = FrameDims::REGULAR;

        let mut cameras = Vec::with_capacity(config.cameras);
        let mut devices = Vec::with_capacity(config.cameras);
        let mut lanes = Vec::new();
        for district in 0..districts {
            let row = district / grid_side;
            let col = district % grid_side;
            let center = Point2::new(col as f64 * CITY_BLOCK_M, row as f64 * CITY_BLOCK_M);

            // Cameras ring the intersection and face (roughly) its centre,
            // so every wedge in the district contains the centre point and
            // the district is a single overlap component.
            let in_district = CityConfig::CAMERAS_PER_DISTRICT.min(config.cameras - cameras.len());
            for k in 0..in_district {
                let angle = std::f64::consts::TAU * k as f64 / in_district as f64
                    + rng.gen_range(-0.12..0.12);
                let radius = rng.gen_range(30.0..42.0);
                let position = center + Point2::new(radius, 0.0).rotated(angle);
                let target =
                    center + Point2::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0));
                cameras.push(CameraModel::looking_at(position, target, frame));
                devices.push(device_cycle[devices.len() % device_cycle.len()]);
            }

            // Two signalized crossing streets, S1-style: EW green first,
            // NS in the opposite phase, with a per-district phase offset so
            // the city does not pulse in lockstep.
            let mult = rng.gen_range(0.5..1.5) * config.intensity;
            let rate = 0.12 * mult;
            let phase = rng.gen_range(0.0..40.0);
            let light = |offset_s: f64| TrafficLight {
                period_s: 40.0,
                green_fraction: 0.45,
                offset_s,
                stop_line_s: 100.0,
            };
            let (cx, cy) = (center.x, center.y);
            lanes.push(lane(
                vec![
                    Point2::new(cx - 110.0, cy - 3.0),
                    Point2::new(cx + 110.0, cy - 3.0),
                ],
                9.0,
                rate,
                Some(light(phase)),
            ));
            lanes.push(lane(
                vec![
                    Point2::new(cx + 110.0, cy + 3.0),
                    Point2::new(cx - 110.0, cy + 3.0),
                ],
                9.0,
                rate,
                Some(light(phase)),
            ));
            lanes.push(lane(
                vec![
                    Point2::new(cx + 3.0, cy - 110.0),
                    Point2::new(cx + 3.0, cy + 110.0),
                ],
                9.0,
                rate,
                Some(light(phase + 20.0)),
            ));
            lanes.push(lane(
                vec![
                    Point2::new(cx - 3.0, cy + 110.0),
                    Point2::new(cx - 3.0, cy - 110.0),
                ],
                9.0,
                rate,
                Some(light(phase + 20.0)),
            ));
        }
        Scenario {
            kind: ScenarioKind::City,
            cameras,
            devices,
            lanes,
            fps: 10.0,
            occlusion_threshold: 0.75,
        }
    }
}

#[cfg(test)]
mod city_tests {
    use super::*;
    use mvs_core::OverlapGraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn city_generates_requested_fleet() {
        let cfg = CityConfig {
            cameras: 20,
            seed: 3,
            intensity: 1.0,
        };
        let sc = Scenario::city(&cfg);
        assert_eq!(sc.kind, ScenarioKind::City);
        assert_eq!(sc.num_cameras(), 20);
        assert_eq!(sc.devices.len(), 20);
        assert_eq!(cfg.districts(), 3);
        assert_eq!(sc.lanes.len(), 4 * cfg.districts());
        for d in [DeviceKind::Xavier, DeviceKind::Tx2, DeviceKind::Nano] {
            assert!(sc.devices.contains(&d), "device mix should cycle {d:?}");
        }
    }

    #[test]
    fn city_generation_is_deterministic_in_the_seed() {
        let cfg = CityConfig {
            cameras: 24,
            seed: 99,
            intensity: 1.0,
        };
        assert_eq!(Scenario::city(&cfg), Scenario::city(&cfg));
        let other = Scenario::city(&CityConfig { seed: 100, ..cfg });
        assert_ne!(Scenario::city(&cfg), other);
    }

    #[test]
    fn city_overlap_graph_has_one_component_per_district() {
        let cfg = CityConfig {
            cameras: 48,
            seed: 5,
            intensity: 1.0,
        };
        let sc = Scenario::city(&cfg);
        let polygons: Vec<_> = sc.cameras.iter().map(|c| c.view_polygon()).collect();
        let graph = OverlapGraph::from_polygons(&polygons);
        let components = graph.components();
        assert_eq!(components.len(), cfg.districts());
        for component in &components {
            assert!(component.len() <= CityConfig::CAMERAS_PER_DISTRICT);
            // Districts are contiguous camera-id ranges by construction.
            let lo = component[0].0;
            let ids: Vec<usize> = component.iter().map(|c| c.0).collect();
            assert_eq!(ids, (lo..lo + component.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn small_city_produces_traffic_in_every_district() {
        let sc = Scenario::city(&CityConfig {
            cameras: 16,
            seed: 11,
            intensity: 1.2,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let series = sc.workload_series(60.0, 2.0, &mut rng);
        let seeing = series
            .iter()
            .filter(|s| s.iter().sum::<usize>() > 0)
            .count();
        assert!(
            seeing >= 12,
            "only {seeing}/16 city cameras ever saw an object"
        );
    }

    #[test]
    fn intensity_scales_traffic() {
        let quiet = Scenario::city(&CityConfig {
            cameras: 8,
            seed: 4,
            intensity: 0.4,
        });
        let busy = Scenario::city(&CityConfig {
            cameras: 8,
            seed: 4,
            intensity: 2.0,
        });
        let total_rate =
            |sc: &Scenario| -> f64 { sc.lanes.iter().map(|l| l.spawn.rate_per_s).sum() };
        assert!(total_rate(&busy) > 4.0 * total_rate(&quiet));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn configurations_match_table_one() {
        let s1 = Scenario::new(ScenarioKind::S1);
        assert_eq!(s1.num_cameras(), 5);
        assert_eq!(
            s1.devices
                .iter()
                .filter(|&&d| d == DeviceKind::Xavier)
                .count(),
            2
        );
        assert_eq!(
            s1.devices.iter().filter(|&&d| d == DeviceKind::Tx2).count(),
            2
        );
        assert_eq!(
            s1.devices
                .iter()
                .filter(|&&d| d == DeviceKind::Nano)
                .count(),
            1
        );
        let s2 = Scenario::new(ScenarioKind::S2);
        assert_eq!(s2.devices, vec![DeviceKind::Xavier, DeviceKind::Nano]);
        let s3 = Scenario::new(ScenarioKind::S3);
        assert_eq!(
            s3.devices,
            vec![DeviceKind::Xavier, DeviceKind::Tx2, DeviceKind::Nano]
        );
    }

    #[test]
    fn cameras_see_traffic_over_time() {
        for kind in ScenarioKind::ALL {
            let sc = Scenario::new(kind);
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            // Over a minute of samples, every camera must see traffic at
            // least sometimes (sparse scenarios may have empty instants).
            let series = sc.workload_series(60.0, 1.0, &mut rng);
            for (i, s) in series.iter().enumerate() {
                let total: usize = s.iter().sum();
                assert!(total > 0, "{kind}: camera {i} never saw an object");
            }
        }
    }

    #[test]
    fn s1_views_overlap_substantially() {
        let sc = Scenario::new(ScenarioKind::S1);
        // The four centre-facing cameras share the intersection centre.
        let shared = Point2::new(0.0, 0.0);
        let covering = sc
            .cameras
            .iter()
            .filter(|c| c.view_polygon().contains(shared))
            .count();
        assert!(covering >= 4, "only {covering} cameras cover the centre");
    }

    #[test]
    fn s3_overlaps_are_smaller_than_s1() {
        let mean_pairwise = |sc: &Scenario| {
            let polys: Vec<_> = sc.cameras.iter().map(|c| c.view_polygon()).collect();
            let mut total = 0.0;
            let mut pairs = 0;
            for i in 0..polys.len() {
                for j in i + 1..polys.len() {
                    let overlap = polys[i].overlap_area_approx(&polys[j], 40);
                    total += overlap / polys[i].area().min(polys[j].area());
                    pairs += 1;
                }
            }
            total / pairs as f64
        };
        let s1 = mean_pairwise(&Scenario::new(ScenarioKind::S1));
        let s3 = mean_pairwise(&Scenario::new(ScenarioKind::S3));
        assert!(s1 > s3, "S1 overlap {s1} should exceed S3 overlap {s3}");
    }

    #[test]
    fn s2_is_sparser_than_s3() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let density = |kind: ScenarioKind, rng: &mut ChaCha8Rng| {
            let sc = Scenario::new(kind);
            let series = sc.workload_series(60.0, 2.0, rng);
            let total: usize = series.iter().flatten().sum();
            let samples: usize = series.iter().map(Vec::len).sum();
            total as f64 / samples as f64
        };
        let d2 = density(ScenarioKind::S2, &mut rng);
        let d3 = density(ScenarioKind::S3, &mut rng);
        assert!(d3 > 2.0 * d2, "S3 {d3} should be much busier than S2 {d2}");
    }

    #[test]
    fn s1_workload_varies_over_time() {
        // The Fig. 2 property: per-camera workload fluctuates with the
        // signal cycle instead of staying flat.
        let sc = Scenario::new(ScenarioKind::S1);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let series = sc.workload_series(120.0, 2.0, &mut rng);
        let varying = series
            .iter()
            .filter(|s| {
                let min = s.iter().min().copied().unwrap_or(0);
                let max = s.iter().max().copied().unwrap_or(0);
                max >= min + 3
            })
            .count();
        assert!(
            varying >= 3,
            "expected most cameras to see strong workload variation"
        );
    }
}

/// Builder for custom deployments beyond the paper's S1–S3.
///
/// Downstream users bring their own camera layout, device fleet, and
/// traffic; everything else (association training, masks, the full
/// pipeline) works unchanged.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{FrameDims, Point2};
/// use mvs_sim::{CameraModel, Route, ScenarioBuilder, SpawnConfig};
/// use mvs_vision::DeviceKind;
///
/// let scenario = ScenarioBuilder::new("parking-lot")
///     .camera(
///         CameraModel::looking_at(Point2::new(-30.0, -10.0), Point2::ORIGIN, FrameDims::REGULAR),
///         DeviceKind::Xavier,
///     )
///     .camera(
///         CameraModel::looking_at(Point2::new(30.0, -10.0), Point2::ORIGIN, FrameDims::REGULAR),
///         DeviceKind::Nano,
///     )
///     .lane(
///         Route::new(vec![Point2::new(-80.0, 0.0), Point2::new(80.0, 0.0)], 6.0),
///         SpawnConfig { rate_per_s: 0.08, min_gap_m: 8.0 },
///         None,
///     )
///     .build()?;
/// assert_eq!(scenario.num_cameras(), 2);
/// # Ok::<(), mvs_sim::ScenarioBuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    cameras: Vec<CameraModel>,
    devices: Vec<DeviceKind>,
    lanes: Vec<Lane>,
    fps: f64,
    occlusion_threshold: f64,
}

/// Error returned by [`ScenarioBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioBuildError {
    /// No cameras were added.
    NoCameras,
    /// No lanes were added (nothing would ever move).
    NoLanes,
}

impl std::fmt::Display for ScenarioBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioBuildError::NoCameras => write!(f, "scenario needs at least one camera"),
            ScenarioBuildError::NoLanes => write!(f, "scenario needs at least one lane"),
        }
    }
}

impl std::error::Error for ScenarioBuildError {}

impl ScenarioBuilder {
    /// Starts a builder. The name is informational (custom scenarios
    /// report as [`ScenarioKind::S1`]'s kind-agnostic sibling via
    /// `Scenario::kind`; see [`ScenarioBuilder::build`]).
    pub fn new<S: Into<String>>(name: S) -> Self {
        ScenarioBuilder {
            name: name.into(),
            cameras: Vec::new(),
            devices: Vec::new(),
            lanes: Vec::new(),
            fps: 10.0,
            occlusion_threshold: 0.75,
        }
    }

    /// Adds a camera backed by the given device.
    pub fn camera(mut self, camera: CameraModel, device: DeviceKind) -> Self {
        self.cameras.push(camera);
        self.devices.push(device);
        self
    }

    /// Adds a traffic lane with an arrival process and optional light.
    pub fn lane(mut self, route: Route, spawn: SpawnConfig, light: Option<TrafficLight>) -> Self {
        self.lanes.push(Lane {
            route,
            light,
            spawn,
        });
        self
    }

    /// Sets the capture rate (default 10 FPS).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not positive.
    pub fn fps(mut self, fps: f64) -> Self {
        assert!(fps > 0.0, "fps must be positive");
        self.fps = fps;
        self
    }

    /// Sets the occlusion coverage threshold (default 0.75; lower drops
    /// more occluded objects).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive.
    pub fn occlusion_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "occlusion threshold must be positive");
        self.occlusion_threshold = threshold;
        self
    }

    /// Builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioBuildError`] when no cameras or no lanes were
    /// added.
    pub fn build(self) -> Result<Scenario, ScenarioBuildError> {
        if self.cameras.is_empty() {
            return Err(ScenarioBuildError::NoCameras);
        }
        if self.lanes.is_empty() {
            return Err(ScenarioBuildError::NoLanes);
        }
        let _ = self.name; // informational only, kept for future labeling
        Ok(Scenario {
            // Custom deployments reuse S1's kind tag; the kind only
            // selects presets, never behaviour.
            kind: ScenarioKind::S1,
            cameras: self.cameras,
            devices: self.devices,
            lanes: self.lanes,
            fps: self.fps,
            occlusion_threshold: self.occlusion_threshold,
        })
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;
    use crate::runtime::{run_pipeline, Algorithm, PipelineConfig};
    use mvs_geometry::FrameDims;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn custom() -> Scenario {
        ScenarioBuilder::new("test-site")
            .camera(
                CameraModel::looking_at(
                    Point2::new(-30.0, -12.0),
                    Point2::ORIGIN,
                    FrameDims::REGULAR,
                ),
                DeviceKind::Xavier,
            )
            .camera(
                CameraModel::looking_at(
                    Point2::new(30.0, -12.0),
                    Point2::ORIGIN,
                    FrameDims::REGULAR,
                ),
                DeviceKind::Tx2,
            )
            .lane(
                Route::new(vec![Point2::new(-90.0, 0.0), Point2::new(90.0, 0.0)], 7.0),
                SpawnConfig {
                    rate_per_s: 0.1,
                    min_gap_m: 8.0,
                },
                None,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_inputs() {
        assert_eq!(
            ScenarioBuilder::new("x").build().unwrap_err(),
            ScenarioBuildError::NoCameras
        );
        let only_cam = ScenarioBuilder::new("x").camera(
            CameraModel::looking_at(Point2::ORIGIN, Point2::new(1.0, 0.0), FrameDims::REGULAR),
            DeviceKind::Nano,
        );
        assert_eq!(only_cam.build().unwrap_err(), ScenarioBuildError::NoLanes);
    }

    #[test]
    fn custom_scenario_produces_traffic() {
        let sc = custom();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let series = sc.workload_series(60.0, 2.0, &mut rng);
        let total: usize = series.iter().flatten().sum();
        assert!(total > 0, "custom scenario never produced visible traffic");
    }

    #[test]
    fn full_pipeline_runs_on_a_custom_scenario() {
        let sc = custom();
        let cfg = PipelineConfig {
            train_s: 30.0,
            eval_s: 20.0,
            ..PipelineConfig::paper_default(Algorithm::Balb)
        };
        let r = run_pipeline(&sc, &cfg);
        assert!(r.recall > 0.7, "recall {}", r.recall);
        assert!(r.mean_latency_ms > 0.0);
    }
}
