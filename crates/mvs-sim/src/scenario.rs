//! The three evaluation scenarios (Sec. IV-A2, Table I).
//!
//! | Scenario | Cameras | Devices                        | Traffic |
//! |----------|---------|--------------------------------|---------|
//! | S1       | 5       | 2×Xavier, 2×TX2, 1×Nano        | signalized intersection, platooned |
//! | S2       | 2       | 1×Xavier, 1×Nano               | residential roadside, sparse |
//! | S3       | 3       | 1×Xavier, 1×TX2, 1×Nano        | busy fork road, small overlaps |

use crate::camera::CameraModel;
use crate::trajectory::{FollowingModel, Route, SpawnConfig, TrafficLight};
use crate::world::{Lane, World};
use mvs_geometry::{FrameDims, Point2};
use mvs_vision::DeviceKind;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the paper's deployment scenarios to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Five cameras around a signalized intersection.
    S1,
    /// Two cameras on a residential roadside with sparse traffic.
    S2,
    /// Three cameras on a busy fork road with small view overlaps.
    S3,
}

impl ScenarioKind {
    /// All scenarios in paper order.
    pub const ALL: [ScenarioKind; 3] = [ScenarioKind::S1, ScenarioKind::S2, ScenarioKind::S3];
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioKind::S1 => write!(f, "S1"),
            ScenarioKind::S2 => write!(f, "S2"),
            ScenarioKind::S3 => write!(f, "S3"),
        }
    }
}

/// A fully specified deployment: cameras, devices, and world dynamics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Which paper scenario this is.
    pub kind: ScenarioKind,
    /// The camera models (indices are the pipeline's camera ids).
    pub cameras: Vec<CameraModel>,
    /// Device kind per camera (Table I).
    pub devices: Vec<DeviceKind>,
    /// Lanes driving the world.
    pub lanes: Vec<Lane>,
    /// Camera sampling rate (the dataset's 10 FPS).
    pub fps: f64,
    /// Occlusion coverage threshold (lower = more occlusion dropping).
    pub occlusion_threshold: f64,
}

impl Scenario {
    /// Builds the named scenario.
    pub fn new(kind: ScenarioKind) -> Scenario {
        match kind {
            ScenarioKind::S1 => s1(),
            ScenarioKind::S2 => s2(),
            ScenarioKind::S3 => s3(),
        }
    }

    /// Number of cameras.
    pub fn num_cameras(&self) -> usize {
        self.cameras.len()
    }

    /// A fresh world in this scenario's initial state.
    pub fn make_world(&self) -> World {
        World::new(self.lanes.clone(), FollowingModel::default())
    }

    /// Seconds between frames.
    pub fn frame_dt_s(&self) -> f64 {
        1.0 / self.fps
    }

    /// Steps a fresh world for `warmup_s` seconds so traffic is flowing
    /// before measurement starts.
    pub fn warmed_world<R: Rng + ?Sized>(&self, warmup_s: f64, rng: &mut R) -> World {
        let mut w = self.make_world();
        let dt = self.frame_dt_s();
        let steps = (warmup_s / dt).round() as usize;
        for _ in 0..steps {
            w.step(dt, rng);
        }
        w
    }

    /// Per-camera object counts over time: the Fig. 2 series. Samples the
    /// world every `sample_every_s` seconds for `duration_s`, returning one
    /// count series per camera.
    pub fn workload_series<R: Rng + ?Sized>(
        &self,
        duration_s: f64,
        sample_every_s: f64,
        rng: &mut R,
    ) -> Vec<Vec<usize>> {
        let mut world = self.warmed_world(30.0, rng);
        let dt = self.frame_dt_s();
        let steps = (duration_s / dt).round() as usize;
        let sample_every = (sample_every_s / dt).round().max(1.0) as usize;
        let mut series = vec![Vec::new(); self.cameras.len()];
        for step in 0..steps {
            world.step(dt, rng);
            if step % sample_every == 0 {
                for (cam, out) in self.cameras.iter().zip(series.iter_mut()) {
                    out.push(cam.visible_objects(&world, self.occlusion_threshold).len());
                }
            }
        }
        series
    }
}

fn lane(waypoints: Vec<Point2>, speed: f64, rate: f64, light: Option<TrafficLight>) -> Lane {
    Lane {
        route: Route::new(waypoints, speed),
        light,
        spawn: SpawnConfig {
            rate_per_s: rate,
            min_gap_m: 10.0,
        },
    }
}

/// S1: four-way signalized intersection at the origin, five cameras.
fn s1() -> Scenario {
    let speed = 9.0;
    let rate = 0.16;
    // Each approach is 110 m long with its stop line 100 m in (10 m before
    // the centre); the light alternates between the EW and NS roads.
    let ew_light = |offset| TrafficLight {
        period_s: 40.0,
        green_fraction: 0.45,
        offset_s: offset,
        stop_line_s: 100.0,
    };
    let lanes = vec![
        // Eastbound and westbound (green first).
        lane(
            vec![Point2::new(-110.0, -3.0), Point2::new(110.0, -3.0)],
            speed,
            rate,
            Some(ew_light(0.0)),
        ),
        lane(
            vec![Point2::new(110.0, 3.0), Point2::new(-110.0, 3.0)],
            speed,
            rate,
            Some(ew_light(0.0)),
        ),
        // Northbound and southbound (opposite phase).
        lane(
            vec![Point2::new(3.0, -110.0), Point2::new(3.0, 110.0)],
            speed,
            rate,
            Some(ew_light(20.0)),
        ),
        lane(
            vec![Point2::new(-3.0, 110.0), Point2::new(-3.0, -110.0)],
            speed,
            rate,
            Some(ew_light(20.0)),
        ),
    ];
    let frame = FrameDims::REGULAR;
    let center = Point2::ORIGIN;
    let cameras = vec![
        CameraModel::looking_at(Point2::new(-45.0, -18.0), center, frame),
        CameraModel::looking_at(Point2::new(45.0, 18.0), center, frame),
        CameraModel::looking_at(Point2::new(18.0, -45.0), center, frame),
        CameraModel::looking_at(Point2::new(-18.0, 45.0), center, FrameDims::FISHEYE),
        // The Nano overlaps the Xavier/TX2 views almost entirely, so BALB
        // can offload nearly all of its workload (the deployments in the
        // paper's Fig. 1 share the intersection core across all cameras).
        CameraModel::looking_at(Point2::new(-40.0, 22.0), center, frame),
    ];
    Scenario {
        kind: ScenarioKind::S1,
        cameras,
        devices: vec![
            DeviceKind::Xavier,
            DeviceKind::Xavier,
            DeviceKind::Tx2,
            DeviceKind::Tx2,
            DeviceKind::Nano,
        ],
        lanes,
        fps: 10.0,
        occlusion_threshold: 0.75,
    }
}

/// S2: straight residential road, two cameras, sparse traffic.
fn s2() -> Scenario {
    let lanes = vec![
        lane(
            vec![Point2::new(-120.0, -2.5), Point2::new(120.0, -2.5)],
            8.0,
            0.07,
            None,
        ),
        lane(
            vec![Point2::new(120.0, 2.5), Point2::new(-120.0, 2.5)],
            8.0,
            0.06,
            None,
        ),
    ];
    let frame = FrameDims::REGULAR;
    let cameras = vec![
        // Both roadside cameras cover the stretch around the origin from
        // opposite ends: large view overlap. They sit well off the road so
        // vehicles do not stack up along the optical axis.
        CameraModel::looking_at(Point2::new(-35.0, -25.0), Point2::new(15.0, 0.0), frame),
        CameraModel::looking_at(Point2::new(35.0, -25.0), Point2::new(-15.0, 0.0), frame),
    ];
    Scenario {
        kind: ScenarioKind::S2,
        cameras,
        devices: vec![DeviceKind::Xavier, DeviceKind::Nano],
        lanes,
        fps: 10.0,
        occlusion_threshold: 0.75,
    }
}

/// S3: busy fork road, three cameras with small overlaps.
fn s3() -> Scenario {
    let speed = 9.0;
    let lanes = vec![
        // Main road splitting into an upper and a lower branch.
        lane(
            vec![
                Point2::new(-130.0, 0.0),
                Point2::new(0.0, 0.0),
                Point2::new(100.0, 38.0),
            ],
            speed,
            0.22,
            None,
        ),
        lane(
            vec![
                Point2::new(-130.0, -4.0),
                Point2::new(0.0, -4.0),
                Point2::new(100.0, -42.0),
            ],
            speed,
            0.22,
            None,
        ),
        // Return flow merging back onto the main road.
        lane(
            vec![
                Point2::new(100.0, 30.0),
                Point2::new(10.0, 6.0),
                Point2::new(-130.0, 6.0),
            ],
            speed,
            0.14,
            None,
        ),
    ];
    let frame = FrameDims::REGULAR;
    let cameras = vec![
        // Two cameras monitor the fork from either flank; the first one
        // also reaches a stretch of the approach road.
        CameraModel::looking_at(Point2::new(15.0, -35.0), Point2::new(-12.0, 2.0), frame),
        CameraModel::looking_at(Point2::new(30.0, 45.0), Point2::new(25.0, -5.0), frame),
        // …and one faces the approach road far upstream: little overlap
        // with the fork cameras.
        CameraModel::looking_at(Point2::new(-85.0, -16.0), Point2::new(-45.0, 0.0), frame),
    ];
    Scenario {
        kind: ScenarioKind::S3,
        cameras,
        devices: vec![DeviceKind::Xavier, DeviceKind::Tx2, DeviceKind::Nano],
        lanes,
        fps: 10.0,
        occlusion_threshold: 0.6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn configurations_match_table_one() {
        let s1 = Scenario::new(ScenarioKind::S1);
        assert_eq!(s1.num_cameras(), 5);
        assert_eq!(
            s1.devices
                .iter()
                .filter(|&&d| d == DeviceKind::Xavier)
                .count(),
            2
        );
        assert_eq!(
            s1.devices.iter().filter(|&&d| d == DeviceKind::Tx2).count(),
            2
        );
        assert_eq!(
            s1.devices
                .iter()
                .filter(|&&d| d == DeviceKind::Nano)
                .count(),
            1
        );
        let s2 = Scenario::new(ScenarioKind::S2);
        assert_eq!(s2.devices, vec![DeviceKind::Xavier, DeviceKind::Nano]);
        let s3 = Scenario::new(ScenarioKind::S3);
        assert_eq!(
            s3.devices,
            vec![DeviceKind::Xavier, DeviceKind::Tx2, DeviceKind::Nano]
        );
    }

    #[test]
    fn cameras_see_traffic_over_time() {
        for kind in ScenarioKind::ALL {
            let sc = Scenario::new(kind);
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            // Over a minute of samples, every camera must see traffic at
            // least sometimes (sparse scenarios may have empty instants).
            let series = sc.workload_series(60.0, 1.0, &mut rng);
            for (i, s) in series.iter().enumerate() {
                let total: usize = s.iter().sum();
                assert!(total > 0, "{kind}: camera {i} never saw an object");
            }
        }
    }

    #[test]
    fn s1_views_overlap_substantially() {
        let sc = Scenario::new(ScenarioKind::S1);
        // The four centre-facing cameras share the intersection centre.
        let shared = Point2::new(0.0, 0.0);
        let covering = sc
            .cameras
            .iter()
            .filter(|c| c.view_polygon().contains(shared))
            .count();
        assert!(covering >= 4, "only {covering} cameras cover the centre");
    }

    #[test]
    fn s3_overlaps_are_smaller_than_s1() {
        let mean_pairwise = |sc: &Scenario| {
            let polys: Vec<_> = sc.cameras.iter().map(|c| c.view_polygon()).collect();
            let mut total = 0.0;
            let mut pairs = 0;
            for i in 0..polys.len() {
                for j in i + 1..polys.len() {
                    let overlap = polys[i].overlap_area_approx(&polys[j], 40);
                    total += overlap / polys[i].area().min(polys[j].area());
                    pairs += 1;
                }
            }
            total / pairs as f64
        };
        let s1 = mean_pairwise(&Scenario::new(ScenarioKind::S1));
        let s3 = mean_pairwise(&Scenario::new(ScenarioKind::S3));
        assert!(s1 > s3, "S1 overlap {s1} should exceed S3 overlap {s3}");
    }

    #[test]
    fn s2_is_sparser_than_s3() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let density = |kind: ScenarioKind, rng: &mut ChaCha8Rng| {
            let sc = Scenario::new(kind);
            let series = sc.workload_series(60.0, 2.0, rng);
            let total: usize = series.iter().flatten().sum();
            let samples: usize = series.iter().map(Vec::len).sum();
            total as f64 / samples as f64
        };
        let d2 = density(ScenarioKind::S2, &mut rng);
        let d3 = density(ScenarioKind::S3, &mut rng);
        assert!(d3 > 2.0 * d2, "S3 {d3} should be much busier than S2 {d2}");
    }

    #[test]
    fn s1_workload_varies_over_time() {
        // The Fig. 2 property: per-camera workload fluctuates with the
        // signal cycle instead of staying flat.
        let sc = Scenario::new(ScenarioKind::S1);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let series = sc.workload_series(120.0, 2.0, &mut rng);
        let varying = series
            .iter()
            .filter(|s| {
                let min = s.iter().min().copied().unwrap_or(0);
                let max = s.iter().max().copied().unwrap_or(0);
                max >= min + 3
            })
            .count();
        assert!(
            varying >= 3,
            "expected most cameras to see strong workload variation"
        );
    }
}

/// Builder for custom deployments beyond the paper's S1–S3.
///
/// Downstream users bring their own camera layout, device fleet, and
/// traffic; everything else (association training, masks, the full
/// pipeline) works unchanged.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{FrameDims, Point2};
/// use mvs_sim::{CameraModel, Route, ScenarioBuilder, SpawnConfig};
/// use mvs_vision::DeviceKind;
///
/// let scenario = ScenarioBuilder::new("parking-lot")
///     .camera(
///         CameraModel::looking_at(Point2::new(-30.0, -10.0), Point2::ORIGIN, FrameDims::REGULAR),
///         DeviceKind::Xavier,
///     )
///     .camera(
///         CameraModel::looking_at(Point2::new(30.0, -10.0), Point2::ORIGIN, FrameDims::REGULAR),
///         DeviceKind::Nano,
///     )
///     .lane(
///         Route::new(vec![Point2::new(-80.0, 0.0), Point2::new(80.0, 0.0)], 6.0),
///         SpawnConfig { rate_per_s: 0.08, min_gap_m: 8.0 },
///         None,
///     )
///     .build()?;
/// assert_eq!(scenario.num_cameras(), 2);
/// # Ok::<(), mvs_sim::ScenarioBuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    cameras: Vec<CameraModel>,
    devices: Vec<DeviceKind>,
    lanes: Vec<Lane>,
    fps: f64,
    occlusion_threshold: f64,
}

/// Error returned by [`ScenarioBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioBuildError {
    /// No cameras were added.
    NoCameras,
    /// No lanes were added (nothing would ever move).
    NoLanes,
}

impl std::fmt::Display for ScenarioBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioBuildError::NoCameras => write!(f, "scenario needs at least one camera"),
            ScenarioBuildError::NoLanes => write!(f, "scenario needs at least one lane"),
        }
    }
}

impl std::error::Error for ScenarioBuildError {}

impl ScenarioBuilder {
    /// Starts a builder. The name is informational (custom scenarios
    /// report as [`ScenarioKind::S1`]'s kind-agnostic sibling via
    /// `Scenario::kind`; see [`ScenarioBuilder::build`]).
    pub fn new<S: Into<String>>(name: S) -> Self {
        ScenarioBuilder {
            name: name.into(),
            cameras: Vec::new(),
            devices: Vec::new(),
            lanes: Vec::new(),
            fps: 10.0,
            occlusion_threshold: 0.75,
        }
    }

    /// Adds a camera backed by the given device.
    pub fn camera(mut self, camera: CameraModel, device: DeviceKind) -> Self {
        self.cameras.push(camera);
        self.devices.push(device);
        self
    }

    /// Adds a traffic lane with an arrival process and optional light.
    pub fn lane(mut self, route: Route, spawn: SpawnConfig, light: Option<TrafficLight>) -> Self {
        self.lanes.push(Lane {
            route,
            light,
            spawn,
        });
        self
    }

    /// Sets the capture rate (default 10 FPS).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not positive.
    pub fn fps(mut self, fps: f64) -> Self {
        assert!(fps > 0.0, "fps must be positive");
        self.fps = fps;
        self
    }

    /// Sets the occlusion coverage threshold (default 0.75; lower drops
    /// more occluded objects).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive.
    pub fn occlusion_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "occlusion threshold must be positive");
        self.occlusion_threshold = threshold;
        self
    }

    /// Builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioBuildError`] when no cameras or no lanes were
    /// added.
    pub fn build(self) -> Result<Scenario, ScenarioBuildError> {
        if self.cameras.is_empty() {
            return Err(ScenarioBuildError::NoCameras);
        }
        if self.lanes.is_empty() {
            return Err(ScenarioBuildError::NoLanes);
        }
        let _ = self.name; // informational only, kept for future labeling
        Ok(Scenario {
            // Custom deployments reuse S1's kind tag; the kind only
            // selects presets, never behaviour.
            kind: ScenarioKind::S1,
            cameras: self.cameras,
            devices: self.devices,
            lanes: self.lanes,
            fps: self.fps,
            occlusion_threshold: self.occlusion_threshold,
        })
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;
    use crate::runtime::{run_pipeline, Algorithm, PipelineConfig};
    use mvs_geometry::FrameDims;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn custom() -> Scenario {
        ScenarioBuilder::new("test-site")
            .camera(
                CameraModel::looking_at(
                    Point2::new(-30.0, -12.0),
                    Point2::ORIGIN,
                    FrameDims::REGULAR,
                ),
                DeviceKind::Xavier,
            )
            .camera(
                CameraModel::looking_at(
                    Point2::new(30.0, -12.0),
                    Point2::ORIGIN,
                    FrameDims::REGULAR,
                ),
                DeviceKind::Tx2,
            )
            .lane(
                Route::new(vec![Point2::new(-90.0, 0.0), Point2::new(90.0, 0.0)], 7.0),
                SpawnConfig {
                    rate_per_s: 0.1,
                    min_gap_m: 8.0,
                },
                None,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_inputs() {
        assert_eq!(
            ScenarioBuilder::new("x").build().unwrap_err(),
            ScenarioBuildError::NoCameras
        );
        let only_cam = ScenarioBuilder::new("x").camera(
            CameraModel::looking_at(Point2::ORIGIN, Point2::new(1.0, 0.0), FrameDims::REGULAR),
            DeviceKind::Nano,
        );
        assert_eq!(only_cam.build().unwrap_err(), ScenarioBuildError::NoLanes);
    }

    #[test]
    fn custom_scenario_produces_traffic() {
        let sc = custom();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let series = sc.workload_series(60.0, 2.0, &mut rng);
        let total: usize = series.iter().flatten().sum();
        assert!(total > 0, "custom scenario never produced visible traffic");
    }

    #[test]
    fn full_pipeline_runs_on_a_custom_scenario() {
        let sc = custom();
        let cfg = PipelineConfig {
            train_s: 30.0,
            eval_s: 20.0,
            ..PipelineConfig::paper_default(Algorithm::Balb)
        };
        let r = run_pipeline(&sc, &cfg);
        assert!(r.recall > 0.7, "recall {}", r.recall);
        assert!(r.mean_latency_ms > 0.0);
    }
}
