//! Multi-tenant serving front-end: an event loop multiplexing N tenant
//! deployments onto one scheduler core with latest-frame-wins backpressure
//! and load-shedding admission control.
//!
//! The paper evaluates one deployment per run; a production service runs
//! many deployments ("tenants") against shared compute. This module builds
//! that tier on top of [`TenantPipeline`]:
//!
//! * [`IngestLane`] — a depth-1 per-camera frame queue. A frame arriving
//!   while the core is busy *replaces* the waiting frame (the standard
//!   live-analytics policy: stale frames are worthless — cf.
//!   [`QueuePolicy::DropToLatest`](crate::QueuePolicy) for the
//!   single-camera replay model). Every displacement is counted.
//! * [`ServeLoop`] / [`run_serve`] — a discrete-event loop on a virtual
//!   microsecond clock. The scheduler core is a single server: it serves
//!   one tenant-frame at a time, taking the frame's *modeled* service cost
//!   (slowest camera's DNN latency plus the amortized central-stage
//!   share), so the whole simulation is a deterministic function of its
//!   [`ServeConfig`] at any thread count.
//! * Admission control — before serving, each tenant's steady-state load
//!   is measured over a pilot horizon. When the aggregate exceeds the
//!   configured core budget, the service degrades the tenant along a
//!   ladder: shed redundant assignments first, then process only every
//!   d-th frame, and reject the tenant only when even that cannot fit.
//!   Admission is *re-evaluated* mid-run whenever capacity shifts — a
//!   tenant is quarantined or re-admitted, the pool degrades, a tenant
//!   finishes its capture window, or the coordinator recovers from a
//!   crash — and every decision change is recorded as an
//!   [`AdmissionTransition`].
//! * Crash recovery — with snapshotting enabled
//!   ([`ServeConfig::snapshot_every_horizons`]), the loop checkpoints a
//!   serializable [`ServeSnapshot`] of all per-tenant state on a key-frame
//!   cadence. A coordinator crash (scheduled via
//!   [`ServeFaultModel::crash_at_us`], or driven externally through
//!   [`ServeLoop::recover`]) restores the latest snapshot and replays each
//!   tenant pipeline from its *replay recipe* — the deterministic call
//!   sequence that produced it — so the recovered run satisfies the same
//!   frame-conservation and lane invariants as an uninterrupted one.
//!   Recovery cost and the replayed capture gap are counted in
//!   [`RecoveryCounters`].
//! * Chaos — a seeded [`ServeFaultModel`] additionally poisons individual
//!   pipeline steps (the panic is caught, the tenant quarantined and later
//!   re-admitted through the ladder) and degrades the compute pool
//!   (capacity drops, service inflation) at scheduled virtual times. An
//!   inactive model leaves the run bitwise identical to a chaos-free one.
//!
//! Dropped and policy-skipped frames still advance the tenant's world (real
//! time passed); the pipeline sees them as [`TenantPipeline::skip`] calls,
//! so trackers coast across gaps exactly like they do across lost key-frame
//! round trips.

use std::error::Error;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use mvs_metrics::{DegradationCounters, RecoveryCounters, Summary};
use mvs_trace::{Trace, TraceRecorder};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::faults::{FaultModelError, ServeFaultError, ServeFaultModel};
use crate::runtime::{Algorithm, PipelineConfig, PoisonPanic, TenantPipeline};
use crate::scenario::{CityConfig, Scenario};
use crate::FaultModel;

/// A per-camera ingest queue of depth one with latest-frame-wins
/// replacement.
///
/// Frames are identified by their capture index and must be offered in
/// capture order. At most one frame waits; offering a newer frame while an
/// older one waits drops the older one (counted in
/// [`IngestLane::dropped`]). Consequently the consumed sequence is a
/// strictly increasing subsequence of the offered sequence — the lane can
/// drop frames but never reorder or duplicate them.
///
/// # Examples
///
/// ```
/// use mvs_sim::IngestLane;
///
/// let mut lane = IngestLane::new();
/// lane.offer(0);
/// assert_eq!(lane.offer(1), Some(0)); // frame 0 displaced, dropped
/// assert_eq!(lane.take(), Some(1));
/// assert_eq!(lane.take(), None);
/// assert_eq!(lane.dropped(), 1);
/// assert_eq!(lane.depth(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestLane {
    /// The waiting frame, if any (the queue's entire capacity).
    pending: Option<u64>,
    /// Highest frame index ever offered.
    newest: Option<u64>,
    /// Frames displaced by a newer arrival before consumption.
    dropped: u64,
    /// Frames handed to the consumer.
    delivered: u64,
}

impl IngestLane {
    /// An empty lane.
    #[must_use]
    pub fn new() -> IngestLane {
        IngestLane::default()
    }

    /// Offers a captured frame to the lane. Returns the older frame it
    /// displaced, if one was still waiting.
    ///
    /// # Panics
    ///
    /// Panics if `frame` does not arrive in strictly increasing capture
    /// order — the transport below this queue preserves order, so an
    /// out-of-order offer is a caller bug, not a runtime condition.
    pub fn offer(&mut self, frame: u64) -> Option<u64> {
        assert!(
            self.newest.is_none_or(|n| frame > n),
            "frames must be offered in capture order"
        );
        self.newest = Some(frame);
        let displaced = self.pending.replace(frame);
        if displaced.is_some() {
            self.dropped += 1;
        }
        displaced
    }

    /// Consumes the waiting frame, if any.
    pub fn take(&mut self) -> Option<u64> {
        let frame = self.pending.take();
        if frame.is_some() {
            self.delivered += 1;
        }
        frame
    }

    /// Discards the waiting frame, if any, counting it as dropped. The
    /// serve layer empties a quarantined tenant's lanes with this so the
    /// abandoned frame is accounted (the lane identity
    /// `offered == delivered + dropped + depth` keeps holding) instead of
    /// lingering as a stale pending entry.
    pub fn clear_pending(&mut self) {
        if self.pending.take().is_some() {
            self.dropped += 1;
        }
    }

    /// The waiting frame without consuming it.
    #[must_use]
    pub fn peek(&self) -> Option<u64> {
        self.pending
    }

    /// Current queue depth — structurally at most 1.
    #[must_use]
    pub fn depth(&self) -> usize {
        usize::from(self.pending.is_some())
    }

    /// Frames displaced (dropped) before the consumer took them.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames delivered to the consumer.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Frames ever offered. Always equals
    /// `delivered + dropped + depth` — the lane accounts for every frame.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.delivered + self.dropped + self.depth() as u64
    }
}

/// What admission control decided for one tenant, in degradation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Served at its requested configuration.
    Admitted,
    /// Served with redundancy shed to 1 (the cheapest degradation: extra
    /// assignment copies go first, frames are untouched).
    ShedRedundancy,
    /// Served at reduced rate: only every `keep_every`-th captured frame
    /// is offered to the core (redundancy was shed first if it had any).
    Degraded {
        /// Process one frame in this many.
        keep_every: u64,
    },
    /// Not served: even the deepest degradation rung did not fit the
    /// remaining core budget.
    Rejected,
    /// Temporarily not served: the tenant's pipeline panicked and the
    /// tenant sits out a quarantine window before re-admission through
    /// the ladder. Frames captured while quarantined are policy-skipped.
    Quarantined,
}

/// Why an admission decision changed mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitionReason {
    /// The tenant's pipeline panicked and was isolated.
    Quarantine,
    /// A quarantine window expired and the tenant was re-piloted through
    /// the admission ladder.
    Readmission,
    /// The compute pool degraded (capacity drop or service inflation).
    PoolDegrade,
    /// A tenant captured its last frame, freeing its capacity for the
    /// tenants still running.
    TenantFinished,
    /// The coordinator recovered from a crash and re-evaluated the mix.
    Recovery,
}

/// One mid-run admission change: which tenant moved between rungs, when,
/// and why. The serve report records every transition in event order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionTransition {
    /// Virtual time of the change, µs.
    pub at_us: u64,
    /// Tenant index.
    pub tenant: usize,
    /// Rung before the change.
    pub from: AdmissionDecision,
    /// Rung after the change.
    pub to: AdmissionDecision,
    /// What triggered the re-evaluation.
    pub reason: TransitionReason,
}

/// Configuration of one [`run_serve`] simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of tenant deployments.
    pub tenants: usize,
    /// Cameras per tenant (each tenant is an independently seeded city
    /// deployment of this size).
    pub cameras_per_tenant: usize,
    /// Capture rate of every tenant, frames per second.
    pub fps: f64,
    /// Serving time simulated after admission, seconds of virtual time.
    pub duration_s: f64,
    /// Provisioned compute, in cores (1.0 = one core's worth of modeled
    /// milliseconds per millisecond). The serving core processes frames at
    /// this aggregate speed, and admission control degrades tenants until
    /// the aggregate pilot load fits the same budget — so an admitted mix
    /// keeps long-run utilization at or below one.
    pub capacity_cores: f64,
    /// Base seed; tenant `t` runs scenario and pipeline seed `seed + t`.
    pub seed: u64,
    /// Worker threads per pipeline step (0 = automatic). Results are
    /// bitwise identical at any value.
    pub threads: usize,
    /// Requested redundancy degree per tenant.
    pub redundancy: usize,
    /// City traffic intensity multiplier.
    pub intensity: f64,
    /// Association-model training window per tenant, seconds.
    pub train_s: f64,
    /// Fault injection applied to every tenant.
    pub faults: FaultModel,
    /// Deepest frame-dropping rung admission control may assign before
    /// rejecting a tenant (`keep_every` never exceeds this).
    pub max_keep_every: u64,
    /// Use the sharded central solver (city-scale path).
    pub shard_solver: bool,
    /// Overlap each tenant's central solve with uplink-leg encoding on key
    /// frames (see [`PipelineConfig::pipelined`]). Semantically a no-op:
    /// reports are bitwise identical with it on or off.
    #[serde(default)]
    pub pipelined: bool,
    /// Serve-level chaos schedule: coordinator crashes, pipeline poison,
    /// and pool degradation. Inactive by default.
    #[serde(default)]
    pub chaos: ServeFaultModel,
    /// Checkpoint cadence: take a [`ServeSnapshot`] every this many
    /// scheduling horizons of virtual time (0 = snapshotting disabled,
    /// the default). Scheduled crashes require a non-zero cadence.
    /// Snapshotting never changes results: a fault-free run with it
    /// enabled is bitwise identical to one without.
    #[serde(default)]
    pub snapshot_every_horizons: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants: 4,
            cameras_per_tenant: 8,
            fps: 10.0,
            duration_s: 30.0,
            capacity_cores: 4.0,
            seed: 2022,
            threads: 0,
            redundancy: 1,
            intensity: 1.0,
            train_s: 20.0,
            faults: FaultModel::none(),
            max_keep_every: 4,
            shard_solver: false,
            pipelined: false,
            chaos: ServeFaultModel::none(),
            snapshot_every_horizons: 0,
        }
    }
}

/// Why a [`ServeConfig`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeConfigError {
    /// `tenants` is zero.
    NoTenants,
    /// `cameras_per_tenant` is zero.
    NoCameras,
    /// `fps` is non-positive or non-finite.
    BadFps {
        /// The rejected value.
        value: f64,
    },
    /// `duration_s` is negative or non-finite.
    BadDuration {
        /// The rejected value.
        value: f64,
    },
    /// `capacity_cores` is non-positive or non-finite.
    BadCapacity {
        /// The rejected value.
        value: f64,
    },
    /// `max_keep_every` is zero (the ladder needs at least rung 1).
    ZeroMaxKeepEvery,
    /// `redundancy` is zero.
    ZeroRedundancy,
    /// The per-tenant fault model is inconsistent.
    Faults(FaultModelError),
    /// The serve-level chaos schedule is inconsistent.
    Chaos(ServeFaultError),
    /// Crashes are scheduled but snapshotting is disabled
    /// (`snapshot_every_horizons == 0`), so there would be nothing to
    /// recover from.
    CrashWithoutSnapshots,
    /// A snapshot passed to [`ServeLoop::recover`] describes a different
    /// tenant count than the configuration.
    SnapshotMismatch {
        /// Tenants in the configuration.
        expected: usize,
        /// Tenants in the snapshot.
        got: usize,
    },
}

impl fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeConfigError::NoTenants => write!(f, "serve needs at least one tenant"),
            ServeConfigError::NoCameras => write!(f, "tenants need at least one camera"),
            ServeConfigError::BadFps { value } => {
                write!(f, "fps must be finite and positive, got {value}")
            }
            ServeConfigError::BadDuration { value } => {
                write!(f, "duration must be finite and non-negative, got {value}")
            }
            ServeConfigError::BadCapacity { value } => {
                write!(f, "capacity must be finite and positive, got {value}")
            }
            ServeConfigError::ZeroMaxKeepEvery => write!(f, "max_keep_every must be >= 1"),
            ServeConfigError::ZeroRedundancy => write!(f, "redundancy must be at least one"),
            ServeConfigError::Faults(e) => write!(f, "fault model: {e}"),
            ServeConfigError::Chaos(e) => write!(f, "chaos schedule: {e}"),
            ServeConfigError::CrashWithoutSnapshots => write!(
                f,
                "crashes are scheduled but snapshotting is disabled \
                 (set snapshot_every_horizons >= 1)"
            ),
            ServeConfigError::SnapshotMismatch { expected, got } => write!(
                f,
                "snapshot describes {got} tenants but the configuration has {expected}"
            ),
        }
    }
}

impl Error for ServeConfigError {}

impl ServeConfig {
    /// Checks the configuration, returning the first violated constraint.
    /// [`run_serve`] panics on the same conditions; the CLI validates
    /// first so a bad flag surfaces as a typed error instead.
    pub fn validate(&self) -> Result<(), ServeConfigError> {
        if self.tenants == 0 {
            return Err(ServeConfigError::NoTenants);
        }
        if self.cameras_per_tenant == 0 {
            return Err(ServeConfigError::NoCameras);
        }
        if !self.fps.is_finite() || self.fps <= 0.0 {
            return Err(ServeConfigError::BadFps { value: self.fps });
        }
        if !self.duration_s.is_finite() || self.duration_s < 0.0 {
            return Err(ServeConfigError::BadDuration {
                value: self.duration_s,
            });
        }
        if !self.capacity_cores.is_finite() || self.capacity_cores <= 0.0 {
            return Err(ServeConfigError::BadCapacity {
                value: self.capacity_cores,
            });
        }
        if self.max_keep_every == 0 {
            return Err(ServeConfigError::ZeroMaxKeepEvery);
        }
        if self.redundancy == 0 {
            return Err(ServeConfigError::ZeroRedundancy);
        }
        self.faults
            .validate(self.cameras_per_tenant)
            .map_err(ServeConfigError::Faults)?;
        self.chaos.validate().map_err(ServeConfigError::Chaos)?;
        if !self.chaos.crash_at_us.is_empty() && self.snapshot_every_horizons == 0 {
            return Err(ServeConfigError::CrashWithoutSnapshots);
        }
        Ok(())
    }
}

/// Per-tenant outcome of a serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant index (also its seed offset).
    pub tenant: usize,
    /// What admission control decided (the rung at the end of the run).
    pub decision: AdmissionDecision,
    /// Steady-state core load measured over the pilot horizon, in cores,
    /// at the *served* configuration (after any shedding).
    pub pilot_load_cores: f64,
    /// Frames captured during the serving phase.
    pub captured: u64,
    /// Frames processed by the core.
    pub processed: u64,
    /// Frames displaced from the ingest lanes by a newer arrival
    /// (per-camera counters agree, so this is the per-camera count).
    pub queue_dropped: u64,
    /// Frames withheld by the admission policy (`keep_every` thinning and
    /// quarantine windows).
    pub policy_skipped: u64,
    /// Frames whose capture instants fell into a crash-recovery gap: the
    /// coordinator was down or replaying, so they were never offered.
    /// Every captured frame lands in exactly one bucket:
    /// `captured == processed + queue_dropped + policy_skipped + replayed`.
    #[serde(default)]
    pub replayed: u64,
    /// Deepest per-camera queue depth ever observed (bounded by 1).
    pub max_lane_depth: usize,
    /// End-to-end latency of processed frames (capture → completion),
    /// including queueing delay. `p99` is the headline tail metric.
    pub e2e_ms: Summary,
    /// Modeled service cost per processed frame.
    pub service_ms: Summary,
    /// Recall over the tenant's processed frames (skipped frames count
    /// their visible objects as missed, so dropping frames costs recall).
    /// Zero for a tenant that ends the run quarantined (its pipeline, and
    /// with it the recall series, was torn down). A re-admitted tenant
    /// reports recall over its rebuilt pipeline only.
    pub recall: f64,
    /// The tenant pipeline's degradation counters (faults + coasting).
    pub degradation: DegradationCounters,
}

/// Aggregate outcome of a [`run_serve`] simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// The configuration that produced this report.
    pub config: ServeConfig,
    /// Per-tenant outcomes, indexed by tenant.
    pub tenants: Vec<TenantReport>,
    /// Aggregate pilot load of the served (non-rejected) tenants, cores,
    /// as of the *last* admission evaluation (mid-run re-evaluations
    /// exclude tenants that already finished capturing).
    pub admitted_load_cores: f64,
    /// Frames captured across all served tenants.
    pub captured: u64,
    /// Frames processed across all served tenants.
    pub processed: u64,
    /// Frames dropped by backpressure across all served tenants.
    pub queue_dropped: u64,
    /// Frames withheld by admission policy across all served tenants.
    pub policy_skipped: u64,
    /// Frames lost to crash-recovery gaps across all served tenants.
    #[serde(default)]
    pub replayed: u64,
    /// `(queue_dropped + policy_skipped) / captured` — the headline drop
    /// rate (0.0 when nothing was captured).
    pub drop_rate: f64,
    /// End-to-end latency pooled over every served tenant.
    pub e2e_ms: Summary,
    /// Fraction of the serving window the core spent busy, of one core.
    pub core_utilization: f64,
    /// Tenants per admission outcome (the rung each ended the run on).
    pub decisions: DecisionCounts,
    /// Crash-recovery and chaos bookkeeping. All-zero for a chaos-free
    /// run without snapshotting.
    #[serde(default)]
    pub recovery: RecoveryCounters,
    /// Every mid-run admission change, in event order. Empty when nothing
    /// perturbed the admitted mix.
    #[serde(default)]
    pub transitions: Vec<AdmissionTransition>,
    /// Fraction of the serving window the coordinator was up:
    /// `1 - outage_us / serving_span`. 1.0 when no crash occurred (and
    /// for zero-length runs).
    #[serde(default)]
    pub availability: f64,
    /// End-to-end latency of frames processed *after* the first recovery,
    /// pooled over tenants — the post-recovery tail. Empty-summary when
    /// no crash occurred.
    #[serde(default)]
    pub post_recovery_e2e_ms: Summary,
}

/// How many tenants landed on each admission rung.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionCounts {
    /// Served as requested.
    pub admitted: usize,
    /// Served with redundancy shed.
    pub shed_redundancy: usize,
    /// Served with frame thinning.
    pub degraded: usize,
    /// Not served.
    pub rejected: usize,
    /// Ended the run inside a quarantine window.
    #[serde(default)]
    pub quarantined: usize,
}

impl DecisionCounts {
    fn count(&mut self, decision: AdmissionDecision) {
        match decision {
            AdmissionDecision::Admitted => self.admitted += 1,
            AdmissionDecision::ShedRedundancy => self.shed_redundancy += 1,
            AdmissionDecision::Degraded { .. } => self.degraded += 1,
            AdmissionDecision::Rejected => self.rejected += 1,
            AdmissionDecision::Quarantined => self.quarantined += 1,
        }
    }
}

/// The deterministic call sequence that produced a tenant pipeline: how
/// admission configured it and which serving frames it processed. A
/// [`TenantPipeline`] is a pure function of (scenario, config, pilot /
/// shed / step / skip sequence), so this recipe — not raw pipeline
/// state — is what a snapshot stores, and recovery *replays* it to
/// rebuild bitwise-identical pipeline state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PipelineRecipe {
    /// Whether admission shed redundancy after the first pilot.
    shed: bool,
    /// Serving-frame index the pipeline's capture clock is anchored at
    /// (0 for tenants built at admission; the re-admission frame for a
    /// pipeline rebuilt after quarantine).
    base: u64,
    /// Serving-frame indices processed by the core, in order.
    processed: Vec<u64>,
}

/// One tenant's checkpointed state inside a [`ServeSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TenantSnapshot {
    decision: AdmissionDecision,
    load_cores: f64,
    base_load_cores: f64,
    keep_every: u64,
    /// `None` for a quarantined tenant (its pipeline is gone).
    recipe: Option<PipelineRecipe>,
    lanes: Vec<IngestLane>,
    next_capture: u64,
    pending_since_us: u64,
    max_lane_depth: usize,
    policy_skipped: u64,
    replayed: u64,
    quarantined_until_us: Option<u64>,
    ever_served: bool,
    finished_noted: bool,
    e2e_ms: Vec<f64>,
    service_ms: Vec<f64>,
}

/// A serializable checkpoint of the whole serve loop: clock, accounting,
/// chaos-stream position, and per-tenant replay recipes. Produced by
/// [`ServeLoop::snapshot`] (and automatically on the
/// [`ServeConfig::snapshot_every_horizons`] cadence); consumed by
/// [`ServeLoop::recover`]. Restoring a snapshot and running to completion
/// yields bitwise the same report as the run that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSnapshot {
    taken_at_us: u64,
    busy_until_us: Option<u64>,
    core_busy_us: u64,
    admitted_load_cores: f64,
    capacity_factor: f64,
    service_inflation: f64,
    degrade_idx: usize,
    chaos_draws: u64,
    next_snapshot_us: Option<u64>,
    recovery: RecoveryCounters,
    transitions: Vec<AdmissionTransition>,
    post_recovery_e2e: Vec<f64>,
    tenants: Vec<TenantSnapshot>,
}

impl ServeSnapshot {
    /// Virtual time the snapshot was taken, µs.
    #[must_use]
    pub fn taken_at_us(&self) -> u64 {
        self.taken_at_us
    }
}

/// One tenant's live state inside the event loop.
struct Tenant {
    /// The tenant's deployment parameters (kept for pipeline rebuilds).
    city: CityConfig,
    pipe_config: PipelineConfig,
    /// `None` while quarantined (the panicked pipeline is torn down).
    pipeline: Option<TenantPipeline>,
    /// Replay recipe of the live pipeline (`None` while quarantined).
    recipe: Option<PipelineRecipe>,
    lanes: Vec<IngestLane>,
    decision: AdmissionDecision,
    /// Pilot-measured load at the served configuration, cores.
    load_cores: f64,
    /// Pilot-measured load before frame thinning (the ladder's rung-2
    /// input; re-evaluation re-fits from this).
    base_load_cores: f64,
    /// Process one captured frame in this many (1 = all).
    keep_every: u64,
    /// Pipeline capture index where the serving phase started (pilot
    /// frames live below it).
    serve_start: usize,
    /// Next serving-phase frame index to capture (0-based).
    next_capture: u64,
    /// Capture timestamp of the waiting frame, µs (valid while the lanes
    /// are non-empty).
    pending_since_us: u64,
    /// Virtual-time offset of this tenant's capture clock, µs.
    phase_us: u64,
    max_lane_depth: usize,
    policy_skipped: u64,
    /// Frames lost to crash-recovery gaps.
    replayed: u64,
    /// Quarantine expiry, when quarantined.
    quarantined_until_us: Option<u64>,
    /// Whether the tenant was ever served (drives captured-frame
    /// reporting; a never-admitted tenant reports zero captures).
    ever_served: bool,
    /// Whether the capture-window-finished transition already fired.
    finished_noted: bool,
    e2e_ms: Vec<f64>,
    service_ms: Vec<f64>,
}

impl Tenant {
    fn pending(&self) -> Option<u64> {
        self.lanes.first().and_then(IngestLane::peek)
    }

    /// Brings the pipeline's capture clock up to serving frame `frame`
    /// (exclusive), skipping everything in between (lane drops, policy
    /// thinning, and recovery gaps alike). No-op while quarantined.
    fn reconcile_skips(&mut self, frame: u64) {
        let Some(pipeline) = self.pipeline.as_mut() else {
            return;
        };
        let base = self.recipe.as_ref().map_or(0, |r| r.base);
        let target = frame.saturating_sub(base) as usize;
        while (pipeline.next_frame() - self.serve_start) < target {
            pipeline.skip();
        }
    }

    /// Captures this tenant's checkpointable state.
    fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            decision: self.decision,
            load_cores: self.load_cores,
            base_load_cores: self.base_load_cores,
            keep_every: self.keep_every,
            recipe: self.recipe.clone(),
            lanes: self.lanes.clone(),
            next_capture: self.next_capture,
            pending_since_us: self.pending_since_us,
            max_lane_depth: self.max_lane_depth,
            policy_skipped: self.policy_skipped,
            replayed: self.replayed,
            quarantined_until_us: self.quarantined_until_us,
            ever_served: self.ever_served,
            finished_noted: self.finished_noted,
            e2e_ms: self.e2e_ms.clone(),
            service_ms: self.service_ms.clone(),
        }
    }

    /// Restores checkpointed state, rebuilding the pipeline by replaying
    /// its recipe (pilot, optional shed, then the exact skip/step
    /// sequence). Returns the number of frames replayed.
    fn restore(&mut self, ts: &TenantSnapshot, fps: f64, traced: bool) -> usize {
        self.decision = ts.decision;
        self.load_cores = ts.load_cores;
        self.base_load_cores = ts.base_load_cores;
        self.keep_every = ts.keep_every;
        self.recipe = ts.recipe.clone();
        self.lanes = ts.lanes.clone();
        self.next_capture = ts.next_capture;
        self.pending_since_us = ts.pending_since_us;
        self.max_lane_depth = ts.max_lane_depth;
        self.policy_skipped = ts.policy_skipped;
        self.replayed = ts.replayed;
        self.quarantined_until_us = ts.quarantined_until_us;
        self.ever_served = ts.ever_served;
        self.finished_noted = ts.finished_noted;
        self.e2e_ms = ts.e2e_ms.clone();
        self.service_ms = ts.service_ms.clone();
        self.pipeline = None;
        let Some(recipe) = self.recipe.clone() else {
            return 0;
        };
        let mut scenario = Scenario::city(&self.city);
        scenario.fps = fps;
        let mut pipeline = TenantPipeline::new(&scenario, &self.pipe_config);
        if traced {
            pipeline.enable_tracing();
        }
        // Re-run the pilot exactly as admission did, so the rebuilt
        // pipeline's RNG and world state line up with the original's.
        let _ = pilot_load(&mut pipeline, self.pipe_config.horizon, fps);
        if recipe.shed {
            pipeline.set_redundancy(1);
            let _ = pilot_load(&mut pipeline, self.pipe_config.horizon, fps);
        }
        self.serve_start = pipeline.next_frame();
        let mut replay_ms = 0.0;
        for &frame in &recipe.processed {
            let target = frame.saturating_sub(recipe.base) as usize;
            while (pipeline.next_frame() - self.serve_start) < target {
                pipeline.skip();
            }
            let cost = pipeline.step();
            if cost.is_finite() {
                replay_ms += cost;
            }
        }
        pipeline.note_recovery(replay_ms, recipe.processed.len());
        self.pipeline = Some(pipeline);
        recipe.processed.len()
    }
}

/// Measures one tenant's steady-state core load over a pilot horizon:
/// steps `horizon` frames back to back and averages the modeled service
/// cost. Returns (load in cores, mean service ms).
fn pilot_load(pipeline: &mut TenantPipeline, horizon: usize, fps: f64) -> (f64, f64) {
    let mut total_ms = 0.0;
    for _ in 0..horizon {
        let cost = pipeline.step();
        if cost.is_finite() {
            total_ms += cost;
        }
    }
    let mean_ms = total_ms / horizon.max(1) as f64;
    (mean_ms * fps / 1e3, mean_ms)
}

/// What one pass down the admission ladder produced.
struct LadderOutcome {
    decision: AdmissionDecision,
    keep_every: u64,
    /// Load at the served configuration (post-thinning), cores.
    load_cores: f64,
    /// Load before thinning (post-shedding), cores.
    base_load_cores: f64,
    shed: bool,
}

/// Walks one tenant down the admission ladder against `budget` spare
/// cores: admit, shed redundancy, thin frames, reject. `inflation`
/// scales the pilot load to the pool's current straggler factor (1.0
/// when healthy, which leaves the arithmetic bitwise identical to an
/// inflation-free build).
///
/// Takes the tenant's unconditional first pilot precomputed
/// (`first_load`): that pilot is budget-independent, so admission runs it
/// for many tenants in parallel and walks the (budget-accumulating)
/// ladder serially afterwards — bitwise the same arithmetic in the same
/// order as a fully serial admission. Any shed-triggered re-pilot is
/// budget-dependent and happens here, inside the serial walk.
#[allow(clippy::too_many_arguments)]
fn run_ladder_from_pilot(
    pipeline: &mut TenantPipeline,
    first_load: f64,
    horizon: usize,
    fps: f64,
    budget: f64,
    requested_redundancy: usize,
    max_keep_every: u64,
    inflation: f64,
) -> LadderOutcome {
    let mut load = first_load;
    let mut decision = AdmissionDecision::Admitted;
    let mut keep_every = 1u64;
    let mut shed = false;
    if load * inflation > budget && requested_redundancy > 1 && pipeline.redundancy() > 1 {
        // Rung 1: shed redundancy — extra assignment copies cost
        // compute without adding coverage of new objects.
        pipeline.set_redundancy(1);
        let repiloted = pilot_load(pipeline, horizon, fps);
        load = repiloted.0;
        decision = AdmissionDecision::ShedRedundancy;
        shed = true;
    }
    let base_load_cores = load;
    if load * inflation > budget {
        // Rung 2: thin frames — process one captured frame in d.
        let fits = (2..=max_keep_every).find(|&d| load * inflation / d as f64 <= budget);
        match fits {
            Some(d) => {
                decision = AdmissionDecision::Degraded { keep_every: d };
                keep_every = d;
                load /= d as f64;
            }
            None => decision = AdmissionDecision::Rejected,
        }
    }
    LadderOutcome {
        decision,
        keep_every,
        load_cores: load,
        base_load_cores,
        shed,
    }
}

/// Installs a process-wide panic hook that suppresses the default
/// "thread panicked" banner for [`PoisonPanic`] payloads only — those are
/// injected, caught, and accounted by the serve loop, so the banner would
/// be noise. Every other panic still reaches the previous hook.
fn install_poison_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<PoisonPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Runs the multi-tenant serving simulation. Deterministic for a fixed
/// config at any [`ServeConfig::threads`] value.
///
/// # Panics
///
/// Panics on nonsensical configuration — every condition
/// [`ServeConfig::validate`] rejects. Build a [`ServeLoop`] directly to
/// get the typed error instead.
pub fn run_serve(config: &ServeConfig) -> ServeReport {
    ServeLoop::new_inner(config, false)
        .unwrap_or_else(|e| panic!("invalid serve configuration: {e}"))
        .run()
}

/// Like [`run_serve`], but with structured tracing enabled on every
/// tenant pipeline. Returns one [`Trace`] per tenant (rejected tenants
/// trace their pilot horizon only; a tenant quarantined at the end of the
/// run yields an empty trace, its history having died with its
/// pipeline), in tenant order, so the caller can export each with its
/// tenant label (see [`Trace::prometheus_text_labeled`]).
///
/// # Panics
///
/// Same conditions as [`run_serve`].
pub fn run_serve_traced(config: &ServeConfig) -> (ServeReport, Vec<Trace>) {
    let served = ServeLoop::new_inner(config, true)
        .unwrap_or_else(|e| panic!("invalid serve configuration: {e}"));
    let (report, traces) = served.finish();
    (report, traces.expect("tracing was enabled"))
}

/// The multi-tenant serving event loop, steppable and checkpointable.
///
/// [`run_serve`] wraps the whole lifecycle; drive a `ServeLoop` directly
/// to pause mid-run ([`ServeLoop::run_until`]), checkpoint
/// ([`ServeLoop::snapshot`]), or resume a crashed coordinator from a
/// checkpoint ([`ServeLoop::recover`]). All time is virtual microseconds;
/// nothing here reads a wall clock, so every trajectory is a
/// deterministic function of the configuration.
pub struct ServeLoop {
    config: ServeConfig,
    traced: bool,
    /// Resolved pool lanes for tenant-parallel phases (admission pilots,
    /// restore, readmission rebuilds). Never snapshotted: recovery
    /// re-derives it from the config, so a checkpoint taken at one thread
    /// count restores identically at any other.
    threads: usize,
    interval_us: u64,
    frames_per_tenant: u64,
    /// Checkpoint period, µs (0 = snapshotting disabled).
    snapshot_period_us: u64,
    tenants: Vec<Tenant>,
    now_us: u64,
    busy_until_us: Option<u64>,
    core_busy_us: u64,
    admitted_load: f64,
    /// Pool health: provisioned capacity is scaled by this factor.
    capacity_factor: f64,
    /// Pool health: every modeled service time is scaled by this factor.
    service_inflation: f64,
    /// Serve-level chaos stream (dedicated stream, disjoint from the
    /// world, camera, and pipeline-fault streams).
    chaos_rng: ChaCha8Rng,
    /// Draws taken from `chaos_rng` so far (snapshots store this so
    /// recovery can re-wind the stream to the same position).
    chaos_draws: u64,
    /// Next unfired entry in `config.chaos.crash_at_us`.
    crash_idx: usize,
    /// Next unapplied entry in `config.chaos.degrades`.
    degrade_idx: usize,
    /// Next checkpoint instant, when snapshotting is enabled.
    next_snapshot_us: Option<u64>,
    /// The latest checkpoint (what a crash restores).
    last_snapshot: Option<ServeSnapshot>,
    recovery: RecoveryCounters,
    transitions: Vec<AdmissionTransition>,
    /// Crash instant of an in-progress recovery: set when a crash fires,
    /// cleared (into `recovery.recovery_us`) at the first post-recovery
    /// dispatch.
    recovering_since_us: Option<u64>,
    post_recovery_e2e: Vec<f64>,
}

impl ServeLoop {
    /// Builds the loop: validates the configuration, constructs and
    /// pilots every tenant, places each on the admission ladder, and —
    /// when snapshotting is enabled — takes the initial (time-zero)
    /// checkpoint.
    pub fn new(config: &ServeConfig) -> Result<ServeLoop, ServeConfigError> {
        ServeLoop::new_inner(config, false)
    }

    fn new_inner(config: &ServeConfig, traced: bool) -> Result<ServeLoop, ServeConfigError> {
        config.validate()?;
        let interval_us = (1e6 / config.fps).round() as u64;
        let frames_per_tenant = (config.duration_s * config.fps).round() as u64;

        // ---- Admission: build and pilot every tenant across the pool
        // (deployment construction and the unconditional first pilot are
        // budget-independent), then walk each down the ladder serially in
        // tenant order — the budget accumulates, and any shed-triggered
        // re-pilot happens inside that serial walk. Same arithmetic in the
        // same order as a fully serial admission, at any thread count.
        let threads = mvs_exec::resolve_threads(config.threads);
        let specs: Vec<(CityConfig, PipelineConfig)> = (0..config.tenants)
            .map(|t| {
                let city = CityConfig {
                    cameras: config.cameras_per_tenant,
                    seed: config.seed + t as u64,
                    intensity: config.intensity,
                };
                let pipe_config = PipelineConfig {
                    train_s: config.train_s,
                    seed: config.seed + t as u64,
                    threads: config.threads,
                    redundancy: config.redundancy,
                    measured_overheads: false,
                    faults: config.faults,
                    shard_solver: config.shard_solver,
                    pipelined: config.pipelined,
                    ..PipelineConfig::paper_default(Algorithm::Balb)
                };
                (city, pipe_config)
            })
            .collect();
        let horizon = specs.last().map_or(1, |(_, pc)| pc.horizon);
        let piloted: Vec<(TenantPipeline, f64)> =
            mvs_exec::pool().par_map(&specs, threads, |(city, pipe_config)| {
                let mut scenario = Scenario::city(city);
                scenario.fps = config.fps;
                let mut pipeline = TenantPipeline::new(&scenario, pipe_config);
                if traced {
                    pipeline.enable_tracing();
                }
                let (first_load, _) = pilot_load(&mut pipeline, pipe_config.horizon, config.fps);
                (pipeline, first_load)
            });

        let mut tenants: Vec<Tenant> = Vec::with_capacity(config.tenants);
        let mut admitted_load = 0.0f64;
        for (t, ((city, pipe_config), (mut pipeline, first_load))) in
            specs.into_iter().zip(piloted).enumerate()
        {
            let budget = config.capacity_cores - admitted_load;
            let outcome = run_ladder_from_pilot(
                &mut pipeline,
                first_load,
                pipe_config.horizon,
                config.fps,
                budget,
                config.redundancy,
                config.max_keep_every,
                1.0,
            );
            if outcome.decision != AdmissionDecision::Rejected {
                admitted_load += outcome.load_cores;
            }

            let serve_start = pipeline.next_frame();
            tenants.push(Tenant {
                city,
                pipe_config,
                pipeline: Some(pipeline),
                recipe: Some(PipelineRecipe {
                    shed: outcome.shed,
                    base: 0,
                    processed: Vec::new(),
                }),
                lanes: vec![IngestLane::new(); config.cameras_per_tenant],
                decision: outcome.decision,
                load_cores: outcome.load_cores,
                base_load_cores: outcome.base_load_cores,
                keep_every: outcome.keep_every,
                serve_start,
                next_capture: 0,
                pending_since_us: 0,
                // Stagger tenants across the capture interval so arrivals
                // do not all land on the same instant.
                phase_us: interval_us * t as u64 / config.tenants as u64,
                max_lane_depth: 0,
                policy_skipped: 0,
                replayed: 0,
                quarantined_until_us: None,
                ever_served: outcome.decision != AdmissionDecision::Rejected,
                finished_noted: false,
                e2e_ms: Vec::new(),
                service_ms: Vec::new(),
            });
        }

        let snapshot_period_us = if config.snapshot_every_horizons > 0 {
            (horizon as u64 * interval_us * config.snapshot_every_horizons).max(1)
        } else {
            0
        };
        let mut chaos_rng = ChaCha8Rng::seed_from_u64(config.chaos.seed);
        // Dedicated serve-chaos stream: disjoint from the world stream
        // (0), every camera stream (i + 1), and the pipeline-fault
        // stream (u64::MAX).
        chaos_rng.set_stream(u64::MAX - 1);
        let mut served = ServeLoop {
            config: config.clone(),
            traced,
            threads,
            interval_us,
            frames_per_tenant,
            snapshot_period_us,
            tenants,
            now_us: 0,
            busy_until_us: None,
            core_busy_us: 0,
            admitted_load,
            capacity_factor: 1.0,
            service_inflation: 1.0,
            chaos_rng,
            chaos_draws: 0,
            crash_idx: 0,
            degrade_idx: 0,
            next_snapshot_us: None,
            last_snapshot: None,
            recovery: RecoveryCounters::default(),
            transitions: Vec::new(),
            recovering_since_us: None,
            post_recovery_e2e: Vec::new(),
        };
        if snapshot_period_us > 0 {
            // The time-zero baseline (not counted in `snapshots_taken`:
            // that counter tracks cadence checkpoints during serving).
            served.next_snapshot_us = Some(snapshot_period_us);
            served.last_snapshot = Some(served.snapshot());
        }
        Ok(served)
    }

    /// Rebuilds a crashed coordinator from a checkpoint: validates the
    /// configuration against the snapshot, reconstructs every tenant
    /// pipeline by replaying its recipe, and positions the clock at
    /// `resume_at_us` (clamped to no earlier than the snapshot itself).
    /// Frames whose capture instants fall between the snapshot and the
    /// resume point are counted as replay loss, exactly as an in-run
    /// crash would count them.
    ///
    /// This is pure state reconstruction — it does *not* increment
    /// [`RecoveryCounters::restarts`] (scheduled in-run crashes do);
    /// resuming from the snapshot a run just took yields bitwise the
    /// run's own continuation.
    ///
    /// # Errors
    ///
    /// Everything [`ServeConfig::validate`] rejects, plus
    /// [`ServeConfigError::SnapshotMismatch`] when the snapshot's tenant
    /// count differs from the configuration's.
    pub fn recover(
        config: &ServeConfig,
        snapshot: &ServeSnapshot,
        resume_at_us: u64,
    ) -> Result<ServeLoop, ServeConfigError> {
        config.validate()?;
        if snapshot.tenants.len() != config.tenants {
            return Err(ServeConfigError::SnapshotMismatch {
                expected: config.tenants,
                got: snapshot.tenants.len(),
            });
        }
        let interval_us = (1e6 / config.fps).round() as u64;
        let frames_per_tenant = (config.duration_s * config.fps).round() as u64;
        // Skeleton tenants: deployment parameters only. `restore`
        // overwrites all live state and rebuilds the pipelines, so no
        // pilot runs here.
        let mut tenants: Vec<Tenant> = Vec::with_capacity(config.tenants);
        let mut horizon = 1usize;
        for t in 0..config.tenants {
            let city = CityConfig {
                cameras: config.cameras_per_tenant,
                seed: config.seed + t as u64,
                intensity: config.intensity,
            };
            let pipe_config = PipelineConfig {
                train_s: config.train_s,
                seed: config.seed + t as u64,
                threads: config.threads,
                redundancy: config.redundancy,
                measured_overheads: false,
                faults: config.faults,
                shard_solver: config.shard_solver,
                pipelined: config.pipelined,
                ..PipelineConfig::paper_default(Algorithm::Balb)
            };
            horizon = pipe_config.horizon;
            tenants.push(Tenant {
                city,
                pipe_config,
                pipeline: None,
                recipe: None,
                lanes: Vec::new(),
                decision: AdmissionDecision::Rejected,
                load_cores: 0.0,
                base_load_cores: 0.0,
                keep_every: 1,
                serve_start: 0,
                next_capture: 0,
                pending_since_us: 0,
                phase_us: interval_us * t as u64 / config.tenants as u64,
                max_lane_depth: 0,
                policy_skipped: 0,
                replayed: 0,
                quarantined_until_us: None,
                ever_served: false,
                finished_noted: false,
                e2e_ms: Vec::new(),
                service_ms: Vec::new(),
            });
        }
        let snapshot_period_us = if config.snapshot_every_horizons > 0 {
            (horizon as u64 * interval_us * config.snapshot_every_horizons).max(1)
        } else {
            0
        };
        let chaos_rng = ChaCha8Rng::seed_from_u64(config.chaos.seed);
        let mut served = ServeLoop {
            config: config.clone(),
            traced: false,
            threads: mvs_exec::resolve_threads(config.threads),
            interval_us,
            frames_per_tenant,
            snapshot_period_us,
            tenants,
            now_us: 0,
            busy_until_us: None,
            core_busy_us: 0,
            admitted_load: 0.0,
            capacity_factor: 1.0,
            service_inflation: 1.0,
            chaos_rng,
            chaos_draws: 0,
            crash_idx: 0,
            degrade_idx: 0,
            next_snapshot_us: None,
            last_snapshot: None,
            recovery: RecoveryCounters::default(),
            transitions: Vec::new(),
            recovering_since_us: None,
            post_recovery_e2e: Vec::new(),
        };
        let resume = resume_at_us.max(snapshot.taken_at_us);
        served.restore(snapshot, resume);
        served.last_snapshot = Some(snapshot.clone());
        Ok(served)
    }

    /// The loop's virtual clock, µs since the start of serving.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Checkpoints the loop's full live state. Cheap relative to a run:
    /// pipelines are captured as replay recipes, not world state.
    #[must_use]
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            taken_at_us: self.now_us,
            busy_until_us: self.busy_until_us,
            core_busy_us: self.core_busy_us,
            admitted_load_cores: self.admitted_load,
            capacity_factor: self.capacity_factor,
            service_inflation: self.service_inflation,
            degrade_idx: self.degrade_idx,
            chaos_draws: self.chaos_draws,
            next_snapshot_us: self.next_snapshot_us,
            recovery: self.recovery,
            transitions: self.transitions.clone(),
            post_recovery_e2e: self.post_recovery_e2e.clone(),
            tenants: self.tenants.iter().map(Tenant::snapshot).collect(),
        }
    }

    /// Advances the loop until the virtual clock reaches `until_us` (or
    /// the run drains early). The loop stops exactly at `until_us` unless
    /// a crash outage straddles it, in which case it stops at the
    /// post-outage resume point.
    pub fn run_until(&mut self, until_us: u64) {
        self.advance(Some(until_us));
    }

    /// Runs to completion and assembles the report.
    #[must_use]
    pub fn run(self) -> ServeReport {
        self.finish().0
    }

    fn finish(mut self) -> (ServeReport, Option<Vec<Trace>>) {
        self.advance(None);
        self.into_report()
    }

    /// The event loop: each iteration handles everything due at `now`
    /// (chaos first, then bookkeeping, arrivals, at most one dispatch)
    /// and then advances the clock to the next event. Stop points only
    /// ever *pause* the loop at instants where nothing would have been
    /// dispatched anyway — arrivals land exactly at capture instants and
    /// the core drains before the clock moves — so extra stops (snapshot
    /// cadence, `until`) never change results.
    fn advance(&mut self, until: Option<u64>) {
        loop {
            if until.is_some_and(|u| self.now_us >= u) {
                return;
            }
            // Coordinator crash due: lose everything since the last
            // checkpoint and restore.
            if let Some(&crash_at) = self.config.chaos.crash_at_us.get(self.crash_idx) {
                if crash_at <= self.now_us {
                    self.crash(crash_at);
                    continue;
                }
            }
            // Pool degradation due: apply the latest scheduled factors
            // wholesale, then re-fit the admitted mix to the new pool.
            let mut degraded = false;
            while self.degrade_idx < self.config.chaos.degrades.len()
                && self.config.chaos.degrades[self.degrade_idx].at_us <= self.now_us
            {
                let d = self.config.chaos.degrades[self.degrade_idx];
                self.capacity_factor = d.capacity_factor;
                self.service_inflation = d.service_inflation;
                self.degrade_idx += 1;
                degraded = true;
            }
            if degraded {
                self.reevaluate(TransitionReason::PoolDegrade);
            }
            self.readmit_due();
            self.take_due_snapshot();
            if self.deliver_arrivals() {
                self.reevaluate(TransitionReason::TenantFinished);
            }
            if self.try_dispatch() {
                continue;
            }
            if !self.advance_clock(until) {
                return; // drained: no arrivals, core idle
            }
        }
    }

    /// Delivers every arrival due by `now`, in tenant order. Returns
    /// whether a tenant just captured its last frame while another
    /// non-rejected tenant is still capturing (the trigger for the
    /// finished-tenant admission re-evaluation).
    fn deliver_arrivals(&mut self) -> bool {
        let mut newly_finished = false;
        for tenant in self.tenants.iter_mut() {
            if tenant.decision == AdmissionDecision::Rejected {
                continue;
            }
            while tenant.next_capture < self.frames_per_tenant {
                let frame = tenant.next_capture;
                let capture_us = tenant.phase_us + frame * self.interval_us;
                if capture_us > self.now_us {
                    break;
                }
                tenant.next_capture += 1;
                if tenant.next_capture == self.frames_per_tenant && !tenant.finished_noted {
                    tenant.finished_noted = true;
                    newly_finished = true;
                }
                if tenant.decision == AdmissionDecision::Quarantined {
                    tenant.policy_skipped += 1;
                    continue;
                }
                if !frame.is_multiple_of(tenant.keep_every) {
                    tenant.policy_skipped += 1;
                    continue;
                }
                for lane in tenant.lanes.iter_mut() {
                    lane.offer(frame);
                }
                tenant.pending_since_us = capture_us;
                let depth = tenant
                    .lanes
                    .iter()
                    .map(IngestLane::depth)
                    .max()
                    .unwrap_or(0);
                tenant.max_lane_depth = tenant.max_lane_depth.max(depth);
            }
        }
        newly_finished
            && self.tenants.iter().any(|t| {
                t.decision != AdmissionDecision::Rejected && t.next_capture < self.frames_per_tenant
            })
    }

    /// Serves at most one waiting frame (FIFO over waiting frames: the
    /// tenant whose pending frame has waited longest, ties to the lowest
    /// tenant id). Returns whether anything happened.
    fn try_dispatch(&mut self) -> bool {
        if self.busy_until_us.is_some_and(|b| b > self.now_us) {
            return false;
        }
        let next = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| t.pending().is_some())
            .min_by_key(|(id, t)| (t.pending_since_us, *id))
            .map(|(id, _)| id);
        let Some(id) = next else {
            return false;
        };
        // Chaos: decide poison *before* touching the frame, so the
        // poisoned frame stays pending and is accounted as a lane drop
        // when the quarantine clears the lanes.
        if self.config.chaos.poison_per_frame > 0.0 {
            self.chaos_draws += 1;
            if self.chaos_rng.gen::<f64>() < self.config.chaos.poison_per_frame {
                self.poison(id);
                return true;
            }
        }
        let tenant = &mut self.tenants[id];
        let frame = tenant.lanes[0].take().expect("pending frame");
        for lane in tenant.lanes.iter_mut().skip(1) {
            let same = lane.take();
            debug_assert_eq!(same, Some(frame), "lanes advance in lockstep");
        }
        tenant.reconcile_skips(frame);
        let pipeline = tenant
            .pipeline
            .as_mut()
            .expect("a tenant with pending frames has a live pipeline");
        let raw_ms = pipeline.step();
        if let Some(recipe) = tenant.recipe.as_mut() {
            recipe.processed.push(frame);
        }
        // `* 1.0` and `/ (x * 1.0)` are bitwise identities, so a healthy
        // pool leaves these exactly as an inflation-free build computes
        // them.
        let service_ms = raw_ms * self.service_inflation;
        // The provisioned pool serves `capacity_cores * capacity_factor`
        // modeled milliseconds per wall millisecond.
        let service_us = if service_ms.is_finite() && service_ms >= 0.0 {
            (service_ms * 1e3 / (self.config.capacity_cores * self.capacity_factor)).round() as u64
        } else {
            // A poisoned overhead model must not wedge the loop; the
            // pipeline already counted the sample as rejected.
            0
        };
        let done_us = self.now_us + service_us;
        self.busy_until_us = Some(done_us);
        self.core_busy_us += service_us;
        tenant.service_ms.push(service_ms);
        let e2e = (done_us - tenant.pending_since_us) as f64 / 1e3;
        tenant.e2e_ms.push(e2e);
        if let Some(crashed_at) = self.recovering_since_us.take() {
            // First dispatch after a crash: recovery is complete.
            self.recovery.recovery_us += self.now_us.saturating_sub(crashed_at);
        }
        if self.recovery.restarts > 0 {
            self.post_recovery_e2e.push(e2e);
        }
        true
    }

    /// Poisons tenant `id`'s next pipeline step and drives it: the step
    /// panics, the panic is caught and verified to be the injected
    /// [`PoisonPanic`], and the tenant is quarantined. Any *other* panic
    /// payload is resumed — chaos isolation must not mask real bugs.
    fn poison(&mut self, id: usize) {
        install_poison_hook();
        let tenant = &mut self.tenants[id];
        let pipeline = tenant
            .pipeline
            .as_mut()
            .expect("a tenant with pending frames has a live pipeline");
        pipeline.poison_next_step();
        match panic::catch_unwind(AssertUnwindSafe(|| pipeline.step())) {
            Ok(_) => unreachable!("an armed pipeline step must panic"),
            Err(payload) => {
                if payload.downcast_ref::<PoisonPanic>().is_none() {
                    panic::resume_unwind(payload);
                }
            }
        }
        self.recovery.poisoned_steps += 1;
        self.quarantine(id);
    }

    /// Isolates tenant `id` after a pipeline panic: tears the pipeline
    /// down, drops its waiting frame (counted as a lane drop), marks the
    /// tenant [`AdmissionDecision::Quarantined`] until the chaos model's
    /// quarantine window expires, and re-fits the remaining mix to the
    /// freed capacity.
    fn quarantine(&mut self, id: usize) {
        let until = self.now_us + self.config.chaos.quarantine_us;
        let tenant = &mut self.tenants[id];
        let from = tenant.decision;
        tenant.pipeline = None;
        tenant.recipe = None;
        for lane in tenant.lanes.iter_mut() {
            lane.clear_pending();
        }
        tenant.decision = AdmissionDecision::Quarantined;
        tenant.quarantined_until_us = Some(until);
        tenant.load_cores = 0.0;
        self.recovery.quarantines += 1;
        self.transitions.push(AdmissionTransition {
            at_us: self.now_us,
            tenant: id,
            from,
            to: AdmissionDecision::Quarantined,
            reason: TransitionReason::Quarantine,
        });
        self.reevaluate(TransitionReason::Quarantine);
    }

    /// Re-admits every tenant whose quarantine window has expired. The
    /// fresh-deployment rebuilds and their budget-independent first pilots
    /// fan out across the pool; the ladder walks stay serial in id order
    /// (each readmission's load shrinks the next one's budget), so the
    /// outcome is bitwise the per-id serial sequence.
    fn readmit_due(&mut self) {
        let due: Vec<usize> = (0..self.tenants.len())
            .filter(|&id| {
                self.tenants[id]
                    .quarantined_until_us
                    .is_some_and(|q| q <= self.now_us)
            })
            .collect();
        if due.is_empty() {
            return;
        }
        let fps = self.config.fps;
        let traced = self.traced;
        let tenants = &self.tenants;
        let rebuilt: Vec<(TenantPipeline, f64)> =
            mvs_exec::pool().par_map(&due, self.threads, |&id| {
                let tenant = &tenants[id];
                let mut scenario = Scenario::city(&tenant.city);
                scenario.fps = fps;
                let mut pipeline = TenantPipeline::new(&scenario, &tenant.pipe_config);
                if traced {
                    pipeline.enable_tracing();
                }
                let (first_load, _) = pilot_load(&mut pipeline, tenant.pipe_config.horizon, fps);
                (pipeline, first_load)
            });
        for (&id, (pipeline, first_load)) in due.iter().zip(rebuilt) {
            self.readmit(id, pipeline, first_load);
        }
    }

    /// Re-admits tenant `id` after quarantine, given its freshly rebuilt
    /// pipeline (the tenant redeploys — its world restarts from scratch)
    /// with the first pilot already taken: walks it down the admission
    /// ladder against the current spare capacity.
    fn readmit(&mut self, id: usize, mut pipeline: TenantPipeline, first_load: f64) {
        self.recovery.readmissions += 1;
        let budget = self.config.capacity_cores * self.capacity_factor - self.admitted_load;
        let inflation = self.service_inflation;
        let tenant = &mut self.tenants[id];
        tenant.quarantined_until_us = None;
        let outcome = run_ladder_from_pilot(
            &mut pipeline,
            first_load,
            tenant.pipe_config.horizon,
            self.config.fps,
            budget,
            self.config.redundancy,
            self.config.max_keep_every,
            inflation,
        );
        tenant.serve_start = pipeline.next_frame();
        tenant.recipe = Some(PipelineRecipe {
            shed: outcome.shed,
            base: tenant.next_capture,
            processed: Vec::new(),
        });
        tenant.pipeline = Some(pipeline);
        tenant.decision = outcome.decision;
        tenant.keep_every = outcome.keep_every;
        tenant.base_load_cores = outcome.base_load_cores;
        tenant.load_cores = outcome.load_cores;
        if outcome.decision != AdmissionDecision::Rejected {
            tenant.ever_served = true;
            self.admitted_load += outcome.load_cores;
        }
        self.transitions.push(AdmissionTransition {
            at_us: self.now_us,
            tenant: id,
            from: AdmissionDecision::Quarantined,
            to: outcome.decision,
            reason: TransitionReason::Readmission,
        });
        self.reevaluate(TransitionReason::Readmission);
    }

    /// Takes the cadence checkpoint when one is due.
    fn take_due_snapshot(&mut self) {
        let Some(next) = self.next_snapshot_us else {
            return;
        };
        if next > self.now_us {
            return;
        }
        let mut n = next;
        while n <= self.now_us {
            n += self.snapshot_period_us;
        }
        self.next_snapshot_us = Some(n);
        self.recovery.snapshots_taken += 1;
        self.last_snapshot = Some(self.snapshot());
    }

    /// A scheduled coordinator crash at `at_us`: everything since the
    /// last checkpoint is lost; after the restart delay the loop resumes
    /// from that checkpoint, the capture gap counted as replay loss. The
    /// moment it resumes it re-checkpoints, so a back-to-back crash never
    /// replays the same gap twice and the recovery counters are durable.
    fn crash(&mut self, at_us: u64) {
        let snap = self
            .last_snapshot
            .clone()
            .expect("scheduled crashes require snapshotting (validated)");
        let resume = at_us + self.config.chaos.restart_delay_us;
        let staleness = resume.saturating_sub(snap.taken_at_us);
        self.restore(&snap, resume);
        self.recovery.restarts += 1;
        self.recovery.outage_us += resume - at_us;
        self.recovery.staleness_at_resume_us = self.recovery.staleness_at_resume_us.max(staleness);
        self.recovering_since_us = Some(at_us);
        if self.snapshot_period_us > 0 {
            self.recovery.snapshots_taken += 1;
            self.last_snapshot = Some(self.snapshot());
        }
    }

    /// Restores the loop to `snap`, positioned at `resume_at_us`: rewinds
    /// the chaos stream, rebuilds every tenant pipeline from its replay
    /// recipe, fast-forwards each tenant's capture clock over the
    /// snapshot→resume gap (counting those frames as replay loss), and
    /// re-fits the admitted mix. Scheduled chaos between the snapshot and
    /// the resume point re-fires naturally on the next loop iteration.
    fn restore(&mut self, snap: &ServeSnapshot, resume_at_us: u64) {
        self.now_us = resume_at_us;
        self.busy_until_us = snap.busy_until_us;
        self.core_busy_us = snap.core_busy_us;
        self.admitted_load = snap.admitted_load_cores;
        self.capacity_factor = snap.capacity_factor;
        self.service_inflation = snap.service_inflation;
        self.degrade_idx = snap.degrade_idx;
        self.recovery = snap.recovery;
        self.transitions = snap.transitions.clone();
        self.post_recovery_e2e = snap.post_recovery_e2e.clone();
        // Crashes strictly before the resume point are spent: the one
        // that triggered this restore, and any that the outage swallowed.
        // (Validation guarantees a positive restart delay, so the
        // triggering crash always satisfies `c < resume`.)
        self.crash_idx = self
            .config
            .chaos
            .crash_at_us
            .iter()
            .filter(|&&c| c < resume_at_us)
            .count();
        self.chaos_rng = ChaCha8Rng::seed_from_u64(self.config.chaos.seed);
        self.chaos_rng.set_stream(u64::MAX - 1);
        for _ in 0..snap.chaos_draws {
            let _: f64 = self.chaos_rng.gen();
        }
        self.chaos_draws = snap.chaos_draws;
        self.next_snapshot_us = snap.next_snapshot_us;
        if let Some(next) = self.next_snapshot_us.as_mut() {
            // Strict `<`: a cadence point exactly at the resume instant
            // still fires, matching an uninterrupted run.
            while *next < resume_at_us {
                *next += self.snapshot_period_us;
            }
        }
        // Tenant restores are independent (each replays its own private
        // recipe against its own RNG streams), so they fan out across the
        // pool; the shared-clock fast-forward below stays serial.
        let fps = self.config.fps;
        let traced = self.traced;
        let mut pairs: Vec<(&mut Tenant, &TenantSnapshot)> =
            self.tenants.iter_mut().zip(&snap.tenants).collect();
        mvs_exec::pool().par_for_each_mut(&mut pairs, self.threads, |(tenant, ts)| {
            tenant.restore(ts, fps, traced);
        });
        let mut replayed_total = 0u64;
        for tenant in self.tenants.iter_mut() {
            if tenant.decision == AdmissionDecision::Rejected {
                continue;
            }
            while tenant.next_capture < self.frames_per_tenant {
                let capture_us = tenant.phase_us + tenant.next_capture * self.interval_us;
                if capture_us >= resume_at_us {
                    break;
                }
                tenant.next_capture += 1;
                tenant.replayed += 1;
                replayed_total += 1;
            }
            if tenant.next_capture >= self.frames_per_tenant {
                tenant.finished_noted = true;
            }
        }
        self.recovery.replayed_frames += replayed_total;
        self.recovering_since_us = None;
        self.reevaluate(TransitionReason::Recovery);
    }

    /// Re-fits the admitted mix to the current pool. Walks tenants in id
    /// order giving each the capacity not *currently* held by the tenants
    /// after it (a suffix reserve), so un-thinning one tenant can only
    /// claim genuinely spare capacity, never a later tenant's share.
    /// Tenants that finished capturing contribute zero load (their share
    /// is the freed capacity); quarantined tenants are skipped; rejected
    /// tenants are re-admitted when they now fit (except on the
    /// finished-tenant trigger, where freed capacity only un-thins the
    /// mix — a finished window is no reason to start serving a tenant
    /// that was turned away at the start of it). When the pool *shrinks*
    /// under a live tenant, its rung is clamped at the deepest thinning
    /// instead of evicting it mid-run, so the mix may transiently exceed
    /// a degraded budget.
    fn reevaluate(&mut self, reason: TransitionReason) {
        let budget = self.config.capacity_cores * self.capacity_factor;
        let inflation = self.service_inflation;
        let allow_readmit = reason != TransitionReason::TenantFinished;
        let n = self.tenants.len();
        let active: Vec<f64> = self
            .tenants
            .iter()
            .map(|t| {
                if t.decision == AdmissionDecision::Rejected
                    || t.decision == AdmissionDecision::Quarantined
                    || t.next_capture >= self.frames_per_tenant
                {
                    0.0
                } else {
                    t.load_cores * inflation
                }
            })
            .collect();
        let mut reserved_after = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            reserved_after[i] = reserved_after[i + 1] + active[i];
        }
        let mut used_eff = 0.0f64; // inflated load of tenants settled so far
        let mut used_raw = 0.0f64; // un-inflated (reported) load of the same
        for id in 0..n {
            let finished = self.tenants[id].next_capture >= self.frames_per_tenant;
            let from = self.tenants[id].decision;
            if from == AdmissionDecision::Quarantined {
                continue;
            }
            let was_rejected = from == AdmissionDecision::Rejected;
            if was_rejected && (!allow_readmit || self.tenants[id].recipe.is_none() || finished) {
                continue;
            }
            if !was_rejected && finished {
                continue;
            }
            let headroom = budget - used_eff - reserved_after[id + 1];
            let base = self.tenants[id].base_load_cores;
            let shed = self.tenants[id].recipe.as_ref().is_some_and(|r| r.shed);
            let fit = (1..=self.config.max_keep_every)
                .find(|&d| base * inflation / d as f64 <= headroom + 1e-12);
            let (to, keep, load) = match fit {
                Some(d) => {
                    let decision = if d > 1 {
                        AdmissionDecision::Degraded { keep_every: d }
                    } else if shed {
                        AdmissionDecision::ShedRedundancy
                    } else {
                        AdmissionDecision::Admitted
                    };
                    (decision, d, base / d as f64)
                }
                None if was_rejected => continue, // still does not fit
                None => {
                    // Pool shrank under a live tenant: clamp, don't evict.
                    let d = self.config.max_keep_every;
                    let decision = if d > 1 {
                        AdmissionDecision::Degraded { keep_every: d }
                    } else {
                        from
                    };
                    (decision, d, base / d as f64)
                }
            };
            let tenant = &mut self.tenants[id];
            if was_rejected {
                // Re-admission: the frames it sat out were withheld by
                // policy; fast-forward its capture clock over them.
                while tenant.next_capture < self.frames_per_tenant
                    && tenant.phase_us + tenant.next_capture * self.interval_us < self.now_us
                {
                    tenant.next_capture += 1;
                    tenant.policy_skipped += 1;
                }
                if tenant.next_capture >= self.frames_per_tenant {
                    tenant.finished_noted = true;
                }
                tenant.ever_served = true;
            }
            tenant.decision = to;
            tenant.keep_every = keep;
            tenant.load_cores = load;
            used_eff += load * inflation;
            used_raw += load;
            if to != from {
                self.transitions.push(AdmissionTransition {
                    at_us: self.now_us,
                    tenant: id,
                    from,
                    to,
                    reason,
                });
            }
        }
        self.admitted_load = used_raw;
    }

    /// Advances the clock to the next event: the earliest pending arrival
    /// or the in-flight completion, pulled earlier by any chaos or
    /// bookkeeping stop point strictly ahead of `now`. Returns `false`
    /// when the run has drained (no arrivals left, core idle) — stop
    /// points alone never keep a drained run alive.
    fn advance_clock(&mut self, until: Option<u64>) -> bool {
        let next_arrival = self
            .tenants
            .iter()
            .filter(|t| t.decision != AdmissionDecision::Rejected)
            .filter(|t| t.next_capture < self.frames_per_tenant)
            .map(|t| t.phase_us + t.next_capture * self.interval_us)
            .min();
        let next_completion = self.busy_until_us.filter(|&b| b > self.now_us);
        let mut next = match (next_arrival, next_completion) {
            (Some(a), Some(c)) => a.min(c),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (None, None) => return false,
        };
        // Stop points can only pull the stop earlier — the loop body
        // re-derives what is due from the clock, so pausing at an extra
        // instant never creates or reorders dispatches.
        if let Some(&c) = self.config.chaos.crash_at_us.get(self.crash_idx) {
            if c > self.now_us {
                next = next.min(c);
            }
        }
        if let Some(d) = self.config.chaos.degrades.get(self.degrade_idx) {
            if d.at_us > self.now_us {
                next = next.min(d.at_us);
            }
        }
        if let Some(s) = self.next_snapshot_us {
            if s > self.now_us {
                next = next.min(s);
            }
        }
        if let Some(q) = self
            .tenants
            .iter()
            .filter_map(|t| t.quarantined_until_us)
            .min()
        {
            if q > self.now_us {
                next = next.min(q);
            }
        }
        if let Some(u) = until {
            if u > self.now_us {
                next = next.min(u);
            }
        }
        self.now_us = next;
        true
    }

    /// Assembles the final report (and per-tenant traces when tracing).
    ///
    /// Per-tenant finalization — trailing-skip reconciliation, pipeline
    /// teardown ([`TenantPipeline::finish`] walks every camera series),
    /// and latency summaries — is independent across tenants, so it fans
    /// out on the persistent pool; only the cross-tenant folds (decision
    /// counts, fleet totals, the pooled latency distribution) run
    /// serially afterwards, in tenant-id order, exactly as a
    /// single-thread pass would.
    #[allow(clippy::too_many_lines)]
    fn into_report(self) -> (ServeReport, Option<Vec<Trace>>) {
        let config = self.config;
        let traced = self.traced;
        let fps = config.fps;
        let mut tenants = self.tenants;
        let finals: Vec<(TenantReport, bool, Vec<f64>, Option<Trace>)> = mvs_exec::pool()
            .par_map_mut(&mut tenants, self.threads, |tenant| {
                let served = tenant.ever_served;
                let captured = if served { tenant.next_capture } else { 0 };
                // Account for trailing frames never consumed by the core.
                tenant.reconcile_skips(captured);
                let queue_dropped = tenant.lanes.first().map_or(0, IngestLane::dropped);
                let processed = tenant.lanes.first().map_or(0, IngestLane::delivered);
                let (recall, degradation, trace) = match tenant.pipeline.take() {
                    Some(pipeline) => {
                        let (result, trace) = pipeline.finish();
                        (result.recall, result.degradation, trace)
                    }
                    // Quarantined at the end of the run: the pipeline (and
                    // its recall/trace history) died with the panic.
                    None => (
                        0.0,
                        DegradationCounters::default(),
                        traced.then(|| TraceRecorder::new(fps).finish()),
                    ),
                };
                let e2e_ms = std::mem::take(&mut tenant.e2e_ms);
                let service_ms = std::mem::take(&mut tenant.service_ms);
                let report = TenantReport {
                    tenant: 0, // assigned in the ordered merge below
                    decision: tenant.decision,
                    pilot_load_cores: tenant.load_cores,
                    captured,
                    processed,
                    queue_dropped,
                    policy_skipped: tenant.policy_skipped,
                    replayed: tenant.replayed,
                    max_lane_depth: tenant.max_lane_depth,
                    e2e_ms: Summary::of_lenient(&e2e_ms),
                    service_ms: Summary::of_lenient(&service_ms),
                    recall,
                    degradation,
                };
                (report, served, e2e_ms, trace)
            });
        drop(tenants);
        let mut reports = Vec::with_capacity(config.tenants);
        let mut traces = traced.then(Vec::new);
        let mut pooled_e2e: Vec<f64> = Vec::new();
        let mut decisions = DecisionCounts::default();
        let mut captured_total = 0u64;
        let mut processed_total = 0u64;
        let mut dropped_total = 0u64;
        let mut skipped_total = 0u64;
        let mut replayed_total = 0u64;
        let serving_span_us = self.frames_per_tenant * self.interval_us;
        for (mut report, served, e2e_ms, trace) in finals {
            decisions.count(report.decision);
            if let (Some(ts), Some(tr)) = (traces.as_mut(), trace) {
                ts.push(tr);
            }
            if served {
                captured_total += report.captured;
                processed_total += report.processed;
                dropped_total += report.queue_dropped;
                skipped_total += report.policy_skipped;
                replayed_total += report.replayed;
                pooled_e2e.extend_from_slice(&e2e_ms);
            }
            report.tenant = reports.len();
            reports.push(report);
        }
        let availability = if serving_span_us > 0 {
            (1.0 - self.recovery.outage_us as f64 / serving_span_us as f64).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let report = ServeReport {
            config,
            tenants: reports,
            admitted_load_cores: self.admitted_load,
            captured: captured_total,
            processed: processed_total,
            queue_dropped: dropped_total,
            policy_skipped: skipped_total,
            replayed: replayed_total,
            drop_rate: if captured_total > 0 {
                (dropped_total + skipped_total) as f64 / captured_total as f64
            } else {
                0.0
            },
            e2e_ms: Summary::of_lenient(&pooled_e2e),
            core_utilization: if serving_span_us > 0 {
                self.core_busy_us as f64 / serving_span_us as f64
            } else {
                0.0
            },
            decisions,
            recovery: self.recovery,
            transitions: self.transitions,
            availability,
            post_recovery_e2e_ms: Summary::of_lenient(&self.post_recovery_e2e),
        };
        (report, traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts_every_frame_exactly_once() {
        let mut lane = IngestLane::new();
        lane.offer(0);
        assert_eq!(lane.take(), Some(0));
        lane.offer(1);
        lane.offer(2); // displaces 1
        lane.offer(3); // displaces 2
        assert_eq!(lane.take(), Some(3));
        lane.offer(10);
        assert_eq!(lane.offered(), 5);
        assert_eq!(lane.delivered(), 2);
        assert_eq!(lane.dropped(), 2);
        assert_eq!(lane.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "capture order")]
    fn lane_rejects_out_of_order_offers() {
        let mut lane = IngestLane::new();
        lane.offer(5);
        lane.offer(5);
    }

    #[test]
    fn lane_take_on_empty_is_none() {
        let mut lane = IngestLane::new();
        assert_eq!(lane.take(), None);
        assert_eq!(lane.offered(), 0);
    }

    #[test]
    fn lane_clear_pending_counts_the_abandoned_frame() {
        let mut lane = IngestLane::new();
        lane.clear_pending(); // empty: no-op
        assert_eq!(lane.offered(), 0);
        lane.offer(0);
        lane.clear_pending();
        assert_eq!(lane.dropped(), 1);
        assert_eq!(lane.depth(), 0);
        assert_eq!(lane.offered(), 1);
        // Order tracking survives the clear.
        lane.offer(1);
        assert_eq!(lane.take(), Some(1));
    }

    #[test]
    fn decision_counts_cover_every_rung() {
        let mut c = DecisionCounts::default();
        c.count(AdmissionDecision::Admitted);
        c.count(AdmissionDecision::ShedRedundancy);
        c.count(AdmissionDecision::Degraded { keep_every: 2 });
        c.count(AdmissionDecision::Rejected);
        c.count(AdmissionDecision::Quarantined);
        assert_eq!(c.admitted, 1);
        assert_eq!(c.shed_redundancy, 1);
        assert_eq!(c.degraded, 1);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.quarantined, 1);
    }

    #[test]
    fn config_validation_rejects_each_bad_field() {
        let good = ServeConfig::default();
        assert_eq!(good.validate(), Ok(()));
        assert_eq!(
            ServeConfig {
                tenants: 0,
                ..good.clone()
            }
            .validate(),
            Err(ServeConfigError::NoTenants)
        );
        assert_eq!(
            ServeConfig {
                cameras_per_tenant: 0,
                ..good.clone()
            }
            .validate(),
            Err(ServeConfigError::NoCameras)
        );
        assert_eq!(
            ServeConfig {
                fps: 0.0,
                ..good.clone()
            }
            .validate(),
            Err(ServeConfigError::BadFps { value: 0.0 })
        );
        assert_eq!(
            ServeConfig {
                duration_s: -1.0,
                ..good.clone()
            }
            .validate(),
            Err(ServeConfigError::BadDuration { value: -1.0 })
        );
        assert!(matches!(
            ServeConfig {
                capacity_cores: f64::NAN,
                ..good.clone()
            }
            .validate(),
            Err(ServeConfigError::BadCapacity { .. })
        ));
        assert_eq!(
            ServeConfig {
                max_keep_every: 0,
                ..good.clone()
            }
            .validate(),
            Err(ServeConfigError::ZeroMaxKeepEvery)
        );
        assert_eq!(
            ServeConfig {
                redundancy: 0,
                ..good.clone()
            }
            .validate(),
            Err(ServeConfigError::ZeroRedundancy)
        );
        let bad_faults = ServeConfig {
            faults: FaultModel {
                dropout_per_horizon: 2.0,
                ..FaultModel::none()
            },
            ..good.clone()
        };
        assert!(matches!(
            bad_faults.validate(),
            Err(ServeConfigError::Faults(_))
        ));
        let bad_chaos = ServeConfig {
            chaos: ServeFaultModel {
                poison_per_frame: 7.0,
                ..ServeFaultModel::none()
            },
            ..good.clone()
        };
        assert!(matches!(
            bad_chaos.validate(),
            Err(ServeConfigError::Chaos(_))
        ));
        let crash_no_snap = ServeConfig {
            chaos: ServeFaultModel {
                crash_at_us: vec![1_000_000],
                ..ServeFaultModel::none()
            },
            ..good
        };
        assert_eq!(
            crash_no_snap.validate(),
            Err(ServeConfigError::CrashWithoutSnapshots)
        );
    }

    #[test]
    fn underloaded_service_admits_and_keeps_up() {
        // One 4-camera tenant models ~1.8 cores of load; a 4-core budget
        // admits it untouched and mostly keeps up in real time.
        let config = ServeConfig {
            tenants: 1,
            cameras_per_tenant: 4,
            duration_s: 6.0,
            train_s: 10.0,
            capacity_cores: 4.0,
            ..ServeConfig::default()
        };
        let report = run_serve(&config);
        assert_eq!(report.decisions.admitted, 1);
        assert_eq!(report.captured, 60);
        assert!(report.processed > 0);
        assert!(report.tenants[0].max_lane_depth <= 1);
        assert_eq!(
            report.processed + report.queue_dropped,
            report.captured,
            "every captured frame is processed or dropped"
        );
        assert!(
            report.drop_rate < 0.2,
            "an admitted tenant should mostly keep up, dropped {:.0}%",
            report.drop_rate * 100.0
        );
        assert!(report.core_utilization <= 1.0 + 1e-9);
        assert!(report.e2e_ms.p99.is_finite());
        // A chaos-free run reports no recovery activity and full uptime.
        assert!(!report.recovery.any());
        assert!(report.transitions.is_empty());
        assert_eq!(report.availability, 1.0);
        assert_eq!(report.replayed, 0);
    }

    #[test]
    fn overloaded_service_sheds_load_instead_of_queueing() {
        // A deliberately tiny budget: admission degrades or rejects the
        // later tenants, and whatever is served keeps bounded queues.
        let config = ServeConfig {
            tenants: 3,
            cameras_per_tenant: 4,
            duration_s: 4.0,
            train_s: 10.0,
            capacity_cores: 0.02,
            ..ServeConfig::default()
        };
        let report = run_serve(&config);
        assert!(
            report.decisions.degraded + report.decisions.rejected > 0,
            "a 2% core cannot admit three tenants untouched"
        );
        assert!(report.admitted_load_cores <= config.capacity_cores + 1e-9);
        for t in &report.tenants {
            assert!(
                t.max_lane_depth <= 1,
                "tenant {}: queue unbounded",
                t.tenant
            );
        }
    }

    #[test]
    fn shed_redundancy_rung_fires_before_frame_thinning() {
        // With redundancy 2 requested and a budget that only fits the
        // shed configuration, the ladder must stop at ShedRedundancy.
        let base = ServeConfig {
            tenants: 1,
            cameras_per_tenant: 4,
            duration_s: 2.0,
            train_s: 10.0,
            redundancy: 2,
            capacity_cores: 8.0,
            ..ServeConfig::default()
        };
        let full = run_serve(&base);
        let redundant_load = full.tenants[0].pilot_load_cores;
        assert_eq!(full.tenants[0].decision, AdmissionDecision::Admitted);

        // Now squeeze: below the redundant load, above the shed load.
        let shed = run_serve(&ServeConfig {
            capacity_cores: redundant_load * 0.95,
            ..base
        });
        match shed.tenants[0].decision {
            AdmissionDecision::ShedRedundancy | AdmissionDecision::Degraded { .. } => {}
            other => panic!("expected a degraded rung, got {other:?}"),
        }
    }
}
