//! Multi-tenant serving front-end: an event loop multiplexing N tenant
//! deployments onto one scheduler core with latest-frame-wins backpressure
//! and load-shedding admission control.
//!
//! The paper evaluates one deployment per run; a production service runs
//! many deployments ("tenants") against shared compute. This module builds
//! that tier on top of [`TenantPipeline`]:
//!
//! * [`IngestLane`] — a depth-1 per-camera frame queue. A frame arriving
//!   while the core is busy *replaces* the waiting frame (the standard
//!   live-analytics policy: stale frames are worthless — cf.
//!   [`QueuePolicy::DropToLatest`](crate::QueuePolicy) for the
//!   single-camera replay model). Every displacement is counted.
//! * [`run_serve`] — a discrete-event loop on a virtual microsecond clock.
//!   The scheduler core is a single server: it serves one tenant-frame at
//!   a time, taking the frame's *modeled* service cost (slowest camera's
//!   DNN latency plus the amortized central-stage share), so the whole
//!   simulation is a deterministic function of its [`ServeConfig`] at any
//!   thread count.
//! * Admission control — before serving, each tenant's steady-state load
//!   is measured over a pilot horizon. When the aggregate exceeds the
//!   configured core budget, the service degrades the tenant along a
//!   ladder: shed redundant assignments first, then process only every
//!   d-th frame, and reject the tenant only when even that cannot fit.
//!
//! Dropped and policy-skipped frames still advance the tenant's world (real
//! time passed); the pipeline sees them as [`TenantPipeline::skip`] calls,
//! so trackers coast across gaps exactly like they do across lost key-frame
//! round trips.

use mvs_metrics::{DegradationCounters, Summary};
use mvs_trace::Trace;
use serde::{Deserialize, Serialize};

use crate::runtime::{Algorithm, PipelineConfig, TenantPipeline};
use crate::scenario::{CityConfig, Scenario};
use crate::FaultModel;

/// A per-camera ingest queue of depth one with latest-frame-wins
/// replacement.
///
/// Frames are identified by their capture index and must be offered in
/// capture order. At most one frame waits; offering a newer frame while an
/// older one waits drops the older one (counted in
/// [`IngestLane::dropped`]). Consequently the consumed sequence is a
/// strictly increasing subsequence of the offered sequence — the lane can
/// drop frames but never reorder or duplicate them.
///
/// # Examples
///
/// ```
/// use mvs_sim::IngestLane;
///
/// let mut lane = IngestLane::new();
/// lane.offer(0);
/// assert_eq!(lane.offer(1), Some(0)); // frame 0 displaced, dropped
/// assert_eq!(lane.take(), Some(1));
/// assert_eq!(lane.take(), None);
/// assert_eq!(lane.dropped(), 1);
/// assert_eq!(lane.depth(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestLane {
    /// The waiting frame, if any (the queue's entire capacity).
    pending: Option<u64>,
    /// Highest frame index ever offered.
    newest: Option<u64>,
    /// Frames displaced by a newer arrival before consumption.
    dropped: u64,
    /// Frames handed to the consumer.
    delivered: u64,
}

impl IngestLane {
    /// An empty lane.
    #[must_use]
    pub fn new() -> IngestLane {
        IngestLane::default()
    }

    /// Offers a captured frame to the lane. Returns the older frame it
    /// displaced, if one was still waiting.
    ///
    /// # Panics
    ///
    /// Panics if `frame` does not arrive in strictly increasing capture
    /// order — the transport below this queue preserves order, so an
    /// out-of-order offer is a caller bug, not a runtime condition.
    pub fn offer(&mut self, frame: u64) -> Option<u64> {
        assert!(
            self.newest.is_none_or(|n| frame > n),
            "frames must be offered in capture order"
        );
        self.newest = Some(frame);
        let displaced = self.pending.replace(frame);
        if displaced.is_some() {
            self.dropped += 1;
        }
        displaced
    }

    /// Consumes the waiting frame, if any.
    pub fn take(&mut self) -> Option<u64> {
        let frame = self.pending.take();
        if frame.is_some() {
            self.delivered += 1;
        }
        frame
    }

    /// The waiting frame without consuming it.
    #[must_use]
    pub fn peek(&self) -> Option<u64> {
        self.pending
    }

    /// Current queue depth — structurally at most 1.
    #[must_use]
    pub fn depth(&self) -> usize {
        usize::from(self.pending.is_some())
    }

    /// Frames displaced (dropped) before the consumer took them.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames delivered to the consumer.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Frames ever offered. Always equals
    /// `delivered + dropped + depth` — the lane accounts for every frame.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.delivered + self.dropped + self.depth() as u64
    }
}

/// What admission control decided for one tenant, in degradation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Served at its requested configuration.
    Admitted,
    /// Served with redundancy shed to 1 (the cheapest degradation: extra
    /// assignment copies go first, frames are untouched).
    ShedRedundancy,
    /// Served at reduced rate: only every `keep_every`-th captured frame
    /// is offered to the core (redundancy was shed first if it had any).
    Degraded {
        /// Process one frame in this many.
        keep_every: u64,
    },
    /// Not served: even the deepest degradation rung did not fit the
    /// remaining core budget.
    Rejected,
}

/// Configuration of one [`run_serve`] simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of tenant deployments.
    pub tenants: usize,
    /// Cameras per tenant (each tenant is an independently seeded city
    /// deployment of this size).
    pub cameras_per_tenant: usize,
    /// Capture rate of every tenant, frames per second.
    pub fps: f64,
    /// Serving time simulated after admission, seconds of virtual time.
    pub duration_s: f64,
    /// Provisioned compute, in cores (1.0 = one core's worth of modeled
    /// milliseconds per millisecond). The serving core processes frames at
    /// this aggregate speed, and admission control degrades tenants until
    /// the aggregate pilot load fits the same budget — so an admitted mix
    /// keeps long-run utilization at or below one.
    pub capacity_cores: f64,
    /// Base seed; tenant `t` runs scenario and pipeline seed `seed + t`.
    pub seed: u64,
    /// Worker threads per pipeline step (0 = automatic). Results are
    /// bitwise identical at any value.
    pub threads: usize,
    /// Requested redundancy degree per tenant.
    pub redundancy: usize,
    /// City traffic intensity multiplier.
    pub intensity: f64,
    /// Association-model training window per tenant, seconds.
    pub train_s: f64,
    /// Fault injection applied to every tenant.
    pub faults: FaultModel,
    /// Deepest frame-dropping rung admission control may assign before
    /// rejecting a tenant (`keep_every` never exceeds this).
    pub max_keep_every: u64,
    /// Use the sharded central solver (city-scale path).
    pub shard_solver: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants: 4,
            cameras_per_tenant: 8,
            fps: 10.0,
            duration_s: 30.0,
            capacity_cores: 4.0,
            seed: 2022,
            threads: 0,
            redundancy: 1,
            intensity: 1.0,
            train_s: 20.0,
            faults: FaultModel::none(),
            max_keep_every: 4,
            shard_solver: false,
        }
    }
}

/// Per-tenant outcome of a serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant index (also its seed offset).
    pub tenant: usize,
    /// What admission control decided.
    pub decision: AdmissionDecision,
    /// Steady-state core load measured over the pilot horizon, in cores,
    /// at the *served* configuration (after any shedding).
    pub pilot_load_cores: f64,
    /// Frames captured during the serving phase.
    pub captured: u64,
    /// Frames processed by the core.
    pub processed: u64,
    /// Frames displaced from the ingest lanes by a newer arrival
    /// (per-camera counters agree, so this is the per-camera count).
    pub queue_dropped: u64,
    /// Frames withheld by the admission policy (`keep_every` thinning).
    pub policy_skipped: u64,
    /// Deepest per-camera queue depth ever observed (bounded by 1).
    pub max_lane_depth: usize,
    /// End-to-end latency of processed frames (capture → completion),
    /// including queueing delay. `p99` is the headline tail metric.
    pub e2e_ms: Summary,
    /// Modeled service cost per processed frame.
    pub service_ms: Summary,
    /// Recall over the tenant's processed frames (skipped frames count
    /// their visible objects as missed, so dropping frames costs recall).
    pub recall: f64,
    /// The tenant pipeline's degradation counters (faults + coasting).
    pub degradation: DegradationCounters,
}

/// Aggregate outcome of a [`run_serve`] simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// The configuration that produced this report.
    pub config: ServeConfig,
    /// Per-tenant outcomes, indexed by tenant.
    pub tenants: Vec<TenantReport>,
    /// Aggregate pilot load of the served (non-rejected) tenants, cores.
    pub admitted_load_cores: f64,
    /// Frames captured across all served tenants.
    pub captured: u64,
    /// Frames processed across all served tenants.
    pub processed: u64,
    /// Frames dropped by backpressure across all served tenants.
    pub queue_dropped: u64,
    /// Frames withheld by admission policy across all served tenants.
    pub policy_skipped: u64,
    /// `(queue_dropped + policy_skipped) / captured` — the headline drop
    /// rate (0.0 when nothing was captured).
    pub drop_rate: f64,
    /// End-to-end latency pooled over every served tenant.
    pub e2e_ms: Summary,
    /// Fraction of the serving window the core spent busy, of one core.
    pub core_utilization: f64,
    /// Tenants per admission outcome: `[admitted, shed, degraded,
    /// rejected]`.
    pub decisions: DecisionCounts,
}

/// How many tenants landed on each admission rung.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionCounts {
    /// Served as requested.
    pub admitted: usize,
    /// Served with redundancy shed.
    pub shed_redundancy: usize,
    /// Served with frame thinning.
    pub degraded: usize,
    /// Not served.
    pub rejected: usize,
}

impl DecisionCounts {
    fn count(&mut self, decision: AdmissionDecision) {
        match decision {
            AdmissionDecision::Admitted => self.admitted += 1,
            AdmissionDecision::ShedRedundancy => self.shed_redundancy += 1,
            AdmissionDecision::Degraded { .. } => self.degraded += 1,
            AdmissionDecision::Rejected => self.rejected += 1,
        }
    }
}

/// One tenant's live state inside the event loop.
struct Tenant {
    pipeline: TenantPipeline,
    lanes: Vec<IngestLane>,
    decision: AdmissionDecision,
    /// Pilot-measured load at the served configuration, cores.
    load_cores: f64,
    /// Process one captured frame in this many (1 = all).
    keep_every: u64,
    /// Pipeline capture index where the serving phase started (pilot
    /// frames live below it).
    serve_start: usize,
    /// Next serving-phase frame index to capture (0-based).
    next_capture: u64,
    /// Capture timestamp of the waiting frame, µs (valid while the lanes
    /// are non-empty).
    pending_since_us: u64,
    /// Virtual-time offset of this tenant's capture clock, µs.
    phase_us: u64,
    max_lane_depth: usize,
    policy_skipped: u64,
    e2e_ms: Vec<f64>,
    service_ms: Vec<f64>,
}

impl Tenant {
    fn pending(&self) -> Option<u64> {
        self.lanes.first().and_then(IngestLane::peek)
    }

    /// Brings the pipeline's capture clock up to serving frame `frame`
    /// (exclusive), skipping everything in between (lane drops and policy
    /// thinning alike).
    fn reconcile_skips(&mut self, frame: u64) {
        while (self.pipeline.next_frame() - self.serve_start) < frame as usize {
            self.pipeline.skip();
        }
    }
}

/// Measures one tenant's steady-state core load over a pilot horizon:
/// steps `horizon` frames back to back and averages the modeled service
/// cost. Returns (load in cores, mean service ms).
fn pilot_load(pipeline: &mut TenantPipeline, horizon: usize, fps: f64) -> (f64, f64) {
    let mut total_ms = 0.0;
    for _ in 0..horizon {
        let cost = pipeline.step();
        if cost.is_finite() {
            total_ms += cost;
        }
    }
    let mean_ms = total_ms / horizon.max(1) as f64;
    (mean_ms * fps / 1e3, mean_ms)
}

/// Runs the multi-tenant serving simulation. Deterministic for a fixed
/// config at any [`ServeConfig::threads`] value.
///
/// # Panics
///
/// Panics on nonsensical configuration (zero tenants/cameras, non-positive
/// fps, duration, capacity, or `max_keep_every` of zero).
pub fn run_serve(config: &ServeConfig) -> ServeReport {
    run_serve_inner(config, false).0
}

/// Like [`run_serve`], but with structured tracing enabled on every
/// tenant pipeline. Returns one [`Trace`] per tenant (rejected tenants
/// trace their pilot horizon only), in tenant order, so the caller can
/// export each with its tenant label (see
/// [`Trace::prometheus_text_labeled`]).
pub fn run_serve_traced(config: &ServeConfig) -> (ServeReport, Vec<Trace>) {
    let (report, traces) = run_serve_inner(config, true);
    (report, traces.expect("tracing was enabled"))
}

#[allow(clippy::too_many_lines)]
fn run_serve_inner(config: &ServeConfig, traced: bool) -> (ServeReport, Option<Vec<Trace>>) {
    assert!(config.tenants > 0, "serve needs at least one tenant");
    assert!(
        config.cameras_per_tenant > 0,
        "tenants need at least one camera"
    );
    assert!(
        config.fps.is_finite() && config.fps > 0.0,
        "fps must be positive"
    );
    assert!(
        config.duration_s.is_finite() && config.duration_s >= 0.0,
        "duration must be non-negative"
    );
    assert!(
        config.capacity_cores.is_finite() && config.capacity_cores > 0.0,
        "capacity must be positive"
    );
    assert!(config.max_keep_every >= 1, "max_keep_every must be >= 1");
    assert!(config.redundancy >= 1, "redundancy must be at least one");

    let interval_us = (1e6 / config.fps).round() as u64;
    let frames_per_tenant = (config.duration_s * config.fps).round() as u64;

    // ---- Admission: build, pilot, and place each tenant on the ladder.
    let mut tenants: Vec<Tenant> = Vec::with_capacity(config.tenants);
    let mut admitted_load = 0.0f64;
    for t in 0..config.tenants {
        let mut scenario = Scenario::city(&CityConfig {
            cameras: config.cameras_per_tenant,
            seed: config.seed + t as u64,
            intensity: config.intensity,
        });
        scenario.fps = config.fps;
        let pipe_config = PipelineConfig {
            train_s: config.train_s,
            seed: config.seed + t as u64,
            threads: config.threads,
            redundancy: config.redundancy,
            measured_overheads: false,
            faults: config.faults,
            shard_solver: config.shard_solver,
            ..PipelineConfig::paper_default(Algorithm::Balb)
        };
        let mut pipeline = TenantPipeline::new(&scenario, &pipe_config);
        if traced {
            pipeline.enable_tracing();
        }
        let horizon = pipe_config.horizon;
        let budget = config.capacity_cores - admitted_load;

        let (mut load, _) = pilot_load(&mut pipeline, horizon, config.fps);
        let mut decision = AdmissionDecision::Admitted;
        let mut keep_every = 1u64;
        if load > budget && config.redundancy > 1 {
            // Rung 1: shed redundancy — extra assignment copies cost
            // compute without adding coverage of new objects.
            pipeline.set_redundancy(1);
            let repiloted = pilot_load(&mut pipeline, horizon, config.fps);
            load = repiloted.0;
            decision = AdmissionDecision::ShedRedundancy;
        }
        if load > budget {
            // Rung 2: thin frames — process one captured frame in d.
            let fits = (2..=config.max_keep_every).find(|&d| load / d as f64 <= budget);
            match fits {
                Some(d) => {
                    decision = AdmissionDecision::Degraded { keep_every: d };
                    keep_every = d;
                    load /= d as f64;
                }
                None => decision = AdmissionDecision::Rejected,
            }
        }
        if decision != AdmissionDecision::Rejected {
            admitted_load += load;
        }

        let serve_start = pipeline.next_frame();
        tenants.push(Tenant {
            pipeline,
            lanes: vec![IngestLane::new(); config.cameras_per_tenant],
            decision,
            load_cores: load,
            keep_every,
            serve_start,
            next_capture: 0,
            pending_since_us: 0,
            // Stagger tenants across the capture interval so arrivals do
            // not all land on the same instant.
            phase_us: interval_us * t as u64 / config.tenants as u64,
            max_lane_depth: 0,
            policy_skipped: 0,
            e2e_ms: Vec::new(),
            service_ms: Vec::new(),
        });
    }

    // ---- Event loop: single-server core over a virtual µs clock.
    let mut now_us = 0u64;
    let mut busy_until_us: Option<u64> = None;
    let mut core_busy_us = 0u64;
    loop {
        // Deliver every arrival due by `now`, in tenant order.
        for tenant in tenants.iter_mut() {
            if tenant.decision == AdmissionDecision::Rejected {
                continue;
            }
            while tenant.next_capture < frames_per_tenant {
                let frame = tenant.next_capture;
                let capture_us = tenant.phase_us + frame * interval_us;
                if capture_us > now_us {
                    break;
                }
                tenant.next_capture += 1;
                if !frame.is_multiple_of(tenant.keep_every) {
                    tenant.policy_skipped += 1;
                    continue;
                }
                for lane in tenant.lanes.iter_mut() {
                    lane.offer(frame);
                }
                tenant.pending_since_us = capture_us;
                let depth = tenant
                    .lanes
                    .iter()
                    .map(IngestLane::depth)
                    .max()
                    .unwrap_or(0);
                tenant.max_lane_depth = tenant.max_lane_depth.max(depth);
            }
        }

        let core_free = busy_until_us.is_none_or(|b| b <= now_us);
        if core_free {
            // FIFO over waiting frames: serve the tenant whose pending
            // frame has waited longest (ties to the lowest tenant id).
            let next = tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| t.pending().is_some())
                .min_by_key(|(id, t)| (t.pending_since_us, *id))
                .map(|(id, _)| id);
            if let Some(id) = next {
                let tenant = &mut tenants[id];
                let frame = tenant.lanes[0].take().expect("pending frame");
                for lane in tenant.lanes.iter_mut().skip(1) {
                    let same = lane.take();
                    debug_assert_eq!(same, Some(frame), "lanes advance in lockstep");
                }
                tenant.reconcile_skips(frame);
                let service_ms = tenant.pipeline.step();
                // The provisioned pool serves `capacity_cores` modeled
                // milliseconds per wall millisecond.
                let service_us = if service_ms.is_finite() && service_ms >= 0.0 {
                    (service_ms * 1e3 / config.capacity_cores).round() as u64
                } else {
                    // A poisoned overhead model must not wedge the loop;
                    // the pipeline already counted the sample as rejected.
                    0
                };
                let done_us = now_us + service_us;
                busy_until_us = Some(done_us);
                core_busy_us += service_us;
                tenant.service_ms.push(service_ms);
                tenant
                    .e2e_ms
                    .push((done_us - tenant.pending_since_us) as f64 / 1e3);
                continue;
            }
        }

        // Nothing serveable right now: advance to the next event.
        let next_arrival = tenants
            .iter()
            .filter(|t| t.decision != AdmissionDecision::Rejected)
            .filter(|t| t.next_capture < frames_per_tenant)
            .map(|t| t.phase_us + t.next_capture * interval_us)
            .min();
        let next_completion = busy_until_us.filter(|&b| b > now_us);
        match (next_arrival, next_completion) {
            (Some(a), Some(c)) => now_us = a.min(c),
            (Some(a), None) => now_us = a,
            (None, Some(c)) => now_us = c,
            (None, None) => break, // drained: no arrivals, core idle
        }
    }

    // ---- Reports.
    let mut reports = Vec::with_capacity(config.tenants);
    let mut traces = traced.then(Vec::new);
    let mut pooled_e2e: Vec<f64> = Vec::new();
    let mut decisions = DecisionCounts::default();
    let mut captured_total = 0u64;
    let mut processed_total = 0u64;
    let mut dropped_total = 0u64;
    let mut skipped_total = 0u64;
    let serving_span_us = frames_per_tenant * interval_us;
    for mut tenant in tenants {
        decisions.count(tenant.decision);
        let served = tenant.decision != AdmissionDecision::Rejected;
        let captured = if served { tenant.next_capture } else { 0 };
        // Account for trailing frames never consumed by the core.
        tenant.reconcile_skips(captured);
        let queue_dropped = tenant.lanes.first().map_or(0, IngestLane::dropped);
        let processed = tenant.lanes.first().map_or(0, IngestLane::delivered);
        let (result, trace) = tenant.pipeline.finish();
        if let (Some(ts), Some(tr)) = (traces.as_mut(), trace) {
            ts.push(tr);
        }
        if served {
            captured_total += captured;
            processed_total += processed;
            dropped_total += queue_dropped;
            skipped_total += tenant.policy_skipped;
            pooled_e2e.extend_from_slice(&tenant.e2e_ms);
        }
        reports.push(TenantReport {
            tenant: reports.len(),
            decision: tenant.decision,
            pilot_load_cores: tenant.load_cores,
            captured,
            processed,
            queue_dropped,
            policy_skipped: tenant.policy_skipped,
            max_lane_depth: tenant.max_lane_depth,
            e2e_ms: Summary::of_lenient(&tenant.e2e_ms),
            service_ms: Summary::of_lenient(&tenant.service_ms),
            recall: result.recall,
            degradation: result.degradation,
        });
    }
    let report = ServeReport {
        config: config.clone(),
        tenants: reports,
        admitted_load_cores: admitted_load,
        captured: captured_total,
        processed: processed_total,
        queue_dropped: dropped_total,
        policy_skipped: skipped_total,
        drop_rate: if captured_total > 0 {
            (dropped_total + skipped_total) as f64 / captured_total as f64
        } else {
            0.0
        },
        e2e_ms: Summary::of_lenient(&pooled_e2e),
        core_utilization: if serving_span_us > 0 {
            core_busy_us as f64 / serving_span_us as f64
        } else {
            0.0
        },
        decisions,
    };
    (report, traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts_every_frame_exactly_once() {
        let mut lane = IngestLane::new();
        lane.offer(0);
        assert_eq!(lane.take(), Some(0));
        lane.offer(1);
        lane.offer(2); // displaces 1
        lane.offer(3); // displaces 2
        assert_eq!(lane.take(), Some(3));
        lane.offer(10);
        assert_eq!(lane.offered(), 5);
        assert_eq!(lane.delivered(), 2);
        assert_eq!(lane.dropped(), 2);
        assert_eq!(lane.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "capture order")]
    fn lane_rejects_out_of_order_offers() {
        let mut lane = IngestLane::new();
        lane.offer(5);
        lane.offer(5);
    }

    #[test]
    fn lane_take_on_empty_is_none() {
        let mut lane = IngestLane::new();
        assert_eq!(lane.take(), None);
        assert_eq!(lane.offered(), 0);
    }

    #[test]
    fn decision_counts_cover_every_rung() {
        let mut c = DecisionCounts::default();
        c.count(AdmissionDecision::Admitted);
        c.count(AdmissionDecision::ShedRedundancy);
        c.count(AdmissionDecision::Degraded { keep_every: 2 });
        c.count(AdmissionDecision::Rejected);
        assert_eq!(c.admitted, 1);
        assert_eq!(c.shed_redundancy, 1);
        assert_eq!(c.degraded, 1);
        assert_eq!(c.rejected, 1);
    }

    #[test]
    fn underloaded_service_admits_and_keeps_up() {
        // One 4-camera tenant models ~1.8 cores of load; a 4-core budget
        // admits it untouched and mostly keeps up in real time.
        let config = ServeConfig {
            tenants: 1,
            cameras_per_tenant: 4,
            duration_s: 6.0,
            train_s: 10.0,
            capacity_cores: 4.0,
            ..ServeConfig::default()
        };
        let report = run_serve(&config);
        assert_eq!(report.decisions.admitted, 1);
        assert_eq!(report.captured, 60);
        assert!(report.processed > 0);
        assert!(report.tenants[0].max_lane_depth <= 1);
        assert_eq!(
            report.processed + report.queue_dropped,
            report.captured,
            "every captured frame is processed or dropped"
        );
        assert!(
            report.drop_rate < 0.2,
            "an admitted tenant should mostly keep up, dropped {:.0}%",
            report.drop_rate * 100.0
        );
        assert!(report.core_utilization <= 1.0 + 1e-9);
        assert!(report.e2e_ms.p99.is_finite());
    }

    #[test]
    fn overloaded_service_sheds_load_instead_of_queueing() {
        // A deliberately tiny budget: admission degrades or rejects the
        // later tenants, and whatever is served keeps bounded queues.
        let config = ServeConfig {
            tenants: 3,
            cameras_per_tenant: 4,
            duration_s: 4.0,
            train_s: 10.0,
            capacity_cores: 0.02,
            ..ServeConfig::default()
        };
        let report = run_serve(&config);
        assert!(
            report.decisions.degraded + report.decisions.rejected > 0,
            "a 2% core cannot admit three tenants untouched"
        );
        assert!(report.admitted_load_cores <= config.capacity_cores + 1e-9);
        for t in &report.tenants {
            assert!(
                t.max_lane_depth <= 1,
                "tenant {}: queue unbounded",
                t.tenant
            );
        }
    }

    #[test]
    fn shed_redundancy_rung_fires_before_frame_thinning() {
        // With redundancy 2 requested and a budget that only fits the
        // shed configuration, the ladder must stop at ShedRedundancy.
        let base = ServeConfig {
            tenants: 1,
            cameras_per_tenant: 4,
            duration_s: 2.0,
            train_s: 10.0,
            redundancy: 2,
            capacity_cores: 8.0,
            ..ServeConfig::default()
        };
        let full = run_serve(&base);
        let redundant_load = full.tenants[0].pilot_load_cores;
        assert_eq!(full.tenants[0].decision, AdmissionDecision::Admitted);

        // Now squeeze: below the redundant load, above the shed load.
        let shed = run_serve(&ServeConfig {
            capacity_cores: redundant_load * 0.95,
            ..base
        });
        match shed.tenants[0].decision {
            AdmissionDecision::ShedRedundancy | AdmissionDecision::Degraded { .. } => {}
            other => panic!("expected a degraded rung, got {other:?}"),
        }
    }
}
