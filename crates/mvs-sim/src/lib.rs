//! Multi-camera world simulator and end-to-end pipeline runtime.
//!
//! Stands in for the paper's physical evaluation setup (the AI City
//! Challenge 2021 videos played on a five-board Jetson testbed) — see
//! DESIGN.md for the substitution argument. The crate provides:
//!
//! * [`World`] / [`Lane`] — vehicles on routes with car-following and
//!   traffic lights (Fig. 2 workload dynamics);
//! * [`CameraModel`] — static cameras with ground-plane pinhole projection
//!   and depth-order occlusion;
//! * [`Scenario`] — the paper's deployments S1/S2/S3 with the Table I
//!   device configurations;
//! * [`CorrespondenceData`] / [`TrainedAssociation`] — the half/half
//!   association-model training protocol;
//! * [`MaskPrecompute`] / [`StaticWorldPartition`] — distributed-stage
//!   masks and the SP baseline's offline allocation;
//! * [`NetworkModel`] — the 20/100 Mbps camera↔scheduler link;
//! * [`FaultModel`] / [`ServeFaultModel`] — seeded camera-dropout and
//!   key-frame message-loss injection with timeout-plus-retry recovery,
//!   plus serve-level chaos (coordinator crashes, pipeline poison, pool
//!   degradation);
//! * [`run_pipeline`] — the full frame-by-frame system (Fig. 5) for every
//!   algorithm in the paper's comparison set.
//!
//! # Examples
//!
//! ```no_run
//! use mvs_sim::{run_pipeline, Algorithm, PipelineConfig, Scenario, ScenarioKind};
//!
//! let scenario = Scenario::new(ScenarioKind::S2);
//! let result = run_pipeline(&scenario, &PipelineConfig::paper_default(Algorithm::Balb));
//! println!("recall {:.3}, latency {:.1} ms", result.recall, result.mean_latency_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod camera;
mod correspond;
mod faults;
mod masks;
mod messages;
mod network;
mod render;
mod response;
mod runtime;
mod scenario;
mod serve;
mod trajectory;
mod worker;
mod world;

pub use camera::CameraModel;
pub use correspond::{CorrespondenceData, TrainedAssociation};
pub use faults::{FaultModel, FaultModelError, PoolDegrade, ServeFaultError, ServeFaultModel};
pub use masks::{MaskPrecompute, StaticWorldPartition};
pub use messages::{AssignmentMessage, ObjectRecord, UploadMessage};
pub use network::{NetworkModel, BYTES_PER_OBJECT, MESSAGE_HEADER_BYTES};
pub use render::render_ascii;
pub use response::{replay_response, QueuePolicy, ResponseStats};
pub use runtime::{
    run_pipeline, run_pipeline_traced, Algorithm, OverheadModel, PipelineConfig, PipelineResult,
    PipelineStats, PoisonPanic, TenantPipeline,
};
pub use scenario::{CityConfig, Scenario, ScenarioBuildError, ScenarioBuilder, ScenarioKind};
pub use serve::{
    run_serve, run_serve_traced, AdmissionDecision, AdmissionTransition, DecisionCounts,
    IngestLane, ServeConfig, ServeConfigError, ServeLoop, ServeReport, ServeSnapshot, TenantReport,
    TransitionReason,
};
pub use trajectory::{FollowingModel, Route, SpawnConfig, TrafficLight};
pub use worker::resolve_threads;
pub use world::{Lane, World, WorldObject};
