//! Per-camera execution state and its fan-out over the persistent pool.
//!
//! The pipeline owns one [`CameraWorker`] per camera. A worker bundles
//! everything a camera touches every frame — detector, tracker, shadows,
//! distributed-stage mask, device latency profile, lag ring buffer, and a
//! *private* deterministic RNG stream — so per-frame camera stages can run
//! on independent pool threads without sharing mutable state.
//!
//! Determinism contract: every random draw a camera makes comes from its
//! own ChaCha stream (`set_stream(index + 1)` over the run seed; stream 0
//! belongs to the world/coordinator). A camera's stream advances only with
//! that camera's own work, and cross-camera effects are merged serially in
//! camera-index order, so results are bitwise identical at any thread
//! count — including one.

use mvs_core::{CameraMask, ShadowTrack};
use mvs_geometry::{BBox, FrameDims};
use mvs_trace::TraceBuf;
use mvs_vision::{
    Detection, FlowField, FlowTracker, GroundTruthObject, LatencyProfile, NewRegionFinder,
    RegionTask, SimulatedDetector, TrackId,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Per-camera scratch arena: every buffer the steady-state frame loop
/// fills and drains each frame. Buffers are cleared (never shrunk) between
/// frames, so once each reaches its high-water capacity the regular-frame
/// path stops allocating. Owned by exactly one [`CameraWorker`], so pool
/// threads touch disjoint arenas without synchronization.
#[derive(Debug, Default)]
pub(crate) struct FrameScratch {
    /// This frame's optical-flow estimate (probe + cluster buffers reused
    /// via [`FlowField::estimate_into`]).
    pub flow: FlowField,
    /// Per-track crop tasks from slicing (plus new-region probes).
    pub tasks: Vec<RegionTask>,
    /// Flow-predicted track boxes, input to new-region detection.
    pub predicted: Vec<BBox>,
    /// Unexplained moving clusters (new-object probe regions).
    pub fresh: Vec<BBox>,
    /// Column-major scratch for the new-region coverage test.
    pub regions: NewRegionFinder,
    /// `(global index, seed box)` pairs from the takeover scan.
    pub takeover_seeds: Vec<(usize, BBox)>,
    /// Detections accumulated across this frame's crop tasks.
    pub detections: Vec<Detection>,
}

impl FrameScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Everything one camera mutates during a frame. Sending a `&mut
/// CameraWorker` to a pool thread is safe because no field is shared.
#[derive(Debug)]
pub(crate) struct CameraWorker {
    /// This camera's index in the scenario (also its merge position).
    pub index: usize,
    /// Camera frame dimensions.
    pub frame: FrameDims,
    /// Processing lag in frames (Sec. V imperfect synchronization).
    pub lag: usize,
    /// Device latency profile.
    pub profile: LatencyProfile,
    /// Detector quality model for this camera's frame.
    pub detector: SimulatedDetector,
    /// Flow tracker (per-horizon track state).
    pub tracker: FlowTracker,
    /// Private deterministic RNG stream (stream `index + 1` of the seed).
    pub rng: ChaCha8Rng,
    /// Previous frame's (lag-adjusted) view, input to flow estimation.
    pub prev_view: Vec<GroundTruthObject>,
    /// Ring buffer of recent true views; only kept when `lag > 0`.
    pub history: VecDeque<Vec<GroundTruthObject>>,
    /// Shadow boxes of objects visible here but assigned elsewhere, keyed
    /// by global index (full BALB only). Ordered so takeover scans are
    /// deterministic.
    pub shadows: BTreeMap<usize, ShadowTrack>,
    /// Global index of each seeded track.
    pub track_global: HashMap<TrackId, usize>,
    /// Distributed-stage mask for the current horizon (full BALB only).
    pub mask: Option<CameraMask>,
    /// SP's fixed speed-priority mask (static for the whole run).
    pub static_mask: Option<CameraMask>,
    /// Span buffer for this camera's lane, populated on the pool thread and
    /// drained by the coordinator per frame. `None` (the default) disables
    /// tracing with zero hot-path cost.
    pub trace: Option<TraceBuf>,
    /// Reusable per-frame buffers (see [`FrameScratch`]).
    pub scratch: FrameScratch,
}

impl CameraWorker {
    /// The camera's private RNG stream for a run seed: same key as the
    /// world stream, distinct ChaCha stream number (stream 0 is the
    /// world/coordinator).
    pub fn stream_rng(seed: u64, index: usize) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(index as u64 + 1);
        rng
    }
}

/// Maps `f` over the workers, fanning out across up to `threads` lanes of
/// the persistent pool ([`mvs_exec::pool`]), and returns the outputs in
/// camera-index order regardless of which lane ran which camera. With
/// `threads <= 1` (or one camera) it runs inline — same results, no
/// dispatch.
pub(crate) fn par_map<T, F>(workers: &mut [CameraWorker], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut CameraWorker) -> T + Sync,
{
    mvs_exec::pool().par_map_mut(workers, threads, f)
}

pub use mvs_exec::resolve_threads;

#[cfg(test)]
mod tests {
    use super::*;
    use mvs_vision::{DetectionModel, DeviceKind, TrackerConfig};
    use rand::Rng;

    fn dummy_worker(index: usize) -> CameraWorker {
        let frame = FrameDims::REGULAR;
        CameraWorker {
            index,
            frame,
            lag: 0,
            profile: LatencyProfile::for_device(DeviceKind::Nano),
            detector: SimulatedDetector::new(DetectionModel::default(), frame),
            tracker: FlowTracker::new(TrackerConfig::default(), frame),
            rng: CameraWorker::stream_rng(7, index),
            prev_view: Vec::new(),
            history: VecDeque::new(),
            shadows: BTreeMap::new(),
            track_global: HashMap::new(),
            mask: None,
            static_mask: None,
            trace: None,
            scratch: FrameScratch::new(),
        }
    }

    #[test]
    fn streams_are_distinct_per_camera() {
        let a: Vec<u64> = (0..4)
            .map(|i| CameraWorker::stream_rng(42, i).gen::<u64>())
            .collect();
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert_ne!(a[i], a[j], "cameras {i} and {j} share a stream");
            }
        }
        // And the stream is a function of the seed.
        assert_ne!(
            CameraWorker::stream_rng(42, 0).gen::<u64>(),
            CameraWorker::stream_rng(43, 0).gen::<u64>()
        );
    }

    #[test]
    fn par_map_output_is_index_ordered_at_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let mut workers: Vec<CameraWorker> = (0..7).map(dummy_worker).collect();
            let out = par_map(&mut workers, threads, |w| w.index * 10);
            assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60], "threads={threads}");
        }
    }

    #[test]
    fn par_map_draws_match_serial_draws() {
        // Each worker draws from its own stream; the collected draws must
        // not depend on the thread count.
        let draw = |threads: usize| -> Vec<u64> {
            let mut workers: Vec<CameraWorker> = (0..5).map(dummy_worker).collect();
            let mut out = Vec::new();
            for _ in 0..3 {
                out.extend(par_map(&mut workers, threads, |w| w.rng.gen::<u64>()));
            }
            out
        };
        let serial = draw(1);
        assert_eq!(serial, draw(2));
        assert_eq!(serial, draw(5));
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
