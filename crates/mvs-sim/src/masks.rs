//! Mask precomputation and the static world partition.
//!
//! Cell coverage sets depend only on the (static) camera deployment and the
//! trained cross-camera models, so they are computed once per run; per
//! horizon, only the priority-based owner selection changes (Sec. III-C2).
//! The same module hosts the geometric static partition used by the SP
//! baseline: an offline, processing-power-proportional division of the
//! ground plane among the cameras that cover it.

use crate::correspond::CorrespondenceData;
use mvs_core::{CameraId, CameraMask};
#[cfg(test)]
use mvs_geometry::BBox;
use mvs_geometry::{FrameDims, Grid, Point2, Polygon};
use serde::{Deserialize, Serialize};

/// Precomputed per-camera, per-cell coverage sets.
#[derive(Debug, Clone)]
pub struct MaskPrecompute {
    grids: Vec<Grid>,
    /// `coverage[cam][cell]` = cameras (by index) that observe the world
    /// region behind this cell of `cam`'s frame, **excluding** `cam`
    /// itself (which trivially covers its own cells).
    coverage: Vec<Vec<Vec<usize>>>,
    /// `canon_frac[cam][cell]` = a cross-camera-consistent coordinate of
    /// the world region behind the cell, in `[0, 1]`: the cell's location
    /// mapped into the lowest-indexed covering camera's frame, normalized
    /// by that frame's width. Two cameras looking at the same world spot
    /// derive (model errors aside) the same value, which lets the SP
    /// baseline cut *contiguous*, cross-camera-consistent regions without
    /// runtime communication.
    canon_frac: Vec<Vec<f64>>,
}

impl MaskPrecompute {
    /// Minimum labeled objects a cell must have seen before another
    /// camera can be credited with covering it.
    const MIN_SAMPLES: usize = 3;
    /// Fraction of a cell's objects the other camera must have observed to
    /// count as covering the cell.
    const COVER_FRACTION: f64 = 0.5;

    /// Builds per-cell coverage statistics from the labeled correspondence
    /// data (the same training labels the association models use): for
    /// every cell of every camera's frame, camera `j` covers the cell iff
    /// it observed at least half of the labeled objects centred there
    /// (minimum three samples). Cells that never contained an object are
    /// conservatively owned by their own camera.
    pub fn build(frames: &[FrameDims], data: &CorrespondenceData, cell_px: u32) -> MaskPrecompute {
        let m = frames.len();
        let grids: Vec<Grid> = frames.iter().map(|&f| Grid::new(f, cell_px)).collect();
        // seen[cam][cell][other] = (visible-in-other, total) counts, plus
        // the sum of the mapped canonical x for visible pairs.
        let mut totals: Vec<Vec<usize>> = grids.iter().map(|g| vec![0; g.len()]).collect();
        let mut visible: Vec<Vec<Vec<usize>>> =
            grids.iter().map(|g| vec![vec![0; m]; g.len()]).collect();
        let mut dst_x_sum: Vec<Vec<Vec<f64>>> =
            grids.iter().map(|g| vec![vec![0.0; m]; g.len()]).collect();
        for (&(src, dst), samples) in &data.pairs {
            for s in samples {
                let Some(cell) = grids[src].cell_at(s.src.center()) else {
                    continue;
                };
                // Totals are per source camera; count them once (for the
                // lowest dst index) to avoid multiplying by (m-1).
                if dst == (0..m).find(|&j| j != src).unwrap_or(dst) {
                    totals[src][cell.0] += 1;
                }
                if let Some(d) = s.dst {
                    visible[src][cell.0][dst] += 1;
                    dst_x_sum[src][cell.0][dst] += d.center().x;
                }
            }
        }
        let mut coverage = Vec::with_capacity(m);
        let mut canon_frac = Vec::with_capacity(m);
        for cam in 0..m {
            let grid = &grids[cam];
            let mut per_cell = Vec::with_capacity(grid.len());
            let mut per_cell_frac = Vec::with_capacity(grid.len());
            for cell in grid.iter() {
                let total = totals[cam][cell.0];
                let covered: Vec<usize> = (0..m)
                    .filter(|&other| {
                        other != cam
                            && total >= Self::MIN_SAMPLES
                            && visible[cam][cell.0][other] as f64
                                >= Self::COVER_FRACTION * total as f64
                    })
                    .collect();
                // Canonical coordinate: this world spot as seen from the
                // lowest-indexed camera that covers it (empirical mean of
                // the labeled mappings).
                let canon_cam = covered.iter().copied().min().unwrap_or(cam).min(cam);
                let canon_x = if canon_cam == cam {
                    grid.cell_center(cell).x
                } else {
                    dst_x_sum[cam][cell.0][canon_cam]
                        / visible[cam][cell.0][canon_cam].max(1) as f64
                };
                let width = frames[canon_cam].width as f64;
                per_cell_frac.push((canon_x / width).clamp(0.0, 1.0));
                per_cell.push(covered);
            }
            coverage.push(per_cell);
            canon_frac.push(per_cell_frac);
        }
        MaskPrecompute {
            grids,
            coverage,
            canon_frac,
        }
    }

    /// Number of cameras.
    pub fn num_cameras(&self) -> usize {
        self.grids.len()
    }

    /// Builds the distributed-stage mask for `camera` under the given
    /// priority order (cheap — just owner selection over the precomputed
    /// coverage).
    ///
    /// # Panics
    ///
    /// Panics if `camera` is out of range or absent from `priority`.
    pub fn mask_for(&self, camera: usize, priority: &[CameraId]) -> CameraMask {
        let mut slot = None;
        self.mask_for_into(camera, priority, &mut slot);
        slot.expect("mask_for_into fills an empty slot")
    }

    /// Buffer-reusing variant of [`MaskPrecompute::mask_for`]: when `slot`
    /// already holds this camera's mask from a previous horizon, its owner
    /// table is recomputed in place (no grid clone, no allocation); an
    /// empty slot gets a freshly built mask.
    ///
    /// # Panics
    ///
    /// Panics if `camera` is out of range, absent from `priority`, or
    /// `slot` holds a different camera's mask.
    pub fn mask_for_into(
        &self,
        camera: usize,
        priority: &[CameraId],
        slot: &mut Option<CameraMask>,
    ) {
        let coverage = &self.coverage[camera];
        let grid = &self.grids[camera];
        let observed_by = |c: CameraId, p: Point2| match grid.cell_at(p) {
            Some(cell) => coverage[cell.0].contains(&c.0),
            None => false,
        };
        match slot {
            Some(mask) => {
                assert_eq!(
                    mask.camera(),
                    CameraId(camera),
                    "mask slot belongs to a different camera"
                );
                mask.rebuild(priority, observed_by);
            }
            None => {
                *slot = Some(CameraMask::build(
                    CameraId(camera),
                    grid.clone(),
                    priority,
                    observed_by,
                ));
            }
        }
    }

    /// Builds the *static partitioning* masks (one per camera): each
    /// overlap region — the cells sharing one coverage set — is divided
    /// offline among its covering cameras into **contiguous bands** whose
    /// widths are proportional to the given processing-power `weights`.
    /// A cell's band position is its percentile (by canonical coordinate)
    /// within its overlap region, so the split is proportional regardless
    /// of where the region sits in the canonical frame. The allocation
    /// never depends on load — the property the paper's SP baseline is
    /// defined by — and all cameras derive the same bands from the same
    /// synchronized models.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not have one entry per camera.
    pub fn sp_masks(&self, weights: &[f64]) -> Vec<CameraMask> {
        assert_eq!(
            weights.len(),
            self.num_cameras(),
            "one weight per camera required"
        );
        // Gather the canonical-coordinate distribution of every overlap
        // region (keyed by its full candidate set) across all cameras.
        let mut groups: std::collections::BTreeMap<Vec<usize>, Vec<f64>> = Default::default();
        for cam in 0..self.num_cameras() {
            for cell in self.grids[cam].iter() {
                let key = self.candidates(cam, cell.0);
                groups
                    .entry(key)
                    .or_default()
                    .push(self.canon_frac[cam][cell.0]);
            }
        }
        for fracs in groups.values_mut() {
            fracs.sort_by(|a, b| a.partial_cmp(b).expect("finite fracs"));
        }
        (0..self.num_cameras())
            .map(|cam| {
                let grid = self.grids[cam].clone();
                let owners = grid
                    .iter()
                    .map(|cell| {
                        let candidates = self.candidates(cam, cell.0);
                        let fracs = &groups[&candidates];
                        let frac = self.canon_frac[cam][cell.0];
                        let rank = fracs.partition_point(|&f| f < frac);
                        let pct = (rank as f64 + 0.5) / fracs.len() as f64;
                        let total: f64 = candidates.iter().map(|&c| weights[c]).sum();
                        let mut acc = 0.0;
                        let mut winner = *candidates.last().expect("self is a candidate");
                        for &c in &candidates {
                            acc += weights[c] / total;
                            if pct <= acc {
                                winner = c;
                                break;
                            }
                        }
                        CameraId(winner)
                    })
                    .collect();
                CameraMask::from_owners(CameraId(cam), grid, owners)
            })
            .collect()
    }

    /// Sorted, deduplicated covering cameras of a cell, including the
    /// cell's own camera.
    fn candidates(&self, cam: usize, cell: usize) -> Vec<usize> {
        let mut candidates = self.coverage[cam][cell].clone();
        candidates.push(cam);
        candidates.sort_unstable();
        candidates.dedup();
        candidates
    }
}

/// Offline static partition of the ground plane (the SP baseline).
///
/// Each point of the monitored region is owned by one of the cameras whose
/// view polygon contains it, chosen by a *multiplicatively weighted
/// Voronoi* rule: the covering camera minimizing
/// `distance(point, view centroid) / speed_score` wins. Faster devices
/// therefore receive proportionally larger **contiguous** regions around
/// their own views — the realistic shape of an offline spatial partition —
/// and the allocation never reacts to the current load, which is exactly
/// the weakness BALB exploits (a platoon parked inside one camera's region
/// spikes that camera's latency while its neighbours idle).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticWorldPartition {
    views: Vec<Polygon>,
    anchors: Vec<Point2>,
    weights: Vec<f64>,
}

impl StaticWorldPartition {
    /// Creates a partition from the cameras' view polygons and their speed
    /// scores. Anchors default to the view polygons' bounding-box centres.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty/mismatched or a weight is not positive.
    pub fn new(views: Vec<Polygon>, weights: Vec<f64>) -> Self {
        assert!(!views.is_empty(), "need at least one camera view");
        assert_eq!(views.len(), weights.len(), "one weight per view required");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let anchors = views.iter().map(|v| v.bbox().center()).collect();
        StaticWorldPartition {
            views,
            anchors,
            weights,
        }
    }

    /// The camera owning `pos`, or `None` when no camera covers it.
    pub fn owner(&self, pos: Point2) -> Option<usize> {
        self.views
            .iter()
            .enumerate()
            .filter(|(_, v)| v.contains(pos))
            .map(|(i, _)| (i, self.anchors[i].distance(pos) / self.weights[i]))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x1: f64, y1: f64, x2: f64, y2: f64) -> Polygon {
        Polygon::rectangle(&BBox::new(x1, y1, x2, y2).unwrap())
    }

    #[test]
    fn partition_respects_coverage() {
        let p = StaticWorldPartition::new(
            vec![square(0.0, 0.0, 50.0, 50.0), square(40.0, 0.0, 100.0, 50.0)],
            vec![1.0, 1.0],
        );
        // Only camera 0 covers the far left.
        assert_eq!(p.owner(Point2::new(5.0, 25.0)), Some(0));
        // Only camera 1 covers the far right.
        assert_eq!(p.owner(Point2::new(90.0, 25.0)), Some(1));
        // Nobody covers the outside.
        assert_eq!(p.owner(Point2::new(500.0, 500.0)), None);
        // Overlap points belong to exactly one of the two.
        let o = p.owner(Point2::new(45.0, 25.0)).unwrap();
        assert!(o == 0 || o == 1);
    }

    #[test]
    fn partition_is_contiguous_around_anchors() {
        let p = StaticWorldPartition::new(
            vec![square(0.0, 0.0, 100.0, 50.0), square(0.0, 0.0, 100.0, 50.0)],
            vec![1.0, 1.0],
        );
        // Identical views share one anchor → a single camera owns all of
        // it (ties break deterministically); with shifted views each side
        // belongs to the nearer camera.
        let shifted = StaticWorldPartition::new(
            vec![square(0.0, 0.0, 60.0, 50.0), square(40.0, 0.0, 100.0, 50.0)],
            vec![1.0, 1.0],
        );
        assert_eq!(shifted.owner(Point2::new(42.0, 25.0)), Some(0));
        assert_eq!(shifted.owner(Point2::new(58.0, 25.0)), Some(1));
        let _ = p;
    }

    #[test]
    fn weights_skew_allocation() {
        let p = StaticWorldPartition::new(
            vec![
                square(0.0, 0.0, 200.0, 200.0),
                square(100.0, 0.0, 300.0, 200.0),
            ],
            vec![5.0, 1.0],
        );
        // Count ownership over the overlap strip: the fast camera's region
        // must reach far beyond the midpoint.
        let mut counts = [0usize; 2];
        for i in 0..40 {
            for j in 0..40 {
                let pos = Point2::new(
                    102.0 + (196.0 - 4.0) * i as f64 / 40.0 / 2.0,
                    2.5 + 4.875 * j as f64,
                );
                if let Some(o) = p.owner(pos) {
                    counts[o] += 1;
                }
            }
        }
        assert!(
            counts[0] > counts[1],
            "fast camera got {} points vs {}",
            counts[0],
            counts[1]
        );
    }

    #[test]
    #[should_panic(expected = "one weight per view")]
    fn validates_weight_count() {
        StaticWorldPartition::new(vec![square(0.0, 0.0, 1.0, 1.0)], vec![]);
    }
}
