//! Fault injection: camera dropouts and key-frame message loss.
//!
//! The paper's testbed assumes five healthy boards on a wired LAN. Real
//! deployments lose cameras (power, thermal throttling, reboots) and lose
//! key-frame sync messages (congestion, interference). This module models
//! both so the pipeline's graceful-degradation behaviour can be exercised
//! and measured:
//!
//! * [`FaultModel`] — the seeded fault configuration: per-horizon camera
//!   dropout/rejoin probabilities and a per-attempt key-frame message loss
//!   rate with timeout-plus-retry recovery.
//! * [`FaultState`] — the runtime schedule. All fault randomness lives on
//!   a dedicated ChaCha stream of the run seed, drawn on the coordinator
//!   thread at key frames in camera-index order, so fault schedules are
//!   bitwise deterministic at any thread count and never perturb the world
//!   or per-camera streams.
//!
//! An inactive model ([`FaultModel::none`], the default) draws nothing and
//! leaves every camera permanently alive, so fault-free runs are bitwise
//! identical to runs of a build without this module.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Seeded fault configuration for a pipeline run.
///
/// Dropout and rejoin are evaluated once per camera per key frame, so the
/// alive set is constant within a scheduling horizon (a camera cannot die
/// mid-horizon — the failure becomes visible at the next sync point, which
/// is when the scheduler would notice a missing upload anyway).
///
/// Message loss applies independently to every key-frame uplink and
/// downlink transmission attempt. A lost attempt costs
/// [`FaultModel::retry_timeout_ms`] before the retransmission fires; after
/// [`FaultModel::max_retries`] retransmissions the scheduler gives up on
/// the camera for this horizon and it runs desynchronized on stale state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability an alive camera drops out, per camera per key frame.
    pub dropout_per_horizon: f64,
    /// Probability a dead camera comes back, per camera per key frame.
    pub rejoin_per_horizon: f64,
    /// Probability one key-frame message transmission attempt is lost
    /// (applied per attempt, to uplink and downlink independently).
    pub keyframe_loss: f64,
    /// Retransmissions attempted after an initial loss before the
    /// scheduler declares the camera desynchronized for the horizon.
    pub max_retries: u32,
    /// Timeout before a lost transmission is retried, ms. Also the unit
    /// the scheduler waits for a camera that never answers.
    pub retry_timeout_ms: f64,
    /// Dropouts never reduce the alive set below this floor (the paper's
    /// system is meaningless with zero cameras; keeping one alive makes
    /// recall degrade monotonically instead of collapsing to zero).
    pub min_alive: usize,
}

impl FaultModel {
    /// The fault-free model: nothing ever drops, nothing is ever lost.
    pub fn none() -> Self {
        FaultModel {
            dropout_per_horizon: 0.0,
            rejoin_per_horizon: 0.0,
            keyframe_loss: 0.0,
            max_retries: 1,
            retry_timeout_ms: 30.0,
            min_alive: 1,
        }
    }

    /// Whether this model can inject any fault at all.
    pub fn is_active(&self) -> bool {
        self.dropout_per_horizon > 0.0 || self.keyframe_loss > 0.0
    }

    /// Transmission attempts allowed per message (initial + retries).
    pub fn attempts_budget(&self) -> u32 {
        1 + self.max_retries
    }

    /// How long the scheduler waits for a camera that never delivers: the
    /// full retry schedule, timeout after timeout.
    pub fn deadline_ms(&self) -> f64 {
        self.attempts_budget() as f64 * self.retry_timeout_ms
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// Camera-membership changes produced by one key-frame fault step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct KeyFrameEvents {
    /// Cameras that dropped out at this key frame (index order).
    pub dropped: Vec<usize>,
    /// Cameras that came back at this key frame (index order).
    pub rejoined: Vec<usize>,
}

/// The runtime fault schedule: the current alive set plus the dedicated
/// RNG stream all fault draws come from.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    model: FaultModel,
    /// Fault stream: same key as the run, stream `u64::MAX` — disjoint
    /// from the world stream (0) and every camera stream (`i + 1`).
    rng: ChaCha8Rng,
    alive: Vec<bool>,
}

impl FaultState {
    pub fn new(model: FaultModel, seed: u64, cameras: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(u64::MAX);
        FaultState {
            model,
            rng,
            alive: vec![true; cameras],
        }
    }

    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    pub fn all_alive(&self) -> bool {
        self.alive.iter().all(|&a| a)
    }

    /// Draws this key frame's dropout/rejoin decisions, one draw per
    /// camera in index order (the draw happens even when `min_alive`
    /// vetoes the dropout, so the stream position is a function of the
    /// key-frame count alone).
    pub fn step_key_frame(&mut self) -> KeyFrameEvents {
        let mut events = KeyFrameEvents::default();
        if self.model.dropout_per_horizon <= 0.0 {
            return events;
        }
        let mut alive_count = self.alive.iter().filter(|&&a| a).count();
        for i in 0..self.alive.len() {
            let draw: f64 = self.rng.gen();
            if self.alive[i] {
                if draw < self.model.dropout_per_horizon && alive_count > self.model.min_alive {
                    self.alive[i] = false;
                    alive_count -= 1;
                    events.dropped.push(i);
                }
            } else if draw < self.model.rejoin_per_horizon {
                self.alive[i] = true;
                alive_count += 1;
                events.rejoined.push(i);
            }
        }
        events
    }

    /// Simulates one message's timeout-plus-retry delivery: returns
    /// `Some(k)` if the message got through after `k` lost attempts, or
    /// `None` if the whole retry budget was lost. Draws nothing when loss
    /// is off (the message trivially arrives on the first attempt).
    pub fn delivery(&mut self) -> Option<u32> {
        if self.model.keyframe_loss <= 0.0 {
            return Some(0);
        }
        (0..self.model.attempts_budget())
            .find(|_| self.rng.gen::<f64>() >= self.model.keyframe_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_model_never_draws_or_drops() {
        let mut s = FaultState::new(FaultModel::none(), 7, 4);
        let mut pristine = s.rng.clone();
        for _ in 0..50 {
            assert_eq!(s.step_key_frame(), KeyFrameEvents::default());
            assert_eq!(s.delivery(), Some(0));
        }
        assert!(s.all_alive());
        // The RNG never advanced: fault-free runs are bitwise untouched.
        assert_eq!(s.rng.gen::<u64>(), pristine.gen::<u64>());
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let model = FaultModel {
            dropout_per_horizon: 0.3,
            rejoin_per_horizon: 0.5,
            keyframe_loss: 0.2,
            ..FaultModel::none()
        };
        let run = |seed: u64| -> (Vec<KeyFrameEvents>, Vec<Option<u32>>) {
            let mut s = FaultState::new(model, seed, 5);
            let mut events = Vec::new();
            let mut deliveries = Vec::new();
            for _ in 0..20 {
                events.push(s.step_key_frame());
                for _ in 0..5 {
                    deliveries.push(s.delivery());
                }
            }
            (events, deliveries)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds give different faults");
    }

    #[test]
    fn min_alive_floor_is_never_violated() {
        let model = FaultModel {
            dropout_per_horizon: 1.0, // every camera tries to die, every key frame
            min_alive: 2,
            ..FaultModel::none()
        };
        let mut s = FaultState::new(model, 3, 6);
        for _ in 0..30 {
            s.step_key_frame();
            let alive = s.alive().iter().filter(|&&a| a).count();
            assert!(alive >= 2, "alive fell to {alive}");
        }
    }

    #[test]
    fn certain_loss_exhausts_the_retry_budget() {
        let model = FaultModel {
            keyframe_loss: 1.0,
            max_retries: 3,
            ..FaultModel::none()
        };
        let mut s = FaultState::new(model, 9, 1);
        assert_eq!(s.delivery(), None);
        assert_eq!(model.attempts_budget(), 4);
        assert_eq!(model.deadline_ms(), 120.0);
    }

    #[test]
    fn dead_cameras_can_rejoin() {
        let model = FaultModel {
            dropout_per_horizon: 1.0,
            rejoin_per_horizon: 1.0,
            min_alive: 1,
            ..FaultModel::none()
        };
        let mut s = FaultState::new(model, 5, 3);
        let first = s.step_key_frame();
        assert_eq!(first.dropped.len(), 2, "floor keeps one alive");
        let second = s.step_key_frame();
        assert_eq!(second.rejoined.len(), 2, "everyone dead comes back");
        // With certain rejoin the alive count oscillates but never empties.
        assert!(s.alive().iter().filter(|&&a| a).count() >= 1);
    }

    #[test]
    fn fault_stream_is_disjoint_from_world_and_camera_streams() {
        let fault = FaultState::new(FaultModel::none(), 42, 4);
        let first = fault.rng.clone().gen::<u64>();
        let world = ChaCha8Rng::seed_from_u64(42).gen::<u64>();
        assert_ne!(first, world, "fault stream collides with the world");
        for i in 0..8 {
            let cam = crate::worker::CameraWorker::stream_rng(42, i).gen::<u64>();
            assert_ne!(first, cam, "fault stream collides with camera {i}");
        }
    }
}
