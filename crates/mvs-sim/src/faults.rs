//! Fault injection: camera dropouts and key-frame message loss.
//!
//! The paper's testbed assumes five healthy boards on a wired LAN. Real
//! deployments lose cameras (power, thermal throttling, reboots) and lose
//! key-frame sync messages (congestion, interference). This module models
//! both so the pipeline's graceful-degradation behaviour can be exercised
//! and measured:
//!
//! * [`FaultModel`] — the seeded fault configuration: per-horizon camera
//!   dropout/rejoin probabilities and a per-attempt key-frame message loss
//!   rate with timeout-plus-retry recovery.
//! * [`FaultState`] — the runtime schedule. All fault randomness lives on
//!   a dedicated ChaCha stream of the run seed, drawn on the coordinator
//!   thread at key frames in camera-index order, so fault schedules are
//!   bitwise deterministic at any thread count and never perturb the world
//!   or per-camera streams.
//!
//! An inactive model ([`FaultModel::none`], the default) draws nothing and
//! leaves every camera permanently alive, so fault-free runs are bitwise
//! identical to runs of a build without this module.
//!
//! The serving layer adds its own fault domains on top —
//! [`ServeFaultModel`] schedules coordinator crashes, per-tenant pipeline
//! poison, and compute-pool degradation for `mvs serve` chaos runs. Both
//! models validate their parameters up front ([`FaultModel::validate`],
//! [`ServeFaultModel::validate`]) so the CLI can reject a nonsensical
//! configuration with a typed error instead of panicking mid-run.

use std::error::Error;
use std::fmt;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Seeded fault configuration for a pipeline run.
///
/// Dropout and rejoin are evaluated once per camera per key frame, so the
/// alive set is constant within a scheduling horizon (a camera cannot die
/// mid-horizon — the failure becomes visible at the next sync point, which
/// is when the scheduler would notice a missing upload anyway).
///
/// Message loss applies independently to every key-frame uplink and
/// downlink transmission attempt. A lost attempt costs
/// [`FaultModel::retry_timeout_ms`] before the retransmission fires; after
/// [`FaultModel::max_retries`] retransmissions the scheduler gives up on
/// the camera for this horizon and it runs desynchronized on stale state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability an alive camera drops out, per camera per key frame.
    pub dropout_per_horizon: f64,
    /// Probability a dead camera comes back, per camera per key frame.
    pub rejoin_per_horizon: f64,
    /// Probability one key-frame message transmission attempt is lost
    /// (applied per attempt, to uplink and downlink independently).
    pub keyframe_loss: f64,
    /// Retransmissions attempted after an initial loss before the
    /// scheduler declares the camera desynchronized for the horizon.
    pub max_retries: u32,
    /// Timeout before a lost transmission is retried, ms. Also the unit
    /// the scheduler waits for a camera that never answers.
    pub retry_timeout_ms: f64,
    /// Dropouts never reduce the alive set below this floor (the paper's
    /// system is meaningless with zero cameras; keeping one alive makes
    /// recall degrade monotonically instead of collapsing to zero).
    pub min_alive: usize,
}

impl FaultModel {
    /// The fault-free model: nothing ever drops, nothing is ever lost.
    pub fn none() -> Self {
        FaultModel {
            dropout_per_horizon: 0.0,
            rejoin_per_horizon: 0.0,
            keyframe_loss: 0.0,
            max_retries: 1,
            retry_timeout_ms: 30.0,
            min_alive: 1,
        }
    }

    /// Whether this model can inject any fault at all.
    pub fn is_active(&self) -> bool {
        self.dropout_per_horizon > 0.0 || self.keyframe_loss > 0.0
    }

    /// Transmission attempts allowed per message (initial + retries).
    pub fn attempts_budget(&self) -> u32 {
        1 + self.max_retries
    }

    /// How long the scheduler waits for a camera that never delivers: the
    /// full retry schedule, timeout after timeout.
    pub fn deadline_ms(&self) -> f64 {
        self.attempts_budget() as f64 * self.retry_timeout_ms
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// Why a [`FaultModel`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModelError {
    /// A probability field lies outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// The offending field's name.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `retry_timeout_ms` is negative or non-finite.
    BadRetryTimeout {
        /// The rejected value.
        value: f64,
    },
    /// `min_alive` exceeds the deployment's camera count, so the dropout
    /// floor could never be satisfied.
    MinAliveExceedsCameras {
        /// The configured floor.
        min_alive: usize,
        /// Cameras actually deployed.
        cameras: usize,
    },
}

impl fmt::Display for FaultModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModelError::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            FaultModelError::BadRetryTimeout { value } => {
                write!(f, "retry_timeout_ms must be finite and >= 0, got {value}")
            }
            FaultModelError::MinAliveExceedsCameras { min_alive, cameras } => {
                write!(
                    f,
                    "min_alive ({min_alive}) exceeds the deployment's camera count ({cameras})"
                )
            }
        }
    }
}

impl Error for FaultModelError {}

impl FaultModel {
    /// Checks the model against a deployment of `cameras` cameras,
    /// returning the first violated constraint. [`FaultModel::none`]
    /// always validates (for any `cameras >= 1`).
    pub fn validate(&self, cameras: usize) -> Result<(), FaultModelError> {
        let probabilities = [
            ("dropout_per_horizon", self.dropout_per_horizon),
            ("rejoin_per_horizon", self.rejoin_per_horizon),
            ("keyframe_loss", self.keyframe_loss),
        ];
        for (field, value) in probabilities {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(FaultModelError::ProbabilityOutOfRange { field, value });
            }
        }
        if !self.retry_timeout_ms.is_finite() || self.retry_timeout_ms < 0.0 {
            return Err(FaultModelError::BadRetryTimeout {
                value: self.retry_timeout_ms,
            });
        }
        if self.min_alive > cameras {
            return Err(FaultModelError::MinAliveExceedsCameras {
                min_alive: self.min_alive,
                cameras,
            });
        }
        Ok(())
    }
}

/// One scheduled compute-pool degradation event for the serving layer:
/// from [`PoolDegrade::at_us`] onward the pool runs at
/// `capacity_factor × capacity_cores` and every modeled service time is
/// multiplied by `service_inflation` (stragglers). A later event replaces
/// the factors wholesale, so `{at_us, 1.0, 1.0}` restores the pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolDegrade {
    /// Virtual time the degradation takes effect, µs.
    pub at_us: u64,
    /// Multiplier on the provisioned capacity (1.0 = healthy; 0.5 = half
    /// the cores). Must be finite and positive.
    pub capacity_factor: f64,
    /// Multiplier on every modeled per-frame service time (1.0 = healthy;
    /// 1.5 = every frame takes 50% longer). Must be finite and positive.
    pub service_inflation: f64,
}

/// Seeded serve-level chaos schedule: coordinator crashes, per-tenant
/// pipeline poison, and compute-pool degradation. Extends [`FaultModel`]
/// (which injects camera/network faults *inside* each tenant pipeline) to
/// the serving layer itself.
///
/// Like [`FaultModel`], an inactive model ([`ServeFaultModel::none`], the
/// default) draws nothing, so chaos-free serve runs are bitwise identical
/// to runs of a build without this machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeFaultModel {
    /// Seed of the dedicated serve-level chaos RNG stream (independent of
    /// the world, camera, and pipeline-fault streams).
    #[serde(default)]
    pub seed: u64,
    /// Virtual times at which the coordinator crashes, losing all
    /// in-memory state since the latest snapshot, µs. Must be strictly
    /// increasing; crashes require snapshotting to be enabled.
    #[serde(default)]
    pub crash_at_us: Vec<u64>,
    /// Outage length: the coordinator restarts this long after each
    /// crash, µs.
    #[serde(default)]
    pub restart_delay_us: u64,
    /// Probability that a dispatched frame poisons its tenant's pipeline
    /// (the step panics; the panic is caught and the tenant quarantined).
    /// One chaos draw per dispatch while positive; no draws at 0.
    #[serde(default)]
    pub poison_per_frame: f64,
    /// How long a poisoned tenant sits out before being re-piloted
    /// through the admission ladder, µs.
    #[serde(default)]
    pub quarantine_us: u64,
    /// Scheduled pool degradations, in event-time order.
    #[serde(default)]
    pub degrades: Vec<PoolDegrade>,
}

impl ServeFaultModel {
    /// The chaos-free model: no crashes, no poison, no degradation.
    pub fn none() -> Self {
        ServeFaultModel {
            seed: 0,
            crash_at_us: Vec::new(),
            restart_delay_us: 500_000,
            poison_per_frame: 0.0,
            quarantine_us: 5_000_000,
            degrades: Vec::new(),
        }
    }

    /// Whether this model can inject any serve-level fault at all.
    pub fn is_active(&self) -> bool {
        !self.crash_at_us.is_empty() || self.poison_per_frame > 0.0 || !self.degrades.is_empty()
    }
}

impl Default for ServeFaultModel {
    fn default() -> Self {
        ServeFaultModel::none()
    }
}

/// Why a [`ServeFaultModel`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeFaultError {
    /// `poison_per_frame` lies outside `[0, 1]`.
    PoisonOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// `crash_at_us` is not strictly increasing.
    CrashTimesNotIncreasing,
    /// Crashes are scheduled but `restart_delay_us` is zero, which would
    /// restart the coordinator at the crash instant and re-fire the same
    /// crash forever.
    ZeroRestartDelay,
    /// `degrades` is not sorted by `at_us`.
    DegradeTimesNotSorted,
    /// A degrade event's `capacity_factor` is not finite and positive.
    BadCapacityFactor {
        /// The rejected value.
        value: f64,
    },
    /// A degrade event's `service_inflation` is not finite and positive.
    BadServiceInflation {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ServeFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeFaultError::PoisonOutOfRange { value } => {
                write!(
                    f,
                    "poison_per_frame must be a probability in [0, 1], got {value}"
                )
            }
            ServeFaultError::CrashTimesNotIncreasing => {
                write!(f, "crash_at_us must be strictly increasing")
            }
            ServeFaultError::ZeroRestartDelay => {
                write!(
                    f,
                    "restart_delay_us must be positive when crashes are scheduled"
                )
            }
            ServeFaultError::DegradeTimesNotSorted => {
                write!(f, "degrades must be sorted by at_us")
            }
            ServeFaultError::BadCapacityFactor { value } => {
                write!(f, "capacity_factor must be finite and > 0, got {value}")
            }
            ServeFaultError::BadServiceInflation { value } => {
                write!(f, "service_inflation must be finite and > 0, got {value}")
            }
        }
    }
}

impl Error for ServeFaultError {}

impl ServeFaultModel {
    /// Checks the chaos schedule's internal consistency, returning the
    /// first violated constraint. (Whether crashes are allowed at all
    /// depends on the serve configuration's snapshot cadence — the serve
    /// layer checks that separately.)
    pub fn validate(&self) -> Result<(), ServeFaultError> {
        if !self.poison_per_frame.is_finite() || !(0.0..=1.0).contains(&self.poison_per_frame) {
            return Err(ServeFaultError::PoisonOutOfRange {
                value: self.poison_per_frame,
            });
        }
        if self.crash_at_us.windows(2).any(|w| w[1] <= w[0]) {
            return Err(ServeFaultError::CrashTimesNotIncreasing);
        }
        if !self.crash_at_us.is_empty() && self.restart_delay_us == 0 {
            return Err(ServeFaultError::ZeroRestartDelay);
        }
        if self.degrades.windows(2).any(|w| w[1].at_us < w[0].at_us) {
            return Err(ServeFaultError::DegradeTimesNotSorted);
        }
        for d in &self.degrades {
            if !d.capacity_factor.is_finite() || d.capacity_factor <= 0.0 {
                return Err(ServeFaultError::BadCapacityFactor {
                    value: d.capacity_factor,
                });
            }
            if !d.service_inflation.is_finite() || d.service_inflation <= 0.0 {
                return Err(ServeFaultError::BadServiceInflation {
                    value: d.service_inflation,
                });
            }
        }
        Ok(())
    }
}

/// Camera-membership changes produced by one key-frame fault step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct KeyFrameEvents {
    /// Cameras that dropped out at this key frame (index order).
    pub dropped: Vec<usize>,
    /// Cameras that came back at this key frame (index order).
    pub rejoined: Vec<usize>,
}

/// The runtime fault schedule: the current alive set plus the dedicated
/// RNG stream all fault draws come from.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    model: FaultModel,
    /// Fault stream: same key as the run, stream `u64::MAX` — disjoint
    /// from the world stream (0) and every camera stream (`i + 1`).
    rng: ChaCha8Rng,
    alive: Vec<bool>,
}

impl FaultState {
    pub fn new(model: FaultModel, seed: u64, cameras: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(u64::MAX);
        FaultState {
            model,
            rng,
            alive: vec![true; cameras],
        }
    }

    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    pub fn all_alive(&self) -> bool {
        self.alive.iter().all(|&a| a)
    }

    /// Draws this key frame's dropout/rejoin decisions, one draw per
    /// camera in index order (the draw happens even when `min_alive`
    /// vetoes the dropout, so the stream position is a function of the
    /// key-frame count alone).
    pub fn step_key_frame(&mut self) -> KeyFrameEvents {
        let mut events = KeyFrameEvents::default();
        if self.model.dropout_per_horizon <= 0.0 {
            return events;
        }
        let mut alive_count = self.alive.iter().filter(|&&a| a).count();
        for i in 0..self.alive.len() {
            let draw: f64 = self.rng.gen();
            if self.alive[i] {
                if draw < self.model.dropout_per_horizon && alive_count > self.model.min_alive {
                    self.alive[i] = false;
                    alive_count -= 1;
                    events.dropped.push(i);
                }
            } else if draw < self.model.rejoin_per_horizon {
                self.alive[i] = true;
                alive_count += 1;
                events.rejoined.push(i);
            }
        }
        events
    }

    /// Simulates one message's timeout-plus-retry delivery: returns
    /// `Some(k)` if the message got through after `k` lost attempts, or
    /// `None` if the whole retry budget was lost. Draws nothing when loss
    /// is off (the message trivially arrives on the first attempt).
    pub fn delivery(&mut self) -> Option<u32> {
        if self.model.keyframe_loss <= 0.0 {
            return Some(0);
        }
        (0..self.model.attempts_budget())
            .find(|_| self.rng.gen::<f64>() >= self.model.keyframe_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_model_never_draws_or_drops() {
        let mut s = FaultState::new(FaultModel::none(), 7, 4);
        let mut pristine = s.rng.clone();
        for _ in 0..50 {
            assert_eq!(s.step_key_frame(), KeyFrameEvents::default());
            assert_eq!(s.delivery(), Some(0));
        }
        assert!(s.all_alive());
        // The RNG never advanced: fault-free runs are bitwise untouched.
        assert_eq!(s.rng.gen::<u64>(), pristine.gen::<u64>());
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let model = FaultModel {
            dropout_per_horizon: 0.3,
            rejoin_per_horizon: 0.5,
            keyframe_loss: 0.2,
            ..FaultModel::none()
        };
        let run = |seed: u64| -> (Vec<KeyFrameEvents>, Vec<Option<u32>>) {
            let mut s = FaultState::new(model, seed, 5);
            let mut events = Vec::new();
            let mut deliveries = Vec::new();
            for _ in 0..20 {
                events.push(s.step_key_frame());
                for _ in 0..5 {
                    deliveries.push(s.delivery());
                }
            }
            (events, deliveries)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds give different faults");
    }

    #[test]
    fn min_alive_floor_is_never_violated() {
        let model = FaultModel {
            dropout_per_horizon: 1.0, // every camera tries to die, every key frame
            min_alive: 2,
            ..FaultModel::none()
        };
        let mut s = FaultState::new(model, 3, 6);
        for _ in 0..30 {
            s.step_key_frame();
            let alive = s.alive().iter().filter(|&&a| a).count();
            assert!(alive >= 2, "alive fell to {alive}");
        }
    }

    #[test]
    fn certain_loss_exhausts_the_retry_budget() {
        let model = FaultModel {
            keyframe_loss: 1.0,
            max_retries: 3,
            ..FaultModel::none()
        };
        let mut s = FaultState::new(model, 9, 1);
        assert_eq!(s.delivery(), None);
        assert_eq!(model.attempts_budget(), 4);
        assert_eq!(model.deadline_ms(), 120.0);
    }

    #[test]
    fn dead_cameras_can_rejoin() {
        let model = FaultModel {
            dropout_per_horizon: 1.0,
            rejoin_per_horizon: 1.0,
            min_alive: 1,
            ..FaultModel::none()
        };
        let mut s = FaultState::new(model, 5, 3);
        let first = s.step_key_frame();
        assert_eq!(first.dropped.len(), 2, "floor keeps one alive");
        let second = s.step_key_frame();
        assert_eq!(second.rejoined.len(), 2, "everyone dead comes back");
        // With certain rejoin the alive count oscillates but never empties.
        assert!(s.alive().iter().filter(|&&a| a).count() >= 1);
    }

    #[test]
    fn validate_accepts_the_inactive_model() {
        assert_eq!(FaultModel::none().validate(1), Ok(()));
        assert_eq!(ServeFaultModel::none().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range_probabilities() {
        let model = FaultModel {
            dropout_per_horizon: 1.5,
            ..FaultModel::none()
        };
        assert_eq!(
            model.validate(4),
            Err(FaultModelError::ProbabilityOutOfRange {
                field: "dropout_per_horizon",
                value: 1.5,
            })
        );
        let model = FaultModel {
            keyframe_loss: f64::NAN,
            ..FaultModel::none()
        };
        assert!(matches!(
            model.validate(4),
            Err(FaultModelError::ProbabilityOutOfRange {
                field: "keyframe_loss",
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_min_alive_above_camera_count() {
        let model = FaultModel {
            min_alive: 5,
            ..FaultModel::none()
        };
        let err = model.validate(4).unwrap_err();
        assert_eq!(
            err,
            FaultModelError::MinAliveExceedsCameras {
                min_alive: 5,
                cameras: 4,
            }
        );
        assert!(err.to_string().contains("min_alive"));
        assert_eq!(model.validate(5), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_retry_timeout() {
        let model = FaultModel {
            retry_timeout_ms: -1.0,
            ..FaultModel::none()
        };
        assert_eq!(
            model.validate(1),
            Err(FaultModelError::BadRetryTimeout { value: -1.0 })
        );
    }

    #[test]
    fn serve_fault_validation_covers_every_constraint() {
        let base = ServeFaultModel::none();
        let bad_poison = ServeFaultModel {
            poison_per_frame: -0.1,
            ..base.clone()
        };
        assert_eq!(
            bad_poison.validate(),
            Err(ServeFaultError::PoisonOutOfRange { value: -0.1 })
        );
        let bad_crashes = ServeFaultModel {
            crash_at_us: vec![5_000_000, 5_000_000],
            ..base.clone()
        };
        assert_eq!(
            bad_crashes.validate(),
            Err(ServeFaultError::CrashTimesNotIncreasing)
        );
        let instant_restart = ServeFaultModel {
            crash_at_us: vec![5_000_000],
            restart_delay_us: 0,
            ..base.clone()
        };
        assert_eq!(
            instant_restart.validate(),
            Err(ServeFaultError::ZeroRestartDelay)
        );
        let bad_degrade = ServeFaultModel {
            degrades: vec![PoolDegrade {
                at_us: 0,
                capacity_factor: 0.0,
                service_inflation: 1.0,
            }],
            ..base.clone()
        };
        assert_eq!(
            bad_degrade.validate(),
            Err(ServeFaultError::BadCapacityFactor { value: 0.0 })
        );
        let bad_inflation = ServeFaultModel {
            degrades: vec![PoolDegrade {
                at_us: 0,
                capacity_factor: 1.0,
                service_inflation: f64::INFINITY,
            }],
            ..base.clone()
        };
        assert!(matches!(
            bad_inflation.validate(),
            Err(ServeFaultError::BadServiceInflation { .. })
        ));
        let unsorted = ServeFaultModel {
            degrades: vec![
                PoolDegrade {
                    at_us: 9,
                    capacity_factor: 0.5,
                    service_inflation: 1.0,
                },
                PoolDegrade {
                    at_us: 3,
                    capacity_factor: 1.0,
                    service_inflation: 1.0,
                },
            ],
            ..base
        };
        assert_eq!(
            unsorted.validate(),
            Err(ServeFaultError::DegradeTimesNotSorted)
        );
    }

    #[test]
    fn serve_fault_activity_tracks_every_domain() {
        assert!(!ServeFaultModel::none().is_active());
        let crash = ServeFaultModel {
            crash_at_us: vec![1],
            ..ServeFaultModel::none()
        };
        assert!(crash.is_active());
        let poison = ServeFaultModel {
            poison_per_frame: 0.1,
            ..ServeFaultModel::none()
        };
        assert!(poison.is_active());
        let degrade = ServeFaultModel {
            degrades: vec![PoolDegrade {
                at_us: 0,
                capacity_factor: 0.5,
                service_inflation: 1.0,
            }],
            ..ServeFaultModel::none()
        };
        assert!(degrade.is_active());
    }

    #[test]
    fn fault_stream_is_disjoint_from_world_and_camera_streams() {
        let fault = FaultState::new(FaultModel::none(), 42, 4);
        let first = fault.rng.clone().gen::<u64>();
        let world = ChaCha8Rng::seed_from_u64(42).gen::<u64>();
        assert_ne!(first, world, "fault stream collides with the world");
        for i in 0..8 {
            let cam = crate::worker::CameraWorker::stream_rng(42, i).gen::<u64>();
            assert_ne!(first, cam, "fault stream collides with camera {i}");
        }
    }
}
