//! The simulated 2-D world: vehicles moving along routes.

use crate::trajectory::{FollowingModel, Route, SpawnConfig, TrafficLight};
use mvs_geometry::Point2;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A vehicle in the world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldObject {
    /// Globally unique identity (never reused within a run).
    pub id: u64,
    /// Index of the route being followed.
    pub route: usize,
    /// Arc length along the route, metres.
    pub progress_m: f64,
    /// Physical length of the vehicle, metres (its projected long side).
    pub length_m: f64,
    /// Physical height, metres (drives projected box height).
    pub height_m: f64,
}

/// One route with its optional light and arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lane {
    /// The path vehicles follow.
    pub route: Route,
    /// Signal gating this route, if any.
    pub light: Option<TrafficLight>,
    /// Arrival process feeding this route.
    pub spawn: SpawnConfig,
}

/// The world: lanes, live vehicles, and simulated time.
///
/// Stepped at the camera frame rate; vehicle motion uses a simple
/// car-following model so red lights produce realistic queues and platoons
/// (the workload dynamics of Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    lanes: Vec<Lane>,
    following: FollowingModel,
    objects: Vec<WorldObject>,
    time_s: f64,
    next_id: u64,
}

impl World {
    /// Creates an empty world over the given lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty.
    pub fn new(lanes: Vec<Lane>, following: FollowingModel) -> Self {
        assert!(!lanes.is_empty(), "world needs at least one lane");
        World {
            lanes,
            following,
            objects: Vec::new(),
            time_s: 0.0,
            next_id: 0,
        }
    }

    /// Current simulated time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Live vehicles.
    pub fn objects(&self) -> &[WorldObject] {
        &self.objects
    }

    /// The lanes.
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// World position of an object.
    ///
    /// # Panics
    ///
    /// Panics if the object's route index is invalid (impossible for
    /// objects produced by this world).
    pub fn position_of(&self, obj: &WorldObject) -> Point2 {
        self.lanes[obj.route].route.position_at(obj.progress_m)
    }

    /// Direction of travel of an object.
    pub fn direction_of(&self, obj: &WorldObject) -> Point2 {
        self.lanes[obj.route].route.direction_at(obj.progress_m)
    }

    /// Advances the world by `dt_s` seconds: moves vehicles (respecting
    /// leaders and lights), despawns finished ones, and spawns arrivals.
    pub fn step<R: Rng + ?Sized>(&mut self, dt_s: f64, rng: &mut R) {
        assert!(dt_s > 0.0, "time step must be positive");
        // Move, lane by lane, front-to-back so leader gaps use current-step
        // leader positions consistently.
        for lane_idx in 0..self.lanes.len() {
            let lane = &self.lanes[lane_idx];
            let nominal = lane.route.speed_mps;
            // Vehicles on this lane sorted by progress descending (leader
            // first).
            let mut idxs: Vec<usize> = (0..self.objects.len())
                .filter(|&i| self.objects[i].route == lane_idx)
                .collect();
            idxs.sort_by(|&a, &b| {
                self.objects[b]
                    .progress_m
                    .partial_cmp(&self.objects[a].progress_m)
                    .expect("finite progress")
            });
            let mut leader_rear: Option<f64> = None;
            for &i in &idxs {
                let s = self.objects[i].progress_m;
                let gap = leader_rear.map(|r| r - s);
                let light = lane.light.as_ref().map(|l| (l, self.time_s));
                let speed = self.following.effective_speed(nominal, s, gap, light);
                self.objects[i].progress_m += speed * dt_s;
                leader_rear = Some(self.objects[i].progress_m - self.objects[i].length_m);
            }
        }
        // Despawn vehicles past the end of their route.
        let lanes = &self.lanes;
        self.objects
            .retain(|o| o.progress_m < lanes[o.route].route.length());
        // Spawn new arrivals.
        for lane_idx in 0..self.lanes.len() {
            let spawn = self.lanes[lane_idx].spawn;
            if spawn.rate_per_s <= 0.0 {
                continue;
            }
            let p = (spawn.rate_per_s * dt_s).min(1.0);
            if !rng.gen_bool(p) {
                continue;
            }
            // Respect the entry headway.
            let blocked = self
                .objects
                .iter()
                .any(|o| o.route == lane_idx && o.progress_m - o.length_m < spawn.min_gap_m);
            if blocked {
                continue;
            }
            let id = self.next_id;
            self.next_id += 1;
            self.objects.push(WorldObject {
                id,
                route: lane_idx,
                progress_m: 0.0,
                length_m: rng.gen_range(3.8..5.2),
                height_m: rng.gen_range(1.4..2.1),
            });
        }
        self.time_s += dt_s;
    }

    /// Injects a vehicle directly (used by tests and warm-started runs).
    pub fn spawn_at(&mut self, route: usize, progress_m: f64, length_m: f64, height_m: f64) -> u64 {
        assert!(route < self.lanes.len(), "route index out of range");
        let id = self.next_id;
        self.next_id += 1;
        self.objects.push(WorldObject {
            id,
            route,
            progress_m,
            length_m,
            height_m,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn straight_lane(rate: f64) -> Lane {
        Lane {
            route: Route::new(vec![Point2::new(0.0, 0.0), Point2::new(200.0, 0.0)], 10.0),
            light: None,
            spawn: SpawnConfig {
                rate_per_s: rate,
                min_gap_m: 8.0,
            },
        }
    }

    #[test]
    fn vehicles_advance_and_despawn() {
        let mut w = World::new(vec![straight_lane(0.0)], FollowingModel::default());
        let id = w.spawn_at(0, 0.0, 4.5, 1.6);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..10 {
            w.step(0.1, &mut rng); // 1 s total at 10 m/s
        }
        let o = &w.objects()[0];
        assert_eq!(o.id, id);
        assert!((o.progress_m - 10.0).abs() < 1e-9);
        // Run until past the end: despawned.
        for _ in 0..300 {
            w.step(0.1, &mut rng);
        }
        assert!(w.objects().is_empty());
    }

    #[test]
    fn follower_respects_leader_gap() {
        let mut w = World::new(vec![straight_lane(0.0)], FollowingModel::default());
        w.spawn_at(0, 50.0, 4.5, 1.6); // leader
        w.spawn_at(0, 45.0, 4.5, 1.6); // follower 5 m behind (gap < stop)
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let before = w.objects()[1].progress_m;
        w.step(0.1, &mut rng);
        // gap = 50 - 4.5 - 45 = 0.5 < stop_gap → follower frozen.
        assert_eq!(w.objects()[1].progress_m, before);
        // Leader cruised.
        assert!(w.objects()[0].progress_m > 50.0);
    }

    #[test]
    fn red_light_builds_a_queue_and_green_releases_it() {
        let light = TrafficLight {
            period_s: 40.0,
            green_fraction: 0.5,
            offset_s: 20.0, // red during [0, 20)
            stop_line_s: 100.0,
        };
        let lane = Lane {
            light: Some(light),
            ..straight_lane(0.0)
        };
        let mut w = World::new(vec![lane], FollowingModel::default());
        w.spawn_at(0, 80.0, 4.5, 1.6);
        w.spawn_at(0, 60.0, 4.5, 1.6);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // 15 s of red: both must be stopped near the line, in order.
        for _ in 0..150 {
            w.step(0.1, &mut rng);
        }
        let lead = w.objects()[0].progress_m;
        let follow = w.objects()[1].progress_m;
        assert!(lead < 100.0, "leader stopped before the line: {lead}");
        assert!(follow < lead, "queue preserves order");
        assert!(lead > 90.0, "leader crept close to the line: {lead}");
        // 10 more seconds reach the green phase: queue discharges.
        for _ in 0..100 {
            w.step(0.1, &mut rng);
        }
        assert!(w.objects().iter().all(|o| o.progress_m > 100.0));
    }

    #[test]
    fn spawning_respects_headway() {
        let mut w = World::new(vec![straight_lane(10.0)], FollowingModel::default());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Extremely high rate, but headway caps density near the entry.
        for _ in 0..50 {
            w.step(0.1, &mut rng);
        }
        let mut entries: Vec<f64> = w
            .objects()
            .iter()
            .map(|o| o.progress_m)
            .filter(|&p| p < 30.0)
            .collect();
        entries.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for pair in entries.windows(2) {
            assert!(pair[1] - pair[0] > 3.0, "vehicles overlap: {entries:?}");
        }
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut w = World::new(vec![straight_lane(5.0)], FollowingModel::default());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            w.step(0.1, &mut rng);
        }
        let mut ids: Vec<u64> = w.objects().iter().map(|o| o.id).collect();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut w = World::new(vec![straight_lane(3.0)], FollowingModel::default());
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..100 {
                w.step(0.1, &mut rng);
            }
            w
        };
        assert_eq!(run(7), run(7));
    }
}
