//! End-to-end response delay and effective frame rate.
//!
//! The paper's motivation (Sec. I): *"Faster frame processing speed not
//! only improves the object recognition and tracking fidelity, but also
//! helps reduce the end-to-end system response delay to physical events.
//! Supporting a higher frame rate entails lowering frame processing
//! latency."* This module makes that argument quantitative: it replays a
//! per-frame DNN-latency series through a single-GPU queueing model and
//! reports what a camera actually delivers — completion delay relative to
//! capture time and the frame rate it sustains.

use serde::{Deserialize, Serialize};

/// What the camera does when a new frame arrives while the GPU is busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueuePolicy {
    /// Frames wait in FIFO order (delay grows without bound when the GPU
    /// is oversubscribed).
    Queue,
    /// Only the latest frame is kept; older waiting frames are dropped
    /// (the standard live-analytics policy — stale frames are worthless).
    DropToLatest,
}

/// Replay statistics for one camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Frames whose processing completed.
    pub processed: usize,
    /// Frames dropped before processing (always 0 under [`QueuePolicy::Queue`]).
    pub dropped: usize,
    /// Mean capture→completion delay of processed frames, ms.
    pub mean_delay_ms: f64,
    /// Worst capture→completion delay, ms.
    pub max_delay_ms: f64,
    /// Frames processed per second of capture time.
    pub effective_fps: f64,
}

/// Replays a per-frame DNN latency series through a single-GPU queue.
///
/// Frame `k` is captured at `k × frame_period_ms`; the GPU processes one
/// frame at a time, taking the series' latency for that frame. Zero-latency
/// frames still complete (instantaneously).
///
/// # Panics
///
/// Panics if the period is not positive or any latency is negative/not
/// finite.
///
/// # Examples
///
/// ```
/// use mvs_sim::{replay_response, QueuePolicy};
///
/// // A camera that needs 250 ms per frame at a 100 ms capture period can
/// // only keep up with every third frame.
/// let latencies = vec![250.0; 30];
/// let stats = replay_response(&latencies, 100.0, QueuePolicy::DropToLatest);
/// assert!(stats.effective_fps < 5.0);
/// assert!(stats.dropped > 0);
/// ```
pub fn replay_response(
    latency_series_ms: &[f64],
    frame_period_ms: f64,
    policy: QueuePolicy,
) -> ResponseStats {
    assert!(frame_period_ms > 0.0, "frame period must be positive");
    assert!(
        latency_series_ms.iter().all(|v| v.is_finite() && *v >= 0.0),
        "latencies must be finite and non-negative"
    );
    let mut gpu_free_at = 0.0f64;
    let mut pending: Option<(usize, f64)> = None; // (frame index, capture time)
    let mut processed = 0usize;
    let mut dropped = 0usize;
    let mut total_delay = 0.0;
    let mut max_delay = 0.0f64;

    let mut start = |frame: usize, captured: f64, gpu_free_at: &mut f64| {
        let begin = gpu_free_at.max(captured);
        let done = begin + latency_series_ms[frame];
        *gpu_free_at = done;
        let delay = done - captured;
        total_delay += delay;
        max_delay = max_delay.max(delay);
        processed += 1;
    };

    for (frame, _) in latency_series_ms.iter().enumerate() {
        let captured = frame as f64 * frame_period_ms;
        // Drain whatever the policy kept, if the GPU freed up by now.
        if let Some((pframe, pcaptured)) = pending {
            if gpu_free_at <= captured {
                start(pframe, pcaptured, &mut gpu_free_at);
                pending = None;
            }
        }
        if gpu_free_at <= captured {
            start(frame, captured, &mut gpu_free_at);
        } else {
            match policy {
                QueuePolicy::Queue => {
                    // FIFO: process as soon as the GPU frees, in order.
                    start(frame, captured, &mut gpu_free_at);
                }
                QueuePolicy::DropToLatest => {
                    if pending.take().is_some() {
                        dropped += 1;
                    }
                    pending = Some((frame, captured));
                }
            }
        }
    }
    if let Some((pframe, pcaptured)) = pending {
        start(pframe, pcaptured, &mut gpu_free_at);
    }

    let capture_span_s = latency_series_ms.len() as f64 * frame_period_ms / 1e3;
    ResponseStats {
        processed,
        dropped,
        mean_delay_ms: if processed > 0 {
            total_delay / processed as f64
        } else {
            0.0
        },
        max_delay_ms: max_delay,
        effective_fps: processed as f64 / capture_span_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_camera_keeps_up() {
        // 40 ms work at a 100 ms period: no queueing, delay = latency.
        let stats = replay_response(&[40.0; 50], 100.0, QueuePolicy::DropToLatest);
        assert_eq!(stats.processed, 50);
        assert_eq!(stats.dropped, 0);
        assert!((stats.mean_delay_ms - 40.0).abs() < 1e-9);
        assert!((stats.effective_fps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn oversubscribed_camera_drops_under_drop_policy() {
        // 650 ms work at a 100 ms period: roughly one frame in 6.5 works.
        let stats = replay_response(&[650.0; 100], 100.0, QueuePolicy::DropToLatest);
        assert!(stats.dropped > 50, "dropped {}", stats.dropped);
        assert!(stats.effective_fps < 2.0, "fps {}", stats.effective_fps);
        // Delay stays bounded: the latest-frame policy never lets a frame
        // wait behind more than one in-flight inspection.
        assert!(stats.max_delay_ms < 2.0 * 650.0 + 100.0);
    }

    #[test]
    fn oversubscribed_queue_policy_delay_grows_without_bound() {
        let q = replay_response(&[650.0; 100], 100.0, QueuePolicy::Queue);
        assert_eq!(q.processed, 100);
        assert_eq!(q.dropped, 0);
        // The 100th frame waits behind 99 others.
        assert!(q.max_delay_ms > 50_000.0);
    }

    #[test]
    fn mixed_series_matches_hand_computation() {
        // Frames at t=0,100,200 with latencies 150, 30, 10 (drop policy):
        // f0: 0→150 (delay 150). f1 (t=100): busy until 150 → pending;
        // f2 (t=200): gpu free at 150 ≤ 200 → pending f1 starts at 150,
        // done 180 (delay 80); then f2 at 200→210 (delay 10).
        let stats = replay_response(&[150.0, 30.0, 10.0], 100.0, QueuePolicy::DropToLatest);
        assert_eq!(stats.processed, 3);
        assert_eq!(stats.dropped, 0);
        assert!((stats.mean_delay_ms - (150.0 + 80.0 + 10.0) / 3.0).abs() < 1e-9);
        assert!((stats.max_delay_ms - 150.0).abs() < 1e-9);
    }

    #[test]
    fn empty_series_is_benign() {
        let stats = replay_response(&[], 100.0, QueuePolicy::Queue);
        assert_eq!(stats.processed, 0);
        assert_eq!(stats.mean_delay_ms, 0.0);
    }

    #[test]
    #[should_panic(expected = "frame period must be positive")]
    fn rejects_zero_period() {
        replay_response(&[1.0], 0.0, QueuePolicy::Queue);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_latency() {
        replay_response(&[-1.0], 100.0, QueuePolicy::Queue);
    }
}
