//! Vehicle routes, traffic lights, and arrival processes.
//!
//! The AI City Challenge scenes the paper evaluates on are traffic scenes:
//! signalized intersections with platooned flow (S1), sparse residential
//! traffic (S2), and a busy fork road (S3). This module provides the
//! world-side vocabulary to reproduce those dynamics: polyline [`Route`]s,
//! [`TrafficLight`]s that gate them (producing the strong temporal workload
//! variation of Fig. 2), and Poisson [`SpawnConfig`]s.

use mvs_geometry::Point2;
use serde::{Deserialize, Serialize};

/// A polyline path through the world that vehicles follow, parameterized by
/// arc length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    waypoints: Vec<Point2>,
    /// Cumulative arc length at each waypoint; `lengths[0] == 0`.
    lengths: Vec<f64>,
    /// Nominal cruise speed in m/s.
    pub speed_mps: f64,
}

impl Route {
    /// Creates a route from at least two waypoints.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two waypoints are given, consecutive waypoints
    /// coincide, or the speed is not positive.
    pub fn new(waypoints: Vec<Point2>, speed_mps: f64) -> Self {
        assert!(waypoints.len() >= 2, "route needs at least two waypoints");
        assert!(speed_mps > 0.0, "route speed must be positive");
        let mut lengths = Vec::with_capacity(waypoints.len());
        lengths.push(0.0);
        for w in waypoints.windows(2) {
            let seg = w[0].distance(w[1]);
            assert!(seg > 1e-9, "consecutive waypoints must be distinct");
            lengths.push(lengths.last().expect("non-empty") + seg);
        }
        Route {
            waypoints,
            lengths,
            speed_mps,
        }
    }

    /// Total route length in metres.
    pub fn length(&self) -> f64 {
        *self.lengths.last().expect("non-empty")
    }

    /// Position at arc-length `s` (clamped to the route's ends).
    pub fn position_at(&self, s: f64) -> Point2 {
        let s = s.clamp(0.0, self.length());
        // Find the segment containing s.
        let idx = match self
            .lengths
            .binary_search_by(|l| l.partial_cmp(&s).expect("finite lengths"))
        {
            Ok(i) => i.min(self.waypoints.len() - 2),
            Err(i) => i.saturating_sub(1).min(self.waypoints.len() - 2),
        };
        let seg_len = self.lengths[idx + 1] - self.lengths[idx];
        let t = (s - self.lengths[idx]) / seg_len;
        self.waypoints[idx].lerp(self.waypoints[idx + 1], t)
    }

    /// Unit direction of travel at arc-length `s`.
    pub fn direction_at(&self, s: f64) -> Point2 {
        let s = s.clamp(0.0, self.length());
        let idx = self
            .lengths
            .windows(2)
            .position(|w| s <= w[1])
            .unwrap_or(self.waypoints.len() - 2);
        (self.waypoints[idx + 1] - self.waypoints[idx])
            .normalized()
            .expect("waypoints are distinct")
    }
}

/// A fixed-cycle traffic light gating a route at a stop line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficLight {
    /// Full signal period in seconds.
    pub period_s: f64,
    /// Fraction of the period that is green, in `(0, 1)`.
    pub green_fraction: f64,
    /// Phase offset in seconds (lets opposing roads alternate).
    pub offset_s: f64,
    /// Arc length of the stop line along the gated route.
    pub stop_line_s: f64,
}

impl TrafficLight {
    /// Whether the light shows green at absolute time `t` seconds.
    pub fn is_green(&self, t: f64) -> bool {
        let phase = (t + self.offset_s).rem_euclid(self.period_s) / self.period_s;
        phase < self.green_fraction
    }
}

/// Poisson arrival process for one route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpawnConfig {
    /// Mean arrivals per second.
    pub rate_per_s: f64,
    /// Minimum headway (metres) to the previous vehicle before a new one
    /// may enter.
    pub min_gap_m: f64,
}

/// Car-following parameters shared by all vehicles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FollowingModel {
    /// Bumper-to-bumper distance below which a vehicle fully stops.
    pub stop_gap_m: f64,
    /// Distance below which a vehicle halves its speed.
    pub slow_gap_m: f64,
    /// How far before the stop line a red light starts to matter.
    pub red_zone_m: f64,
}

impl Default for FollowingModel {
    fn default() -> Self {
        FollowingModel {
            stop_gap_m: 7.0,
            slow_gap_m: 15.0,
            red_zone_m: 40.0,
        }
    }
}

impl FollowingModel {
    /// Effective speed for a vehicle at arc length `s` on a route, given
    /// its nominal speed, the gap to its leader (`None` when unobstructed)
    /// and the gating light (`None` when the route is unsignalled).
    pub fn effective_speed(
        &self,
        nominal_mps: f64,
        s: f64,
        leader_gap_m: Option<f64>,
        light: Option<(&TrafficLight, f64)>,
    ) -> f64 {
        let mut speed = nominal_mps;
        if let Some(gap) = leader_gap_m {
            if gap <= self.stop_gap_m {
                return 0.0;
            }
            if gap <= self.slow_gap_m {
                speed *= 0.5;
            }
        }
        if let Some((light, t)) = light {
            if !light.is_green(t) {
                let to_stop = light.stop_line_s - s;
                if to_stop > 0.0 && to_stop <= self.red_zone_m {
                    // Approaching a red light: creep, then stop at the line.
                    if to_stop <= self.stop_gap_m {
                        return 0.0;
                    }
                    speed = speed.min(nominal_mps * 0.4);
                }
            }
        }
        speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_route() -> Route {
        Route::new(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(10.0, 0.0),
                Point2::new(10.0, 10.0),
            ],
            10.0,
        )
    }

    #[test]
    fn arc_length_parameterization() {
        let r = l_route();
        assert_eq!(r.length(), 20.0);
        assert_eq!(r.position_at(0.0), Point2::new(0.0, 0.0));
        assert_eq!(r.position_at(5.0), Point2::new(5.0, 0.0));
        assert_eq!(r.position_at(10.0), Point2::new(10.0, 0.0));
        assert_eq!(r.position_at(15.0), Point2::new(10.0, 5.0));
        // Clamped at both ends.
        assert_eq!(r.position_at(-3.0), Point2::new(0.0, 0.0));
        assert_eq!(r.position_at(99.0), Point2::new(10.0, 10.0));
    }

    #[test]
    fn direction_follows_segments() {
        let r = l_route();
        assert_eq!(r.direction_at(2.0), Point2::new(1.0, 0.0));
        assert_eq!(r.direction_at(12.0), Point2::new(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "at least two waypoints")]
    fn rejects_single_waypoint() {
        Route::new(vec![Point2::ORIGIN], 10.0);
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn rejects_duplicate_waypoints() {
        Route::new(vec![Point2::ORIGIN, Point2::ORIGIN], 10.0);
    }

    #[test]
    fn light_cycles() {
        let light = TrafficLight {
            period_s: 30.0,
            green_fraction: 0.5,
            offset_s: 0.0,
            stop_line_s: 50.0,
        };
        assert!(light.is_green(0.0));
        assert!(light.is_green(14.9));
        assert!(!light.is_green(15.1));
        assert!(light.is_green(30.1)); // next cycle
                                       // Offset shifts the phase.
        let shifted = TrafficLight {
            offset_s: 15.0,
            ..light
        };
        assert!(!shifted.is_green(0.0));
    }

    #[test]
    fn following_model_brakes_for_leader() {
        let f = FollowingModel::default();
        assert_eq!(f.effective_speed(10.0, 0.0, None, None), 10.0);
        assert_eq!(f.effective_speed(10.0, 0.0, Some(5.0), None), 0.0);
        assert_eq!(f.effective_speed(10.0, 0.0, Some(10.0), None), 5.0);
        assert_eq!(f.effective_speed(10.0, 0.0, Some(50.0), None), 10.0);
    }

    #[test]
    fn following_model_stops_at_red() {
        let f = FollowingModel::default();
        let light = TrafficLight {
            period_s: 30.0,
            green_fraction: 0.5,
            offset_s: 0.0,
            stop_line_s: 100.0,
        };
        // Red at t=20. Vehicle just before the stop line → halt.
        assert_eq!(
            f.effective_speed(10.0, 95.0, None, Some((&light, 20.0))),
            0.0
        );
        // Red but far away → cruise.
        assert_eq!(
            f.effective_speed(10.0, 10.0, None, Some((&light, 20.0))),
            10.0
        );
        // Green → cruise through.
        assert_eq!(
            f.effective_speed(10.0, 95.0, None, Some((&light, 5.0))),
            10.0
        );
        // Past the stop line (inside the intersection) → keep moving.
        assert_eq!(
            f.effective_speed(10.0, 105.0, None, Some((&light, 20.0))),
            10.0
        );
    }
}
