//! The end-to-end frame-by-frame pipeline (Fig. 5).
//!
//! Drives a [`Scenario`] through the full system: key frames run full-frame
//! inspection, upload object lists to the central scheduler, associate
//! across cameras, and run the BALB central stage; regular frames run
//! optical-flow tracking, tracking-based slicing, batched partial-frame
//! inspection, and the BALB distributed stage (camera masks, new-object
//! probing, takeover). The same runtime executes every baseline of the
//! paper's evaluation, selected by [`Algorithm`].
//!
//! # Threading model
//!
//! Each camera's per-frame work (view extraction, optical flow, detection,
//! tracking, its distributed-stage scan) runs on a [`CameraWorker`] that
//! owns all of that camera's mutable state, including a private
//! deterministic RNG stream. Workers fan out across up to
//! [`PipelineConfig::threads`] scoped threads and their outputs are merged
//! serially in camera-index order, so a run's results are bitwise
//! identical at any thread count. Cross-camera coordination (association,
//! the BALB central stage, takeover bookkeeping) stays on the calling
//! thread.

use crate::correspond::{CorrespondenceData, TrainedAssociation};
use crate::faults::{FaultModel, FaultState};
use crate::masks::{MaskPrecompute, StaticWorldPartition};
use crate::messages::{AssignmentMessage, ObjectRecord, UploadMessage};
use crate::network::NetworkModel;
use crate::scenario::Scenario;
use crate::worker::{par_map, resolve_threads, CameraWorker, FrameScratch};
use crate::world::World;
use mvs_core::{
    balb_sharded_pipelined, balb_sharded_threaded, scan_takeovers_into, BalbSolver, CameraId,
    CameraInfo, MvsProblem, ObjectId, ObjectInfo, OverlapGraph, ShadowTrack, ShadowVerdict,
    ShardPlan, ShardedBalbSolver,
};
use mvs_geometry::{BBox, SizeClass};
use mvs_metrics::{
    DegradationCounters, LatencySeries, OverheadBreakdown, OverheadSample, RecallAccumulator,
};
use mvs_trace::{span_into, Stage, Trace, TraceRecorder};
use mvs_vision::{
    slice_regions_traced_into, Detection, DetectionModel, FlowTracker, GroundTruthObject,
    LatencyProfile, RegionTask, SimulatedDetector, SizeCounts, TrackerConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::time::Instant;

/// Which scheduling algorithm the pipeline runs (the paper's comparison
/// set, Sec. IV-C/D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Full-frame detection on every frame of every camera.
    Full,
    /// Per-camera BALB machinery without cross-camera coordination.
    BalbInd,
    /// BALB central stage only (no distributed stage).
    BalbCen,
    /// The complete BALB system.
    Balb,
    /// Offline static spatial partitioning: the paper's SP baseline. Uses
    /// the same (imperfect) cross-camera models as BALB to build cell
    /// masks, but with a fixed processing-speed priority instead of the
    /// load-aware latency order — the allocation never reacts to load.
    StaticPartition,
    /// Ablation-only SP variant granted oracle world geometry (true view
    /// polygons and ground-truth object positions) instead of the learned
    /// models; isolates how much of SP's deficit is model error vs.
    /// load-obliviousness.
    StaticPartitionOracle,
}

impl Algorithm {
    /// All algorithms in presentation order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Full,
        Algorithm::BalbInd,
        Algorithm::BalbCen,
        Algorithm::Balb,
        Algorithm::StaticPartition,
        Algorithm::StaticPartitionOracle,
    ];
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Full => write!(f, "Full"),
            Algorithm::BalbInd => write!(f, "BALB-Ind"),
            Algorithm::BalbCen => write!(f, "BALB-Cen"),
            Algorithm::Balb => write!(f, "BALB"),
            Algorithm::StaticPartition => write!(f, "SP"),
            Algorithm::StaticPartitionOracle => write!(f, "SP-Oracle"),
        }
    }
}

/// Modeled costs of pipeline components we simulate rather than run (the
/// optical flow and GPU batch assembly of Table II). The scheduler itself
/// (central + distributed stages) is *measured*, not modeled — unless
/// [`PipelineConfig::measured_overheads`] is off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Fixed per-frame cost of dense optical flow on reduced resolution.
    pub flow_base_ms: f64,
    /// Additional tracking cost per live track.
    pub tracking_per_object_ms: f64,
    /// Batch-assembly cost per crop (extract + resize + pack).
    pub batch_per_crop_ms: f64,
    /// Batch-assembly cost per launched batch.
    pub batch_per_batch_ms: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            flow_base_ms: 9.0,
            tracking_per_object_ms: 1.1,
            batch_per_crop_ms: 0.9,
            batch_per_batch_ms: 2.2,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Scheduling algorithm under test.
    pub algorithm: Algorithm,
    /// Scheduling-horizon length `T` in frames (key frame + `T-1` regular).
    pub horizon: usize,
    /// Detector quality model.
    pub detection: DetectionModel,
    /// Optical-flow estimation noise (σ, pixels).
    pub flow_noise_px: f64,
    /// Neighbours for the association KNN models.
    pub assoc_k: usize,
    /// IoU threshold for cross-camera match acceptance.
    pub assoc_iou: f64,
    /// Cell size of the distributed-stage masks, pixels.
    pub grid_cell_px: u32,
    /// Seconds of simulation used to train the association models (the
    /// "first half" of the paper's protocol).
    pub train_s: f64,
    /// Seconds of simulation evaluated (the "second half").
    pub eval_s: f64,
    /// RNG seed for the whole run.
    pub seed: u64,
    /// Force batch limits to one (ablation: batching contribution).
    pub disable_batching: bool,
    /// Number of cameras assigned per object (1 = the paper's BALB; ≥2 =
    /// the Sec. V redundant-assignment extension for occlusion
    /// robustness). Only affects [`Algorithm::Balb`] / [`Algorithm::BalbCen`].
    pub redundancy: usize,
    /// Per-camera processing lag in frames (Sec. V, "Imperfect
    /// synchronization"): camera `i` processes the scene as it looked
    /// `camera_lag_frames[i]` frames ago. Empty = perfectly synchronized.
    /// Missing entries default to zero.
    pub camera_lag_frames: Vec<usize>,
    /// Worker threads for the per-camera stages. `0` = auto: the
    /// `MVS_THREADS` environment variable if set to a positive integer,
    /// else the machine's available parallelism. Results are identical at
    /// any value.
    pub threads: usize,
    /// When true (the default), the central- and distributed-stage
    /// scheduler costs are measured wall-clock, like the paper's Table II.
    /// When false they are charged as zero, which makes the whole
    /// [`PipelineResult`] a pure function of `(scenario, config)` — useful
    /// for bitwise reproducibility checks.
    pub measured_overheads: bool,
    /// Per-camera tracker configuration.
    pub tracker: TrackerConfig,
    /// Camera↔scheduler link model.
    pub network: NetworkModel,
    /// Modeled component costs for Table II.
    pub overhead: OverheadModel,
    /// Fault injection: camera dropout/rejoin and key-frame message loss.
    /// [`FaultModel::none`] (the default) makes the run bitwise identical
    /// to the fault-free pipeline.
    pub faults: FaultModel,
    /// When true (the default), the central stage keeps a persistent
    /// [`BalbSolver`] that warm-starts each horizon's schedule from the
    /// previous one (falling back to a cold solve on large scene changes).
    /// Results are bitwise identical either way — this only trades compute;
    /// turn it off to force a cold solve every key frame. Only affects
    /// fully-synced horizons of [`Algorithm::Balb`] / [`Algorithm::BalbCen`]
    /// with `redundancy == 1`; degraded or redundant horizons always solve
    /// cold.
    pub warm_start: bool,
    /// When true, fully-synced single-owner horizons solve the central
    /// stage shard-by-shard along the instance's view-overlap components
    /// (in parallel across [`PipelineConfig::threads`]) instead of as one
    /// monolithic BALB instance — the city-scale path. Results are bitwise
    /// identical either way: instance-coverage shard plans are always
    /// exact, so the sharded schedule reproduces `balb_central` (see
    /// `mvs_core::balb_sharded`). Degraded or redundant horizons fall back
    /// to the existing cold paths. Default false.
    pub shard_solver: bool,
    /// When true and `threads > 1`, key frames overlap the central BALB
    /// solve with the (solve-independent) uplink-leg message encoding on a
    /// scoped thread, and the sharded cold solve merges shards as they
    /// complete instead of in plan order. The overlap hides the solve
    /// behind a sync leg the pipeline already models, so it is
    /// semantically a no-op: results and traces are bitwise identical to
    /// the sequential path at any thread count (with one thread the solve
    /// simply runs inline first). Default false.
    #[serde(default)]
    pub pipelined: bool,
}

impl PipelineConfig {
    /// The paper's operating point for a given algorithm: `T = 10` at
    /// 10 FPS, KNN `k = 3`.
    pub fn paper_default(algorithm: Algorithm) -> Self {
        PipelineConfig {
            algorithm,
            horizon: 10,
            detection: DetectionModel::default(),
            flow_noise_px: 1.0,
            assoc_k: 3,
            assoc_iou: 0.15,
            grid_cell_px: 64,
            train_s: 90.0,
            eval_s: 90.0,
            seed: 17,
            disable_batching: false,
            redundancy: 1,
            camera_lag_frames: Vec::new(),
            threads: 0,
            measured_overheads: true,
            tracker: TrackerConfig::default(),
            network: NetworkModel::default(),
            overhead: OverheadModel::default(),
            faults: FaultModel::none(),
            warm_start: true,
            shard_solver: false,
            pipelined: false,
        }
    }
}

/// Distributed-stage activity counters (diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Key frames executed.
    pub key_frames: usize,
    /// Takeovers performed by the distributed stage.
    pub takeovers: usize,
    /// New-region probes issued at regular frames.
    pub probes: usize,
    /// Capture-clock frames skipped without processing (serving front-end
    /// drops; always zero for [`run_pipeline`], which processes every
    /// frame).
    #[serde(default)]
    pub skipped_frames: usize,
}

/// Results of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineResult {
    /// The algorithm that produced these numbers.
    pub algorithm: Algorithm,
    /// Evaluated frames.
    pub frames: usize,
    /// Object recall over the evaluation (Fig. 12 metric).
    pub recall: f64,
    /// Mean per-frame DNN latency on the slowest camera (Fig. 13 metric).
    pub mean_latency_ms: f64,
    /// Full per-frame system-latency series.
    pub latency: LatencySeries,
    /// Mean per-frame DNN latency per camera.
    pub per_camera_mean_ms: Vec<f64>,
    /// Full per-frame DNN latency series per camera (one inner vector per
    /// camera, one sample per evaluated frame) — input to the
    /// response-delay replay of [`replay_response`](crate::replay_response).
    pub per_camera_series_ms: Vec<Vec<f64>>,
    /// Mean per-frame overheads (Table II).
    pub overhead_mean: OverheadSample,
    /// Distributed-stage activity counters.
    pub stats: PipelineStats,
    /// Graceful-degradation bookkeeping (all zeros for fault-free runs).
    pub degradation: DegradationCounters,
}

/// Runs the pipeline for `config` on `scenario`.
///
/// Deterministic for a fixed `(scenario, config)` pair, independent of
/// [`PipelineConfig::threads`]; with
/// [`PipelineConfig::measured_overheads`] off the result is additionally
/// bitwise reproducible across runs and machines.
///
/// # Panics
///
/// Panics on nonsensical configuration (zero horizon, empty scenario) and
/// if association-model training fails (cannot happen for the built-in
/// scenarios, whose cameras always see traffic during training).
pub fn run_pipeline(scenario: &Scenario, config: &PipelineConfig) -> PipelineResult {
    assert!(config.horizon > 0, "horizon must be positive");
    Pipeline::new(scenario, config).run().0
}

/// Runs the pipeline with structured tracing enabled and returns the
/// per-stage span stream alongside the normal result.
///
/// The [`Trace`] timestamps live on the sim clock (frame `f` starts at
/// `f / fps` seconds) and span durations are the *modeled* stage costs, so
/// the trace — like the result — is a deterministic function of
/// `(scenario, config)` at any thread count. Stages whose cost the
/// simulator measures wall-clock (central solve, distributed scan) appear
/// with duration zero; with [`PipelineConfig::measured_overheads`] off the
/// trace is additionally bitwise reproducible across machines, which is
/// what the golden-trace suite snapshots.
///
/// # Panics
///
/// Same conditions as [`run_pipeline`].
pub fn run_pipeline_traced(
    scenario: &Scenario,
    config: &PipelineConfig,
) -> (PipelineResult, Trace) {
    assert!(config.horizon > 0, "horizon must be positive");
    let mut pipeline = Pipeline::new(scenario, config);
    pipeline.enable_tracing();
    let (result, trace) = pipeline.run();
    (result, trace.expect("tracing was enabled"))
}

/// Consecutive "gone from owner" frames required before a takeover; one
/// noisy classifier answer must not steal a tracked object.
const TAKEOVER_HYSTERESIS: u32 = 3;

/// One camera's output for a regular frame, produced on a pool thread and
/// merged in camera-index order.
struct RegularOutput {
    latency_ms: f64,
    detected: Vec<u64>,
    /// Global object indices this camera took over (already seeded in the
    /// worker's own tracker; the shared assignment is extended at merge).
    taken: Vec<usize>,
    probes: usize,
    sample: OverheadSample,
}

struct Pipeline {
    scenario: Scenario,
    config: PipelineConfig,
    threads: usize,
    trained: Option<TrainedAssociation>,
    precompute: Option<MaskPrecompute>,
    partition: Option<StaticWorldPartition>,
    /// World/coordinator RNG: stream 0 of the run seed. Camera draws live
    /// on the per-worker streams.
    rng: ChaCha8Rng,
    world: World,
    workers: Vec<CameraWorker>,
    /// Fault schedule: dedicated RNG stream, stepped at key frames on the
    /// coordinator thread only.
    faults: FaultState,
    /// Owner cameras per global object of the current horizon (one entry
    /// with redundancy 1; more under the redundant-assignment extension).
    assignment: Vec<Vec<usize>>,
    /// Persistent warm-start solver for the central stage (see
    /// [`PipelineConfig::warm_start`]).
    solver: BalbSolver,
    /// Persistent per-shard warm solvers for the sharded central stage
    /// (see [`PipelineConfig::shard_solver`]).
    sharded_solver: ShardedBalbSolver,
    /// Reused snapshot of the per-camera liveness flags for the current
    /// key frame (the snapshot decouples the flags from later fault-state
    /// mutations without a per-key-frame allocation).
    alive_scratch: Vec<bool>,
    /// Reused backing store for key-frame [`UploadMessage`] object lists.
    upload_scratch: Vec<ObjectRecord>,
    /// Amortized central-stage cost charged to every frame of the horizon.
    central_per_frame_ms: f64,
    /// Structured-tracing recorder; `None` (the default) keeps every
    /// span-recording site a no-op.
    tracer: Option<TraceRecorder>,
    /// Frames actually processed so far (skipped frames excluded).
    frames_done: usize,
    // Outputs.
    recall: RecallAccumulator,
    latency: LatencySeries,
    per_camera: Vec<Vec<f64>>,
    overhead: OverheadBreakdown,
    stats: PipelineStats,
    degradation: DegradationCounters,
}

impl Pipeline {
    fn new(scenario: &Scenario, config: &PipelineConfig) -> Self {
        let m = scenario.num_cameras();
        assert!(m > 0, "scenario has no cameras");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let profiles: Vec<LatencyProfile> = scenario
            .devices
            .iter()
            .map(|&d| {
                let p = LatencyProfile::for_device(d);
                if config.disable_batching {
                    p.without_batching()
                } else {
                    p
                }
            })
            .collect();

        // Train the association models on the "first half" (the training
        // segment advances the world RNG, exactly like a recorded prefix).
        let needs_assoc = matches!(
            config.algorithm,
            Algorithm::BalbCen | Algorithm::Balb | Algorithm::StaticPartition
        );
        let (trained, precompute) = if needs_assoc {
            let data = CorrespondenceData::collect(scenario, config.train_s, 2, &mut rng);
            let trained = TrainedAssociation::train(m, &data, config.assoc_k, config.assoc_iou)
                .expect("association models must train on scenario data");
            let precompute = matches!(
                config.algorithm,
                Algorithm::Balb | Algorithm::StaticPartition
            )
            .then(|| {
                let frames: Vec<_> = scenario.cameras.iter().map(|c| c.frame).collect();
                MaskPrecompute::build(&frames, &data, config.grid_cell_px)
            });
            (Some(trained), precompute)
        } else {
            (None, None)
        };
        // SP's offline allocation: overlap cells divided among covering
        // cameras in proportion to processing power, frozen for the run.
        let mut static_masks: Vec<Option<mvs_core::CameraMask>> =
            if config.algorithm == Algorithm::StaticPartition {
                let weights: Vec<f64> = profiles.iter().map(|p| p.speed_score()).collect();
                let pre = precompute.as_ref().expect("SP precomputes coverage");
                pre.sp_masks(&weights).into_iter().map(Some).collect()
            } else {
                vec![None; m]
            };
        let partition = matches!(config.algorithm, Algorithm::StaticPartitionOracle).then(|| {
            StaticWorldPartition::new(
                scenario.cameras.iter().map(|c| c.view_polygon()).collect(),
                profiles.iter().map(|p| p.speed_score()).collect(),
            )
        });

        let world = scenario.warmed_world(30.0, &mut rng);
        let workers: Vec<CameraWorker> = (0..m)
            .map(|i| {
                let frame = scenario.cameras[i].frame;
                CameraWorker {
                    index: i,
                    frame,
                    lag: config.camera_lag_frames.get(i).copied().unwrap_or(0),
                    profile: profiles[i].clone(),
                    detector: SimulatedDetector::new(config.detection, frame),
                    tracker: FlowTracker::new(config.tracker, frame),
                    rng: CameraWorker::stream_rng(config.seed, i),
                    prev_view: scenario.cameras[i]
                        .visible_objects(&world, scenario.occlusion_threshold),
                    history: VecDeque::new(),
                    shadows: BTreeMap::new(),
                    track_global: HashMap::new(),
                    mask: None,
                    static_mask: static_masks[i].take(),
                    trace: None,
                    scratch: FrameScratch::new(),
                }
            })
            .collect();
        Pipeline {
            scenario: scenario.clone(),
            config: config.clone(),
            threads: resolve_threads(config.threads).min(m),
            trained,
            precompute,
            partition,
            rng,
            world,
            workers,
            faults: FaultState::new(config.faults, config.seed, m),
            assignment: Vec::new(),
            solver: BalbSolver::new(),
            sharded_solver: ShardedBalbSolver::new(),
            alive_scratch: Vec::new(),
            upload_scratch: Vec::new(),
            central_per_frame_ms: 0.0,
            tracer: None,
            frames_done: 0,
            recall: RecallAccumulator::new(),
            latency: LatencySeries::new(),
            per_camera: vec![Vec::new(); m],
            overhead: OverheadBreakdown::new(),
            stats: PipelineStats::default(),
            degradation: DegradationCounters::default(),
        }
    }

    /// Turns on structured tracing: one span buffer per camera lane plus
    /// the coordinator lane, stamped on the scenario's sim clock.
    fn enable_tracing(&mut self) {
        self.tracer = Some(TraceRecorder::new(self.scenario.fps));
        for (i, w) in self.workers.iter_mut().enumerate() {
            w.trace = Some(TraceRecorder::camera_buf(i));
        }
    }

    fn run(mut self) -> (PipelineResult, Option<Trace>) {
        let frames = (self.config.eval_s * self.scenario.fps).round() as usize;
        let mut workers = std::mem::take(&mut self.workers);
        for frame in 0..frames {
            self.step_frame(&mut workers, frame);
        }
        self.workers = workers;
        self.finish()
    }

    /// Processes one frame of the capture clock: steps the world, runs the
    /// per-camera stages and cross-camera coordination for `frame`, and
    /// records every output series. Returns the frame's modeled system
    /// latency (slowest camera, may be non-finite on a poisoned overhead
    /// model — already counted in [`DegradationCounters::rejected_samples`]
    /// by then).
    ///
    /// `frame` is the capture index: `frame % horizon == 0` makes this a
    /// key frame. The serving front-end may skip capture indices (see
    /// [`Pipeline::skip_frame`]); the cadence then degrades exactly like a
    /// lost key-frame round trip — trackers coast until the next processed
    /// key frame.
    fn step_frame(&mut self, workers: &mut [CameraWorker], frame: usize) -> f64 {
        let dt = self.scenario.frame_dt_s();
        self.world.step(dt, &mut self.rng);
        if let Some(t) = &mut self.tracer {
            let start_us = t.begin_frame(frame);
            for w in workers.iter_mut() {
                if let Some(buf) = &mut w.trace {
                    buf.begin_frame(frame as u32, start_us);
                }
            }
        }
        let is_key = frame.is_multiple_of(self.config.horizon);
        if is_key {
            self.step_faults(workers);
        }
        let (views, visible, covered) = self.observe(workers);
        if !self.faults.all_alive() {
            // Coverage irrecoverably lost to dead cameras: objects no
            // surviving camera can see still count against recall.
            self.degradation.degraded_frames += 1;
            self.degradation.coverage_lost_objects +=
                visible.iter().filter(|id| !covered.contains(id)).count() as u64;
        }

        let (frame_latency, detected, oh) = match self.config.algorithm {
            Algorithm::Full => self.full_frame(workers, &views),
            _ if is_key => self.key_frame(workers, &views),
            _ => self.regular_frame(workers, &views),
        };

        // Recall is judged against what is truly in front of the
        // cameras *now*, which is what makes lag hurt.
        self.recall.record(visible, detected);
        let system = frame_latency.iter().fold(0.0, |a: f64, &b| a.max(b));
        if system.is_finite() {
            self.latency.push(system);
        } else {
            self.degradation.rejected_samples += 1;
        }
        for (series, &l) in self.per_camera.iter_mut().zip(&frame_latency) {
            if l.is_finite() {
                series.push(l);
            } else {
                self.degradation.rejected_samples += 1;
            }
        }
        self.overhead.record_frame(&oh);
        for (w, view) in workers.iter_mut().zip(views) {
            w.prev_view = view;
        }
        if let Some(t) = &mut self.tracer {
            t.end_frame(workers.iter_mut().filter_map(|w| w.trace.as_mut()));
        }
        self.frames_done += 1;
        system
    }

    /// Skips one frame of the capture clock without processing it: the
    /// world advances (real time passed) but no camera observes, detects,
    /// or draws from its RNG stream, and no series records a sample.
    ///
    /// This is the serving front-end's drop semantics (a frame displaced
    /// from a depth-1 ingest lane was never delivered to the pipeline).
    /// The next processed frame sees the moved world through the stale
    /// `prev_view`, so its optical flow spans the gap — exactly the larger
    /// displacement a real camera would measure across dropped frames.
    fn skip_frame(&mut self) {
        let dt = self.scenario.frame_dt_s();
        self.world.step(dt, &mut self.rng);
        self.stats.skipped_frames += 1;
    }

    /// Finalizes every output series into a [`PipelineResult`].
    fn finish(self) -> (PipelineResult, Option<Trace>) {
        let per_camera_mean_ms = self
            .per_camera
            .iter()
            .map(|s| s.iter().sum::<f64>() / s.len().max(1) as f64)
            .collect();
        let result = PipelineResult {
            algorithm: self.config.algorithm,
            frames: self.frames_done,
            recall: self.recall.recall(),
            mean_latency_ms: self.latency.mean_ms(),
            latency: self.latency,
            per_camera_mean_ms,
            per_camera_series_ms: self.per_camera,
            overhead_mean: self.overhead.mean(),
            stats: self.stats,
            degradation: self.degradation,
        };
        (result, self.tracer.map(TraceRecorder::finish))
    }

    /// Advances the fault schedule at a key frame: draws this horizon's
    /// dropout/rejoin decisions and wipes the state of cameras that just
    /// went dark (their tracks, shadows, masks, and lag history would be
    /// stale by the time they rejoin).
    fn step_faults(&mut self, workers: &mut [CameraWorker]) {
        let events = self.faults.step_key_frame();
        self.degradation.dropouts += events.dropped.len() as u64;
        self.degradation.rejoins += events.rejoined.len() as u64;
        for &i in &events.dropped {
            let w = &mut workers[i];
            w.tracker.clear();
            w.shadows.clear();
            w.track_global.clear();
            w.mask = None;
            w.history.clear();
        }
        if let Some(t) = &mut self.tracer {
            t.coordinator().span(
                Stage::Fault,
                0.0,
                events.dropped.len() + events.rejoined.len(),
            );
        }
    }

    /// Per-camera observation stage (parallel): extract the camera's view
    /// of the stepped world, apply its processing lag, and estimate
    /// optical flow against the previous frame into the worker's scratch
    /// arena ([`FrameScratch::flow`], skipped for the Full baseline, which
    /// never consumes it).
    ///
    /// Returns the lag-adjusted views, the set of objects truly visible
    /// *now* (the recall denominator — dead cameras included, so lost
    /// coverage degrades recall instead of shrinking the test), and the
    /// subset of those visible to at least one *alive* camera.
    fn observe(
        &self,
        workers: &mut [CameraWorker],
    ) -> (Vec<Vec<GroundTruthObject>>, HashSet<u64>, HashSet<u64>) {
        let wants_flow = self.config.algorithm != Algorithm::Full;
        let occlusion = self.scenario.occlusion_threshold;
        let noise = self.config.flow_noise_px;
        let cameras = &self.scenario.cameras;
        let world = &self.world;
        let alive = self.faults.alive();
        let outs = par_map(workers, self.threads, |w| {
            let true_view = cameras[w.index].visible_objects(world, occlusion);
            let ids: Vec<u64> = true_view.iter().map(|g| g.id).collect();
            // A dead camera produces no frames: its processed view is
            // empty and its flow estimate degenerates to the identity
            // (drawing nothing from its RNG stream).
            let view = if !alive[w.index] {
                Vec::new()
            } else if w.lag == 0 {
                // Perfectly synchronized camera: the true view *is* the
                // processed view; skip the ring buffer entirely.
                true_view
            } else {
                // Push once (a move, not a clone); clone only the lagged
                // front view actually read.
                w.history.push_back(true_view);
                if w.history.len() > w.lag + 1 {
                    w.history.pop_front();
                }
                w.history.front().expect("just pushed").clone()
            };
            if wants_flow {
                w.scratch
                    .flow
                    .estimate_into(&w.prev_view, &view, noise, &mut w.rng);
            }
            (ids, view)
        });
        let mut views = Vec::with_capacity(outs.len());
        let mut visible = HashSet::new();
        let mut covered = HashSet::new();
        let track_coverage = !self.faults.all_alive();
        for (i, (ids, view)) in outs.into_iter().enumerate() {
            if track_coverage && alive[i] {
                covered.extend(ids.iter().copied());
            }
            visible.extend(ids);
            views.push(view);
        }
        (views, visible, covered)
    }

    /// The Full baseline: full-frame inspection everywhere, every frame.
    fn full_frame(
        &self,
        workers: &mut [CameraWorker],
        views: &[Vec<GroundTruthObject>],
    ) -> (Vec<f64>, HashSet<u64>, Vec<OverheadSample>) {
        let alive = self.faults.alive();
        let outs = par_map(workers, self.threads, |w| {
            if !alive[w.index] {
                return (0.0, Vec::new());
            }
            let full_ms = w.profile.full_frame_ms();
            let dets = w.detector.detect_full_frame_traced(
                &views[w.index],
                &mut w.rng,
                full_ms,
                w.trace.as_mut(),
            );
            let ids: Vec<u64> = dets.iter().filter_map(|d| d.truth_id).collect();
            (full_ms, ids)
        });
        let m = outs.len();
        let mut latency = Vec::with_capacity(m);
        let mut detected = HashSet::new();
        for (l, ids) in outs {
            latency.push(l);
            detected.extend(ids);
        }
        (latency, detected, vec![OverheadSample::default(); m])
    }

    /// The key-frame uplink leg: the slowest camera's upload round trip
    /// as typed wire messages over one reused record buffer. `Some(k)` in
    /// `up` means the upload was delivered after `k` lost attempts; `None`
    /// means the camera never got through and the scheduler waits out the
    /// whole retry schedule. The leg depends only on what the cameras
    /// uploaded and the fault/network models — never on the solve — which
    /// is what lets the pipelined key frame encode it while the central
    /// solve runs on its own thread.
    fn uplink_phase_ms(
        all_dets: &[Vec<Detection>],
        up: &[Option<u32>],
        model: &FaultModel,
        network: &NetworkModel,
        records: &mut Vec<ObjectRecord>,
    ) -> f64 {
        let mut uplink_phase: f64 = 0.0;
        for (cam, dets) in all_dets.iter().enumerate() {
            let leg = match up[cam] {
                Some(lost) => {
                    records.clear();
                    records.extend(dets.iter().enumerate().map(|(d, det)| ObjectRecord {
                        detection: d as u32,
                        bbox: det.bbox,
                        confidence: det.confidence as f32,
                        size: SizeClass::quantize(det.bbox.width(), det.bbox.height()),
                    }));
                    let msg = UploadMessage {
                        camera: cam as u32,
                        frame: 0,
                        objects: std::mem::take(records),
                    };
                    let ms =
                        lost as f64 * model.retry_timeout_ms + network.uplink_ms(msg.encoded_len());
                    *records = msg.objects;
                    ms
                }
                None => model.deadline_ms(),
            };
            uplink_phase = uplink_phase.max(leg);
        }
        uplink_phase
    }

    /// A key frame for the tracking-based algorithms: parallel full-frame
    /// inspection, then serial cross-camera coordination.
    fn key_frame(
        &mut self,
        workers: &mut [CameraWorker],
        views: &[Vec<GroundTruthObject>],
    ) -> (Vec<f64>, HashSet<u64>, Vec<OverheadSample>) {
        self.stats.key_frames += 1;
        let m = views.len();
        self.alive_scratch.clear();
        self.alive_scratch.extend_from_slice(self.faults.alive());
        let alive = &self.alive_scratch;
        let det_outs: Vec<(Vec<Detection>, f64)> = par_map(workers, self.threads, |w| {
            if !alive[w.index] {
                return (Vec::new(), 0.0);
            }
            let full_ms = w.profile.full_frame_ms();
            let dets = w.detector.detect_full_frame_traced(
                &views[w.index],
                &mut w.rng,
                full_ms,
                w.trace.as_mut(),
            );
            (dets, full_ms)
        });
        let mut detected = HashSet::new();
        let mut latency = Vec::with_capacity(m);
        let mut all_dets: Vec<Vec<Detection>> = Vec::with_capacity(m);
        for (dets, l) in det_outs {
            detected.extend(dets.iter().filter_map(|d| d.truth_id));
            latency.push(l);
            all_dets.push(dets);
        }

        // Key-frame round trip under message loss: a camera joins this
        // horizon's schedule only if it is alive and both legs beat the
        // retry budget. `Some(k)` = delivered after `k` lost attempts.
        // All draws happen here, on the coordinator, in camera-index
        // order; the scheduler only answers cameras it heard from.
        let is_central = matches!(self.config.algorithm, Algorithm::BalbCen | Algorithm::Balb);
        let mut up: Vec<Option<u32>> = vec![None; m];
        let mut down: Vec<Option<u32>> = vec![None; m];
        if is_central {
            for i in 0..m {
                if alive[i] {
                    up[i] = self.faults.delivery();
                }
            }
            for i in 0..m {
                if up[i].is_some() {
                    down[i] = self.faults.delivery();
                }
            }
            let budget = self.faults.model().attempts_budget() as u64;
            for i in 0..m {
                if !alive[i] {
                    continue;
                }
                match up[i] {
                    Some(0) => {}
                    Some(k) => {
                        self.degradation.lost_uploads += k as u64;
                        self.degradation.retransmits += 1;
                    }
                    None => self.degradation.lost_uploads += budget,
                }
                match down[i] {
                    Some(0) => {}
                    Some(k) => {
                        self.degradation.lost_downlinks += k as u64;
                        self.degradation.retransmits += 1;
                    }
                    None if up[i].is_some() => self.degradation.lost_downlinks += budget,
                    None => {}
                }
                if down[i].is_none() {
                    self.degradation.desynced_horizons += 1;
                }
            }
        } else {
            for i in 0..m {
                if alive[i] {
                    up[i] = Some(0);
                    down[i] = Some(0);
                }
            }
        }
        let synced: Vec<bool> = (0..m).map(|i| down[i].is_some()).collect();

        // Reset per-horizon state. A desynchronized camera (alive but out
        // of the round trip) keeps its running tracks and stale mask, but
        // drops the global bookkeeping tied to the superseded assignment.
        // Dead cameras were wiped at the dropout event. The mask of a
        // synced camera is left in place: BALB rebuilds it in place below
        // (reusing its owner table), and no other algorithm ever sets it.
        for w in workers.iter_mut() {
            if synced[w.index] {
                w.tracker.clear();
                w.shadows.clear();
                w.track_global.clear();
            } else if alive[w.index] {
                w.shadows.clear();
                w.track_global.clear();
            }
        }
        self.assignment = Vec::new();
        self.central_per_frame_ms = 0.0;

        match self.config.algorithm {
            Algorithm::BalbInd => {
                // Every camera keeps everything it saw.
                for (w, dets) in workers.iter_mut().zip(&all_dets) {
                    for d in dets {
                        w.tracker.seed(d.bbox, d.truth_id);
                    }
                }
            }
            Algorithm::StaticPartition => {
                // Each camera keeps the detections falling in cells its
                // static speed-priority mask owns (same imperfect models
                // as BALB's masks, but load-oblivious).
                for (w, dets) in workers.iter_mut().zip(&all_dets) {
                    let mask = w.static_mask.take().expect("SP masks built");
                    for d in dets {
                        if mask.is_responsible_for(&d.bbox) {
                            w.tracker.seed(d.bbox, d.truth_id);
                        }
                    }
                    w.static_mask = Some(mask);
                }
            }
            Algorithm::StaticPartitionOracle => {
                // Ablation: allocation by oracle world geometry.
                let partition = self.partition.as_ref().expect("oracle SP has a partition");
                let world_pos: HashMap<u64, mvs_geometry::Point2> = self
                    .world
                    .objects()
                    .iter()
                    .map(|o| (o.id, self.world.position_of(o)))
                    .collect();
                for (w, dets) in workers.iter_mut().zip(&all_dets) {
                    for d in dets {
                        let mine = match d.truth_id.and_then(|id| world_pos.get(&id)) {
                            Some(&pos) => partition.owner(pos) == Some(w.index),
                            // False positives have no world anchor; the
                            // observing camera keeps them.
                            None => true,
                        };
                        if mine {
                            w.tracker.seed(d.bbox, d.truth_id);
                        }
                    }
                }
            }
            Algorithm::BalbCen | Algorithm::Balb => {
                let started = self.config.measured_overheads.then(Instant::now);
                let model = *self.faults.model();
                // Only uploads the scheduler both received *and* answered
                // enter the schedule: an unacknowledged camera discards
                // the horizon, so every scheduled object has a camera that
                // actually tracks it.
                let boxes: Vec<Vec<BBox>> = all_dets
                    .iter()
                    .enumerate()
                    .map(|(cam, d)| {
                        if synced[cam] {
                            d.iter().map(|x| x.bbox).collect()
                        } else {
                            Vec::new()
                        }
                    })
                    .collect();
                let synced_cams: Vec<CameraId> =
                    (0..m).filter(|&i| synced[i]).map(CameraId).collect();
                let cameras: Vec<CameraInfo> = workers
                    .iter()
                    .map(|w| CameraInfo {
                        id: CameraId(w.index),
                        profile: w.profile.clone(),
                    })
                    .collect();

                // The central solve as a pure function of the uploaded
                // boxes and the persistent solver state. It touches no
                // worker, network, or upload state, so the pipelined path
                // can run it on a scoped thread while the coordinator
                // encodes the uplink leg below. `None` means the horizon
                // produced no schedule at all: every camera coasts on its
                // stale mask and running tracks until the next key frame.
                // In a long-running service this is a degradation event,
                // never a panic.
                let config = &self.config;
                let trained = &self.trained;
                let solver = &mut self.solver;
                let sharded_solver = &mut self.sharded_solver;
                let mut recorder = self.tracer.as_mut();
                let threads = self.threads;
                let synced_cams_ref = &synced_cams;
                let solve = move || {
                    if synced_cams_ref.is_empty() {
                        return None;
                    }
                    let globals = {
                        let trained = trained.as_ref().expect("association is trained");
                        trained.engine.associate(&boxes)
                    };
                    // Build the MVS instance over the full deployment …
                    let margin = 1.0 + config.tracker.margin_frac;
                    let objects: Vec<ObjectInfo> = globals
                        .iter()
                        .enumerate()
                        .map(|(g, go)| {
                            let sizes: BTreeMap<CameraId, SizeClass> = go
                                .members
                                .iter()
                                .map(|&(cam, det)| {
                                    let b = boxes[cam][det];
                                    (
                                        CameraId(cam),
                                        SizeClass::quantize(
                                            b.width() * margin,
                                            b.height() * margin,
                                        ),
                                    )
                                })
                                .collect();
                            ObjectInfo {
                                id: ObjectId(g),
                                sizes,
                            }
                        })
                        .collect();
                    let problem =
                        MvsProblem::new(cameras, objects).expect("pipeline builds valid instances");
                    let redundancy = config.redundancy.max(1);
                    // … and solve on the synced sub-problem when degraded,
                    // lifting owners and priority back to deployment ids.
                    if synced_cams_ref.len() == m {
                        if config.shard_solver && redundancy == 1 {
                            // City-scale path: solve independently per
                            // view-overlap component, in parallel. The
                            // instance's own coverage graph always yields
                            // an exact plan, so this is bitwise identical
                            // to the monolithic solve below.
                            let plan =
                                ShardPlan::from_components(&OverlapGraph::from_problem(&problem));
                            let schedule = if config.warm_start {
                                sharded_solver.solve(&problem, &plan, threads)
                            } else if config.pipelined {
                                // Cold pipelined solve: shards merge as
                                // they complete. Exact plans give each
                                // shard disjoint output columns, so the
                                // merge order cannot change a single bit.
                                balb_sharded_pipelined(&problem, &plan, threads)
                            } else {
                                balb_sharded_threaded(&problem, &plan, threads)
                            };
                            span_into(
                                recorder.as_mut().map(|t| t.coordinator()),
                                Stage::Central,
                                0.0,
                                problem.num_objects(),
                            );
                            let assignment: Vec<Vec<usize>> = (0..globals.len())
                                .map(|g| {
                                    schedule
                                        .assignment
                                        .owners_of(ObjectId(g))
                                        .iter()
                                        .map(|c| c.0)
                                        .collect()
                                })
                                .collect();
                            Some((globals, assignment, schedule.priority))
                        } else if config.warm_start && redundancy == 1 {
                            // Fully-synced single-owner horizon: repair the
                            // previous schedule instead of recomputing.
                            // Bitwise-identical to the cold path (the
                            // solver falls back to a cold solve itself on
                            // large scene changes).
                            let schedule = solver.solve_owned_traced(
                                problem,
                                recorder.as_mut().map(|t| t.coordinator()),
                            );
                            let assignment: Vec<Vec<usize>> = (0..globals.len())
                                .map(|g| {
                                    schedule
                                        .assignment
                                        .owners_of(ObjectId(g))
                                        .iter()
                                        .map(|c| c.0)
                                        .collect()
                                })
                                .collect();
                            Some((globals, assignment, schedule.priority.clone()))
                        } else {
                            let schedule = mvs_core::extensions::balb_redundant_traced(
                                &problem,
                                redundancy,
                                recorder.as_mut().map(|t| t.coordinator()),
                            );
                            let assignment: Vec<Vec<usize>> = (0..globals.len())
                                .map(|g| {
                                    schedule
                                        .assignment
                                        .owners_of(ObjectId(g))
                                        .iter()
                                        .map(|c| c.0)
                                        .collect()
                                })
                                .collect();
                            Some((globals, assignment, schedule.priority))
                        }
                    } else {
                        // Degraded horizon: re-solve on the synced
                        // sub-fleet. An `Err` means no schedulable camera
                        // survived the restriction after all — coast like
                        // the all-desynced case instead of crashing.
                        let Ok(subset) = problem.restrict_to_cameras(synced_cams_ref) else {
                            return None;
                        };
                        let schedule = mvs_core::extensions::balb_redundant_traced(
                            &subset.problem,
                            redundancy,
                            recorder.as_mut().map(|t| t.coordinator()),
                        );
                        let mut assignment = vec![Vec::new(); globals.len()];
                        for o in subset.problem.objects() {
                            let orig = subset.original_object(o.id);
                            assignment[orig.0] = schedule
                                .assignment
                                .owners_of(o.id)
                                .iter()
                                .map(|&c| subset.original_camera(c).0)
                                .collect();
                        }
                        let priority = subset.lift_priority(&schedule.priority);
                        Some((globals, assignment, priority))
                    }
                };

                // The uplink leg never depends on the solve, only on what
                // the cameras uploaded — the sync delay the pipelined path
                // hides the solve behind. Sequentially: solve, then
                // encode. Pipelined: encode on this thread while the solve
                // runs on a pool worker; the join completes before the
                // apply phase, keeping every downstream effect in the
                // sequential order, so results and traces are bitwise
                // identical either way.
                let mut records = std::mem::take(&mut self.upload_scratch);
                let network = &self.config.network;
                let (outcome, uplink_phase) = if self.config.pipelined && self.threads > 1 {
                    mvs_exec::pool().join(solve, || {
                        Self::uplink_phase_ms(&all_dets, &up, &model, network, &mut records)
                    })
                } else {
                    let outcome = solve();
                    let uplink =
                        Self::uplink_phase_ms(&all_dets, &up, &model, network, &mut records);
                    (outcome, uplink)
                };
                self.upload_scratch = records;

                // Apply phase: seed trackers per the assignment, record
                // shadows, rebuild the distributed-stage masks.
                let mut priority: Vec<CameraId> = Vec::new();
                let solved = match outcome {
                    Some((globals, assignment, new_priority)) => {
                        self.assignment = assignment;
                        priority = new_priority;
                        for (g, go) in globals.iter().enumerate() {
                            let owners = &self.assignment[g];
                            for &(cam, det) in &go.members {
                                let d = &all_dets[cam][det];
                                if owners.contains(&cam) {
                                    let id = workers[cam].tracker.seed(d.bbox, d.truth_id);
                                    workers[cam].track_global.insert(id, g);
                                } else if self.config.algorithm == Algorithm::Balb {
                                    workers[cam].shadows.insert(g, ShadowTrack::new(d.bbox));
                                }
                            }
                        }
                        // Distributed-stage masks under the new priority
                        // order. Only synced cameras hear it; the priority
                        // omits everyone else, so survivors absorb dead
                        // cameras' cells while desynced cameras coast on
                        // their stale masks.
                        if self.config.algorithm == Algorithm::Balb {
                            let pre = self.precompute.as_ref().expect("BALB precomputes masks");
                            for w in workers.iter_mut() {
                                if synced[w.index] {
                                    pre.mask_for_into(w.index, &priority, &mut w.mask);
                                }
                            }
                        }
                        true
                    }
                    None => false,
                };
                if !solved {
                    // Nobody heard the scheduler this horizon (or nothing
                    // was schedulable): the previous assignment stays in
                    // force implicitly via the coasting trackers.
                    self.degradation.coasted_horizons += 1;
                }
                let compute_ms = started.map_or(0.0, |s| s.elapsed().as_secs_f64() * 1e3);

                // Central-stage cost: computation plus the slowest
                // camera's key-frame round trip (typed wire messages),
                // amortized over the horizon. Lost attempts cost one
                // retry timeout each; a camera that never answers makes
                // the scheduler wait out the whole retry schedule.
                let reply_ms = if synced_cams.is_empty() {
                    0.0
                } else {
                    let reply = AssignmentMessage {
                        horizon: 0,
                        assignments: (0..self.assignment.len())
                            .map(|g| {
                                (
                                    g as u32,
                                    self.assignment[g].iter().map(|&c| c as u32).collect(),
                                )
                            })
                            .collect(),
                        priority: priority.iter().map(|c| c.0 as u32).collect(),
                    };
                    self.config.network.downlink_ms(reply.encoded_len())
                };
                let downlink_phase = (0..m)
                    .map(|cam| match (up[cam].is_some(), down[cam]) {
                        (true, Some(lost)) => lost as f64 * model.retry_timeout_ms + reply_ms,
                        (true, None) => model.deadline_ms(),
                        (false, _) => 0.0,
                    })
                    .fold(0.0, f64::max);
                self.central_per_frame_ms =
                    (compute_ms + uplink_phase + downlink_phase) / self.config.horizon as f64;
                if let Some(t) = &mut self.tracer {
                    t.coordinator().span(
                        Stage::Sync,
                        uplink_phase + downlink_phase,
                        synced_cams.len(),
                    );
                }
            }
            Algorithm::Full => unreachable!("handled by full_frame"),
        }
        let oh = vec![
            OverheadSample {
                central_ms: self.central_per_frame_ms,
                ..Default::default()
            };
            m
        ];
        (latency, detected, oh)
    }

    /// A regular frame: flow prediction, slicing, batched partial
    /// inspection, and the distributed stage — all per-camera work runs on
    /// the pool, then cross-camera effects merge in camera-index order.
    ///
    /// Takeover decisions read a snapshot of the horizon assignment taken
    /// at the start of the frame: a camera does not observe another
    /// camera's takeover from the *same* frame (in exchange, the outcome
    /// cannot depend on camera scheduling order). The winners extend the
    /// shared assignment during the serial merge.
    fn regular_frame(
        &mut self,
        workers: &mut [CameraWorker],
        views: &[Vec<GroundTruthObject>],
    ) -> (Vec<f64>, HashSet<u64>, Vec<OverheadSample>) {
        let m = views.len();
        let algorithm = self.config.algorithm;
        let measured = self.config.measured_overheads;
        let central_ms = self.central_per_frame_ms;
        let overhead = self.config.overhead;
        let probe_allowed = matches!(
            algorithm,
            Algorithm::BalbInd
                | Algorithm::Balb
                | Algorithm::StaticPartition
                | Algorithm::StaticPartitionOracle
        );
        let outs: Vec<RegularOutput> = {
            let assignment = &self.assignment;
            let trained = self.trained.as_ref();
            let partition = self.partition.as_ref();
            let world = &self.world;
            let alive = self.faults.alive();
            par_map(workers, self.threads, |w| {
                let i = w.index;
                let frame_dims = w.frame;
                if !alive[i] {
                    // A dead camera does no work; it still carries the
                    // amortized central cost like every other column of
                    // Table II.
                    return RegularOutput {
                        latency_ms: 0.0,
                        detected: Vec::new(),
                        taken: Vec::new(),
                        probes: 0,
                        sample: OverheadSample {
                            central_ms,
                            ..Default::default()
                        },
                    };
                }
                // 1. Flow-predict tracks and shadows (the flow was
                // estimated into the worker's scratch arena at observe).
                w.tracker.predict(&w.scratch.flow);
                if algorithm == Algorithm::Balb {
                    let flow = &w.scratch.flow;
                    w.shadows.retain(|_, s| {
                        let moved = s
                            .bbox
                            .translated(flow.displacement_at(s.bbox.center()).displacement);
                        match moved.clamped_to(frame_dims) {
                            Some(c) if c.area() > 0.25 * s.bbox.area() => {
                                s.bbox = moved;
                                true
                            }
                            _ => false,
                        }
                    });
                }
                span_into(
                    w.trace.as_mut(),
                    Stage::Flow,
                    overhead.flow_base_ms,
                    w.tracker.tracks().len(),
                );

                // 2. Distributed stage (measured): takeover scan against
                // the frame-start assignment snapshot.
                let distributed_started = measured.then(Instant::now);
                w.scratch.takeover_seeds.clear();
                // A camera without a mask (rejoined but not yet resynced)
                // skips the takeover scan; its shadows are empty anyway.
                if let (Algorithm::Balb, Some(mask)) = (algorithm, w.mask.as_ref()) {
                    let trained = trained.expect("trained");
                    // The object has left *every* assigned camera's view
                    // (per the synchronized pair models); require the
                    // verdict to persist so one noisy classifier answer
                    // does not steal a still-tracked object. If this
                    // camera owns the cell where the object now is, it
                    // takes over.
                    scan_takeovers_into(
                        &mut w.shadows,
                        TAKEOVER_HYSTERESIS,
                        |g, bbox| {
                            let owners = &assignment[g];
                            if owners.contains(&i) {
                                ShadowVerdict::OwnedHere
                            } else if owners
                                .iter()
                                .all(|&owner| trained.map_box(i, owner, bbox).is_none())
                            {
                                ShadowVerdict::Gone
                            } else {
                                ShadowVerdict::Visible
                            }
                        },
                        |bbox| mask.is_responsible_for(bbox),
                        w.trace.as_mut(),
                        &mut w.scratch.takeover_seeds,
                    );
                    for k in 0..w.scratch.takeover_seeds.len() {
                        let (g, bbox) = w.scratch.takeover_seeds[k];
                        let id = w.tracker.seed(bbox, None);
                        w.track_global.insert(id, g);
                    }
                }
                let distributed_ms =
                    distributed_started.map_or(0.0, |s| s.elapsed().as_secs_f64() * 1e3);

                // 3. Slice regions for live tracks (into the scratch task
                // buffer; new-region probes append below).
                slice_regions_traced_into(
                    w.tracker.tracks(),
                    frame_dims,
                    w.trace.as_mut(),
                    &mut w.scratch.tasks,
                );

                // 4. New-region probing.
                let mut probes = 0;
                if probe_allowed {
                    w.scratch.predicted.clear();
                    w.scratch
                        .predicted
                        .extend(w.tracker.tracks().iter().map(|t| t.bbox));
                    if algorithm == Algorithm::Balb {
                        w.scratch
                            .predicted
                            .extend(w.shadows.values().map(|s| s.bbox));
                    }
                    w.scratch.regions.find_into(
                        w.scratch.flow.moving_clusters(),
                        &w.scratch.predicted,
                        0.5,
                        &mut w.scratch.fresh,
                    );
                    for k in 0..w.scratch.fresh.len() {
                        let region = w.scratch.fresh[k];
                        let responsible = match algorithm {
                            Algorithm::BalbInd => true,
                            // No mask (awaiting resync) ⇒ not responsible
                            // for anything new.
                            Algorithm::Balb => w
                                .mask
                                .as_ref()
                                .is_some_and(|mask| mask.is_responsible_for(&region)),
                            Algorithm::StaticPartition => w
                                .static_mask
                                .as_ref()
                                .expect("SP masks built")
                                .is_responsible_for(&region),
                            Algorithm::StaticPartitionOracle => {
                                // The oracle SP allocation is geometric;
                                // check the world region behind the
                                // cluster.
                                let partition = partition.expect("SP partition");
                                views[i].iter().any(|g| {
                                    g.bbox.coverage_by(&region) >= 0.35
                                        && world
                                            .objects()
                                            .iter()
                                            .find(|o| o.id == g.id)
                                            .map(|o| {
                                                partition.owner(world.position_of(o)) == Some(i)
                                            })
                                            .unwrap_or(false)
                                })
                            }
                            _ => false,
                        };
                        if responsible {
                            if let Some(task) = RegionTask::for_region(region, frame_dims) {
                                w.scratch.tasks.push(task);
                                probes += 1;
                            }
                        }
                    }
                }

                // 5. Run the (simulated) DNN on every crop; batching
                // decides the latency.
                let counts = SizeCounts::from_sizes(w.scratch.tasks.iter().map(|t| t.size));
                let batches: usize = counts.batches(&w.profile).iter().sum();
                let batching_ms = overhead.batch_per_crop_ms * w.scratch.tasks.len() as f64
                    + overhead.batch_per_batch_ms * batches as f64;
                let latency_ms =
                    counts.latency_ms_traced(&w.profile, batching_ms, w.trace.as_mut());
                w.scratch.detections.clear();
                for task in &w.scratch.tasks {
                    w.scratch.detections.extend(w.detector.detect_region(
                        &task.region,
                        task.size,
                        &views[i],
                        &mut w.rng,
                    ));
                }
                // Deduplicate: neighbouring crops can both cover one
                // object. (Stable sort: equal ids keep insertion order, so
                // dedup keeps the first crop's detection.)
                w.scratch.detections.sort_by_key(|a| a.truth_id);
                w.scratch
                    .detections
                    .dedup_by(|a, b| a.truth_id.is_some() && a.truth_id == b.truth_id);
                let detected: Vec<u64> = w
                    .scratch
                    .detections
                    .iter()
                    .filter_map(|d| d.truth_id)
                    .collect();

                // 6. Track association + lifecycle.
                let outcome = w.tracker.associate(&w.scratch.detections);
                if probe_allowed {
                    for &di in &outcome.unmatched_detections {
                        let d = &w.scratch.detections[di];
                        w.tracker.seed(d.bbox, d.truth_id);
                    }
                }
                let dropped = w.tracker.prune();
                for id in dropped {
                    w.track_global.remove(&id);
                }

                // 7. Overheads.
                let tracked = w.tracker.tracks().len()
                    + if algorithm == Algorithm::Balb {
                        w.shadows.len()
                    } else {
                        0
                    };
                span_into(
                    w.trace.as_mut(),
                    Stage::Track,
                    overhead.tracking_per_object_ms * tracked as f64,
                    tracked,
                );
                RegularOutput {
                    latency_ms,
                    detected,
                    taken: w.scratch.takeover_seeds.iter().map(|&(g, _)| g).collect(),
                    probes,
                    sample: OverheadSample {
                        central_ms,
                        tracking_ms: overhead.flow_base_ms
                            + overhead.tracking_per_object_ms * tracked as f64,
                        distributed_ms,
                        batching_ms,
                    },
                }
            })
        };

        // Index-ordered merge of the cross-camera effects.
        let mut latency = Vec::with_capacity(m);
        let mut detected = HashSet::new();
        let mut oh = Vec::with_capacity(m);
        for (i, out) in outs.into_iter().enumerate() {
            self.stats.takeovers += out.taken.len();
            for g in out.taken {
                self.assignment[g].push(i);
            }
            self.stats.probes += out.probes;
            latency.push(out.latency_ms);
            detected.extend(out.detected);
            oh.push(out.sample);
        }
        (latency, detected, oh)
    }
}

/// One tenant's steppable pipeline for the multi-tenant serving front-end
/// (`mvs serve`): the same runtime as [`run_pipeline`], but driven frame
/// by frame by an external event loop instead of a closed run loop. Owns
/// its scenario, configuration, and all runtime state, so N instances
/// multiplex freely onto one scheduler core.
///
/// The capture clock advances by exactly one frame per [`TenantPipeline::step`]
/// or [`TenantPipeline::skip`] call; key frames fall on capture indices
/// divisible by the configured horizon. A skipped key frame means the
/// tenant coasts on its stale schedule until the next *processed* key
/// frame — the same degradation path as a lost key-frame round trip.
///
/// # Examples
///
/// ```no_run
/// use mvs_sim::{Algorithm, PipelineConfig, Scenario, ScenarioKind, TenantPipeline};
///
/// let scenario = Scenario::new(ScenarioKind::S2);
/// let config = PipelineConfig::paper_default(Algorithm::Balb);
/// let mut tenant = TenantPipeline::new(&scenario, &config);
/// let service_ms = tenant.step(); // frame 0 (a key frame)
/// tenant.skip(); // frame 1 dropped by the ingest lane
/// let (result, _trace) = tenant.finish();
/// assert_eq!(result.frames, 1);
/// assert!(service_ms > 0.0);
/// ```
pub struct TenantPipeline {
    inner: Pipeline,
    workers: Vec<CameraWorker>,
    next_frame: usize,
    /// Armed by [`TenantPipeline::poison_next_step`]: the next `step`
    /// panics with a [`PoisonPanic`] payload (chaos injection).
    poisoned: bool,
}

/// Marker payload of a chaos-injected pipeline panic: the serve loop arms
/// a tenant via [`TenantPipeline::poison_next_step`], catches the
/// resulting unwind, and quarantines the tenant. Carrying a dedicated
/// payload type lets the catch site distinguish injected poison from a
/// genuine pipeline bug — anything else is re-raised, never swallowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonPanic;

impl TenantPipeline {
    /// Builds a steppable pipeline (trains association models, warms the
    /// world — the same setup as [`run_pipeline`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_pipeline`].
    pub fn new(scenario: &Scenario, config: &PipelineConfig) -> TenantPipeline {
        assert!(config.horizon > 0, "horizon must be positive");
        let mut inner = Pipeline::new(scenario, config);
        let workers = std::mem::take(&mut inner.workers);
        TenantPipeline {
            inner,
            workers,
            next_frame: 0,
            poisoned: false,
        }
    }

    /// Frames per second of the tenant's scenario (its capture clock).
    pub fn fps(&self) -> f64 {
        self.inner.scenario.fps
    }

    /// Number of cameras in the tenant's deployment.
    pub fn num_cameras(&self) -> usize {
        self.workers.len()
    }

    /// The capture index the next [`TenantPipeline::step`] or
    /// [`TenantPipeline::skip`] will consume.
    pub fn next_frame(&self) -> usize {
        self.next_frame
    }

    /// Currently configured redundancy degree.
    pub fn redundancy(&self) -> usize {
        self.inner.config.redundancy
    }

    /// Reconfigures the redundancy degree, effective at the next processed
    /// key frame. Admission control uses this to shed load (redundancy
    /// first, frames second) without tearing the tenant down. Any warm
    /// solver state is discarded: it described schedules of the old
    /// configuration.
    pub fn set_redundancy(&mut self, redundancy: usize) {
        assert!(redundancy > 0, "redundancy must be at least one");
        if self.inner.config.redundancy != redundancy {
            self.inner.config.redundancy = redundancy;
            self.inner.solver.reset();
            self.inner.sharded_solver.reset();
        }
    }

    /// Turns on structured tracing (see [`run_pipeline_traced`]); spans
    /// carry this tenant's frames only, so a serving front-end can label
    /// each trace with its tenant.
    pub fn enable_tracing(&mut self) {
        self.inner.tracer = Some(TraceRecorder::new(self.inner.scenario.fps));
        for (i, w) in self.workers.iter_mut().enumerate() {
            w.trace = Some(TraceRecorder::camera_buf(i));
        }
    }

    /// Processes the next capture-clock frame and returns its modeled
    /// service cost in milliseconds: the slowest camera's DNN latency plus
    /// the amortized central-stage share. This is the time the frame
    /// occupies the serving core in the event-loop model (cf.
    /// [`replay_response`](crate::replay_response) for one camera).
    ///
    /// The cost is non-negative and finite for every built-in scenario and
    /// overhead model; a poisoned model may yield a non-finite cost, which
    /// the pipeline has already excluded from its own series (counted in
    /// [`DegradationCounters::rejected_samples`]) — callers must guard the
    /// same way.
    pub fn step(&mut self) -> f64 {
        if self.poisoned {
            self.poisoned = false;
            std::panic::panic_any(PoisonPanic);
        }
        let frame = self.next_frame;
        self.next_frame += 1;
        let system = self.inner.step_frame(&mut self.workers, frame);
        system + self.inner.central_per_frame_ms
    }

    /// Arms the pipeline so its next [`TenantPipeline::step`] panics with
    /// a [`PoisonPanic`] payload before touching any state — the serve
    /// layer's chaos harness uses this to exercise its `catch_unwind`
    /// isolation and quarantine path deterministically.
    pub fn poison_next_step(&mut self) {
        self.poisoned = true;
    }

    /// Records a [`Stage::Recovery`](mvs_trace::Stage::Recovery) span on
    /// the coordinator lane of a traced pipeline: `replay_ms` modeled
    /// milliseconds spent replaying `frames` frames while restoring this
    /// tenant from a snapshot. No-op without tracing.
    pub fn note_recovery(&mut self, replay_ms: f64, frames: usize) {
        if let Some(tracer) = self.inner.tracer.as_mut() {
            tracer.begin_frame(self.next_frame);
            tracer
                .coordinator()
                .span(mvs_trace::Stage::Recovery, replay_ms, frames);
        }
    }

    /// Drops the next capture-clock frame without processing it (the
    /// serving front-end's latest-frame-wins backpressure displaced it).
    /// The world still advances; no camera observes or draws randomness.
    pub fn skip(&mut self) {
        self.next_frame += 1;
        self.inner.skip_frame();
    }

    /// Finalizes the tenant's series into a [`PipelineResult`] (plus the
    /// trace when [`TenantPipeline::enable_tracing`] was called).
    /// `result.frames` counts processed frames only;
    /// `result.stats.skipped_frames` counts the drops.
    pub fn finish(self) -> (PipelineResult, Option<Trace>) {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioKind};

    fn quick_config(algorithm: Algorithm) -> PipelineConfig {
        PipelineConfig {
            train_s: 40.0,
            eval_s: 30.0,
            ..PipelineConfig::paper_default(algorithm)
        }
    }

    #[test]
    fn full_baseline_latency_is_constant_slowest_camera() {
        let sc = Scenario::new(ScenarioKind::S2);
        let r = run_pipeline(&sc, &quick_config(Algorithm::Full));
        // S2 = Xavier + Nano → every frame costs the Nano's 650 ms.
        assert!((r.mean_latency_ms - 650.0).abs() < 1e-9);
        assert!(r.recall > 0.9, "full recall {}", r.recall);
    }

    #[test]
    fn balb_is_much_faster_than_full_on_s2() {
        let sc = Scenario::new(ScenarioKind::S2);
        let full = run_pipeline(&sc, &quick_config(Algorithm::Full));
        let balb = run_pipeline(&sc, &quick_config(Algorithm::Balb));
        let speedup = full.mean_latency_ms / balb.mean_latency_ms;
        assert!(speedup > 3.0, "speedup only {speedup:.2}x");
        // And detection quality stays close.
        assert!(
            balb.recall > full.recall - 0.25,
            "balb recall {} vs full {}",
            balb.recall,
            full.recall
        );
    }

    #[test]
    fn balb_ind_sits_between_full_and_balb() {
        // Needs a longer eval window than quick_config: over 30 s the
        // BALB-vs-Ind gap (~30 ms at 60 s+, incl. the paper's 90 s point)
        // is within seed noise.
        let cfg = |algorithm| PipelineConfig {
            train_s: 40.0,
            eval_s: 60.0,
            ..PipelineConfig::paper_default(algorithm)
        };
        let sc = Scenario::new(ScenarioKind::S2);
        let full = run_pipeline(&sc, &cfg(Algorithm::Full));
        let ind = run_pipeline(&sc, &cfg(Algorithm::BalbInd));
        let balb = run_pipeline(&sc, &cfg(Algorithm::Balb));
        assert!(ind.mean_latency_ms < full.mean_latency_ms);
        assert!(balb.mean_latency_ms < ind.mean_latency_ms);
    }

    #[test]
    fn results_are_deterministic() {
        let sc = Scenario::new(ScenarioKind::S2);
        let a = run_pipeline(&sc, &quick_config(Algorithm::Balb));
        let b = run_pipeline(&sc, &quick_config(Algorithm::Balb));
        assert_eq!(a.recall, b.recall);
        assert_eq!(a.latency.samples_ms(), b.latency.samples_ms());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // The engine's determinism contract: bitwise-identical results at
        // any thread count, including 1. Measured overheads off so the
        // whole PipelineResult is comparable with `==`.
        let sc = Scenario::new(ScenarioKind::S3);
        for algorithm in [Algorithm::Balb, Algorithm::StaticPartition] {
            let mut base = quick_config(algorithm);
            base.measured_overheads = false;
            let runs: Vec<PipelineResult> = [1usize, 2, 7]
                .iter()
                .map(|&threads| {
                    let cfg = PipelineConfig {
                        threads,
                        ..base.clone()
                    };
                    run_pipeline(&sc, &cfg)
                })
                .collect();
            assert_eq!(runs[0], runs[1], "{algorithm}: 1 vs 2 threads");
            assert_eq!(runs[0], runs[2], "{algorithm}: 1 vs 7 threads");
        }
    }

    #[test]
    fn warm_start_matches_cold_solves_bitwise_at_any_thread_count() {
        // The persistent BalbSolver must be invisible in the results: a
        // warm-started run is bitwise identical to one that cold-solves
        // every key frame, at 1, 2, and 4 threads. Measured overheads off
        // so the whole PipelineResult is comparable with `==`.
        let sc = Scenario::new(ScenarioKind::S2);
        for algorithm in [Algorithm::Balb, Algorithm::BalbCen] {
            let mut base = quick_config(algorithm);
            base.measured_overheads = false;
            for threads in [1usize, 2, 4] {
                let warm = run_pipeline(
                    &sc,
                    &PipelineConfig {
                        threads,
                        warm_start: true,
                        ..base.clone()
                    },
                );
                let cold = run_pipeline(
                    &sc,
                    &PipelineConfig {
                        threads,
                        warm_start: false,
                        ..base.clone()
                    },
                );
                assert_eq!(warm, cold, "{algorithm}: warm vs cold at {threads} threads");
            }
        }
    }

    #[test]
    fn warm_start_matches_cold_solves_under_faults() {
        // Degraded horizons take the cold sub-problem path; full-sync
        // horizons between them keep warm-starting. The mix must still be
        // bitwise identical to an always-cold run.
        let sc = Scenario::new(ScenarioKind::S2);
        let mut base = quick_config(Algorithm::Balb);
        base.measured_overheads = false;
        base.faults = FaultModel {
            dropout_per_horizon: 0.3,
            rejoin_per_horizon: 0.5,
            keyframe_loss: 0.2,
            ..FaultModel::none()
        };
        let warm = run_pipeline(
            &sc,
            &PipelineConfig {
                warm_start: true,
                ..base.clone()
            },
        );
        let cold = run_pipeline(
            &sc,
            &PipelineConfig {
                warm_start: false,
                ..base.clone()
            },
        );
        assert_eq!(warm, cold);
    }

    #[test]
    fn shard_solver_matches_central_bitwise_at_any_thread_count() {
        // The sharded central stage must be invisible in the results: the
        // per-component solves merged back together are bitwise identical
        // to the monolithic solve, at 1, 2, and 4 threads, warm or cold.
        let sc = Scenario::new(ScenarioKind::S2);
        for algorithm in [Algorithm::Balb, Algorithm::BalbCen] {
            let mut base = quick_config(algorithm);
            base.measured_overheads = false;
            for threads in [1usize, 2, 4] {
                for warm_start in [true, false] {
                    let sharded = run_pipeline(
                        &sc,
                        &PipelineConfig {
                            threads,
                            warm_start,
                            shard_solver: true,
                            ..base.clone()
                        },
                    );
                    let central = run_pipeline(
                        &sc,
                        &PipelineConfig {
                            threads,
                            warm_start,
                            shard_solver: false,
                            ..base.clone()
                        },
                    );
                    assert_eq!(
                        sharded, central,
                        "{algorithm}: sharded vs central at {threads} threads (warm={warm_start})"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_solver_matches_central_under_faults() {
        // Degraded horizons bypass the sharded path; fully-synced horizons
        // between them shard. The mix must still be bitwise identical to a
        // never-sharded run.
        let sc = Scenario::new(ScenarioKind::S2);
        let mut base = quick_config(Algorithm::Balb);
        base.measured_overheads = false;
        base.faults = FaultModel {
            dropout_per_horizon: 0.3,
            rejoin_per_horizon: 0.5,
            keyframe_loss: 0.2,
            ..FaultModel::none()
        };
        let sharded = run_pipeline(
            &sc,
            &PipelineConfig {
                shard_solver: true,
                ..base.clone()
            },
        );
        let central = run_pipeline(
            &sc,
            &PipelineConfig {
                shard_solver: false,
                ..base.clone()
            },
        );
        assert_eq!(sharded, central);
    }

    #[test]
    fn shard_solver_runs_a_city_scenario() {
        // A small city fleet end-to-end on the sharded path: every
        // district schedules, the run stays deterministic, and tracing
        // records central spans.
        let sc = Scenario::city(&crate::scenario::CityConfig {
            cameras: 12,
            seed: 11,
            intensity: 1.2,
        });
        let mut cfg = quick_config(Algorithm::BalbCen);
        cfg.measured_overheads = false;
        cfg.shard_solver = true;
        let (a, trace) = run_pipeline_traced(&sc, &cfg);
        let (b, _) = run_pipeline_traced(&sc, &cfg);
        assert_eq!(a, b, "sharded city run must be deterministic");
        assert!(a.recall > 0.5, "recall {}", a.recall);
        let stats = trace.stage_stats();
        assert!(
            stats.contains_key(&Stage::Central),
            "sharded path must still record central spans"
        );
    }

    #[test]
    fn tracing_changes_nothing_and_spans_are_thread_invariant() {
        let sc = Scenario::new(ScenarioKind::S2);
        let mut base = quick_config(Algorithm::Balb);
        base.measured_overheads = false;
        let untraced = run_pipeline(&sc, &base);
        let traces: Vec<Trace> = [1usize, 2, 5]
            .iter()
            .map(|&threads| {
                let cfg = PipelineConfig {
                    threads,
                    ..base.clone()
                };
                let (result, trace) = run_pipeline_traced(&sc, &cfg);
                // Recording spans must not perturb the simulation.
                assert_eq!(
                    result, untraced,
                    "traced result drifted at {threads} threads"
                );
                trace
            })
            .collect();
        assert!(!traces[0].is_empty());
        assert_eq!(traces[0].records(), traces[1].records(), "1 vs 2 threads");
        assert_eq!(traces[0].records(), traces[2].records(), "1 vs 5 threads");
        // Every stage of the pipeline shows up in a full BALB run.
        let stats = traces[0].stage_stats();
        for stage in [Stage::Central, Stage::Sync, Stage::Flow, Stage::Detect] {
            assert!(stats.contains_key(&stage), "missing {stage:?} spans");
        }
    }

    #[test]
    fn unmeasured_overheads_zero_the_scheduler_costs() {
        let sc = Scenario::new(ScenarioKind::S2);
        let mut cfg = quick_config(Algorithm::Balb);
        cfg.measured_overheads = false;
        let r = run_pipeline(&sc, &cfg);
        // Network round-trip cost is modeled, so central stays positive;
        // the measured pieces are exactly zero.
        assert!(r.overhead_mean.central_ms > 0.0);
        assert_eq!(r.overhead_mean.distributed_ms, 0.0);
    }

    #[test]
    fn overheads_are_populated_for_balb() {
        let sc = Scenario::new(ScenarioKind::S2);
        let r = run_pipeline(&sc, &quick_config(Algorithm::Balb));
        let oh = r.overhead_mean;
        assert!(oh.central_ms > 0.0);
        assert!(oh.tracking_ms > 0.0);
        assert!(oh.batching_ms > 0.0);
        // Distributed stage is measured wall-clock; generous bound so
        // debug builds pass too.
        assert!(
            oh.distributed_ms < 10.0,
            "distributed {}",
            oh.distributed_ms
        );
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_panics() {
        let sc = Scenario::new(ScenarioKind::S2);
        let mut cfg = quick_config(Algorithm::Balb);
        cfg.horizon = 0;
        run_pipeline(&sc, &cfg);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioKind};

    fn quick(algorithm: Algorithm) -> PipelineConfig {
        PipelineConfig {
            train_s: 30.0,
            eval_s: 20.0,
            ..PipelineConfig::paper_default(algorithm)
        }
    }

    #[test]
    fn sp_oracle_runs_and_tracks() {
        let sc = Scenario::new(ScenarioKind::S2);
        let r = run_pipeline(&sc, &quick(Algorithm::StaticPartitionOracle));
        assert!(r.recall > 0.8, "oracle SP recall {}", r.recall);
        assert!(r.mean_latency_ms < 650.0);
    }

    #[test]
    fn balb_cen_never_probes_new_regions() {
        // With the distributed stage off, regular-frame workload can only
        // shrink as tracks are lost; the latency series between key frames
        // must be non-increasing within every horizon.
        let sc = Scenario::new(ScenarioKind::S2);
        let r = run_pipeline(&sc, &quick(Algorithm::BalbCen));
        for horizon in r.latency.samples_ms().chunks(10) {
            // Skip the key frame (index 0); compare per-camera *counts*
            // indirectly: regular-frame system latency never exceeds the
            // first regular frame's by more than one batch step.
            let first_regular = horizon.get(1).copied().unwrap_or(0.0);
            for &v in &horizon[1..] {
                assert!(
                    v <= first_regular + 1e-9,
                    "workload grew mid-horizon without a distributed stage: {v} > {first_regular}"
                );
            }
        }
    }

    #[test]
    fn redundancy_two_tracks_objects_on_multiple_cameras() {
        let sc = Scenario::new(ScenarioKind::S2);
        let single = run_pipeline(&sc, &quick(Algorithm::Balb));
        let mut cfg = quick(Algorithm::Balb);
        cfg.redundancy = 2;
        let double = run_pipeline(&sc, &cfg);
        // More owners ⇒ more crops ⇒ more latency on at least one camera.
        let sum_single: f64 = single.per_camera_mean_ms.iter().sum();
        let sum_double: f64 = double.per_camera_mean_ms.iter().sum();
        assert!(
            sum_double > sum_single,
            "redundancy should add work: {sum_double} vs {sum_single}"
        );
    }

    #[test]
    fn overhead_model_scales_tracking_with_objects() {
        // S3 (busy) must spend more modeled tracking time than S2 (sparse).
        let busy = run_pipeline(&Scenario::new(ScenarioKind::S3), &quick(Algorithm::Balb));
        let sparse = run_pipeline(&Scenario::new(ScenarioKind::S2), &quick(Algorithm::Balb));
        assert!(busy.overhead_mean.tracking_ms > sparse.overhead_mean.tracking_ms);
        assert!(busy.overhead_mean.batching_ms > sparse.overhead_mean.batching_ms);
    }

    #[test]
    fn algorithm_display_names_are_stable() {
        let names: Vec<String> = Algorithm::ALL.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            names,
            vec!["Full", "BALB-Ind", "BALB-Cen", "BALB", "SP", "SP-Oracle"]
        );
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioKind};

    #[test]
    fn stats_reflect_distributed_activity() {
        let sc = Scenario::new(ScenarioKind::S2);
        let cfg = PipelineConfig {
            train_s: 30.0,
            eval_s: 30.0,
            ..PipelineConfig::paper_default(Algorithm::Balb)
        };
        let r = run_pipeline(&sc, &cfg);
        assert_eq!(r.stats.key_frames, 30); // 300 frames / horizon 10
        assert!(r.stats.probes > 0, "sparse traffic still has arrivals");
        // BALB-Cen never probes or takes over.
        let cen = run_pipeline(
            &sc,
            &PipelineConfig {
                train_s: 30.0,
                eval_s: 30.0,
                ..PipelineConfig::paper_default(Algorithm::BalbCen)
            },
        );
        assert_eq!(cen.stats.probes, 0);
        assert_eq!(cen.stats.takeovers, 0);
        assert_eq!(cen.stats.key_frames, 30);
    }
}
