//! The end-to-end frame-by-frame pipeline (Fig. 5).
//!
//! Drives a [`Scenario`] through the full system: key frames run full-frame
//! inspection, upload object lists to the central scheduler, associate
//! across cameras, and run the BALB central stage; regular frames run
//! optical-flow tracking, tracking-based slicing, batched partial-frame
//! inspection, and the BALB distributed stage (camera masks, new-object
//! probing, takeover). The same runtime executes every baseline of the
//! paper's evaluation, selected by [`Algorithm`].

use crate::correspond::{CorrespondenceData, TrainedAssociation};
use crate::masks::{MaskPrecompute, StaticWorldPartition};
use crate::messages::{AssignmentMessage, ObjectRecord, UploadMessage};
use crate::network::NetworkModel;
use crate::scenario::Scenario;
use crate::world::World;
use mvs_core::{CameraId, CameraInfo, CameraMask, MvsProblem, ObjectId, ObjectInfo};
use mvs_geometry::{BBox, SizeClass};
use mvs_metrics::{LatencySeries, OverheadBreakdown, OverheadSample, RecallAccumulator};
use mvs_vision::{
    find_new_regions, slice_regions, Detection, DetectionModel, FlowField, FlowTracker,
    GroundTruthObject, LatencyProfile, RegionTask, SimulatedDetector, SizeCounts, TrackId,
    TrackerConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::time::Instant;

/// Which scheduling algorithm the pipeline runs (the paper's comparison
/// set, Sec. IV-C/D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Full-frame detection on every frame of every camera.
    Full,
    /// Per-camera BALB machinery without cross-camera coordination.
    BalbInd,
    /// BALB central stage only (no distributed stage).
    BalbCen,
    /// The complete BALB system.
    Balb,
    /// Offline static spatial partitioning: the paper's SP baseline. Uses
    /// the same (imperfect) cross-camera models as BALB to build cell
    /// masks, but with a fixed processing-speed priority instead of the
    /// load-aware latency order — the allocation never reacts to load.
    StaticPartition,
    /// Ablation-only SP variant granted oracle world geometry (true view
    /// polygons and ground-truth object positions) instead of the learned
    /// models; isolates how much of SP's deficit is model error vs.
    /// load-obliviousness.
    StaticPartitionOracle,
}

impl Algorithm {
    /// All algorithms in presentation order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Full,
        Algorithm::BalbInd,
        Algorithm::BalbCen,
        Algorithm::Balb,
        Algorithm::StaticPartition,
        Algorithm::StaticPartitionOracle,
    ];
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Full => write!(f, "Full"),
            Algorithm::BalbInd => write!(f, "BALB-Ind"),
            Algorithm::BalbCen => write!(f, "BALB-Cen"),
            Algorithm::Balb => write!(f, "BALB"),
            Algorithm::StaticPartition => write!(f, "SP"),
            Algorithm::StaticPartitionOracle => write!(f, "SP-Oracle"),
        }
    }
}

/// Modeled costs of pipeline components we simulate rather than run (the
/// optical flow and GPU batch assembly of Table II). The scheduler itself
/// (central + distributed stages) is *measured*, not modeled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Fixed per-frame cost of dense optical flow on reduced resolution.
    pub flow_base_ms: f64,
    /// Additional tracking cost per live track.
    pub tracking_per_object_ms: f64,
    /// Batch-assembly cost per crop (extract + resize + pack).
    pub batch_per_crop_ms: f64,
    /// Batch-assembly cost per launched batch.
    pub batch_per_batch_ms: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            flow_base_ms: 9.0,
            tracking_per_object_ms: 1.1,
            batch_per_crop_ms: 0.9,
            batch_per_batch_ms: 2.2,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Scheduling algorithm under test.
    pub algorithm: Algorithm,
    /// Scheduling-horizon length `T` in frames (key frame + `T-1` regular).
    pub horizon: usize,
    /// Detector quality model.
    pub detection: DetectionModel,
    /// Optical-flow estimation noise (σ, pixels).
    pub flow_noise_px: f64,
    /// Neighbours for the association KNN models.
    pub assoc_k: usize,
    /// IoU threshold for cross-camera match acceptance.
    pub assoc_iou: f64,
    /// Cell size of the distributed-stage masks, pixels.
    pub grid_cell_px: u32,
    /// Seconds of simulation used to train the association models (the
    /// "first half" of the paper's protocol).
    pub train_s: f64,
    /// Seconds of simulation evaluated (the "second half").
    pub eval_s: f64,
    /// RNG seed for the whole run.
    pub seed: u64,
    /// Force batch limits to one (ablation: batching contribution).
    pub disable_batching: bool,
    /// Number of cameras assigned per object (1 = the paper's BALB; ≥2 =
    /// the Sec. V redundant-assignment extension for occlusion
    /// robustness). Only affects [`Algorithm::Balb`] / [`Algorithm::BalbCen`].
    pub redundancy: usize,
    /// Per-camera processing lag in frames (Sec. V, "Imperfect
    /// synchronization"): camera `i` processes the scene as it looked
    /// `camera_lag_frames[i]` frames ago. Empty = perfectly synchronized.
    /// Missing entries default to zero.
    pub camera_lag_frames: Vec<usize>,
    /// Per-camera tracker configuration.
    pub tracker: TrackerConfig,
    /// Camera↔scheduler link model.
    pub network: NetworkModel,
    /// Modeled component costs for Table II.
    pub overhead: OverheadModel,
}

impl PipelineConfig {
    /// The paper's operating point for a given algorithm: `T = 10` at
    /// 10 FPS, KNN `k = 3`.
    pub fn paper_default(algorithm: Algorithm) -> Self {
        PipelineConfig {
            algorithm,
            horizon: 10,
            detection: DetectionModel::default(),
            flow_noise_px: 1.0,
            assoc_k: 3,
            assoc_iou: 0.15,
            grid_cell_px: 64,
            train_s: 90.0,
            eval_s: 90.0,
            seed: 17,
            disable_batching: false,
            redundancy: 1,
            camera_lag_frames: Vec::new(),
            tracker: TrackerConfig::default(),
            network: NetworkModel::default(),
            overhead: OverheadModel::default(),
        }
    }
}

/// Distributed-stage activity counters (diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Key frames executed.
    pub key_frames: usize,
    /// Takeovers performed by the distributed stage.
    pub takeovers: usize,
    /// New-region probes issued at regular frames.
    pub probes: usize,
}

/// Results of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineResult {
    /// The algorithm that produced these numbers.
    pub algorithm: Algorithm,
    /// Evaluated frames.
    pub frames: usize,
    /// Object recall over the evaluation (Fig. 12 metric).
    pub recall: f64,
    /// Mean per-frame DNN latency on the slowest camera (Fig. 13 metric).
    pub mean_latency_ms: f64,
    /// Full per-frame system-latency series.
    pub latency: LatencySeries,
    /// Mean per-frame DNN latency per camera.
    pub per_camera_mean_ms: Vec<f64>,
    /// Full per-frame DNN latency series per camera (one inner vector per
    /// camera, one sample per evaluated frame) — input to the
    /// response-delay replay of [`replay_response`](crate::replay_response).
    pub per_camera_series_ms: Vec<Vec<f64>>,
    /// Mean per-frame overheads (Table II).
    pub overhead_mean: OverheadSample,
    /// Distributed-stage activity counters.
    pub stats: PipelineStats,
}

/// Runs the pipeline for `config` on `scenario`.
///
/// Deterministic for a fixed `(scenario, config)` pair.
///
/// # Panics
///
/// Panics on nonsensical configuration (zero horizon, empty scenario) and
/// if association-model training fails (cannot happen for the built-in
/// scenarios, whose cameras always see traffic during training).
pub fn run_pipeline(scenario: &Scenario, config: &PipelineConfig) -> PipelineResult {
    assert!(config.horizon > 0, "horizon must be positive");
    Pipeline::new(scenario, config).run()
}

/// A shadow of an object assigned to another camera: this camera's own
/// flow-updated estimate of where it is, plus how many consecutive frames
/// the cross-camera models have said it is gone from its assigned camera.
#[derive(Debug, Clone, Copy)]
struct Shadow {
    bbox: BBox,
    gone_frames: u32,
}

/// Consecutive "gone from owner" frames required before a takeover; one
/// noisy classifier answer must not steal a tracked object.
const TAKEOVER_HYSTERESIS: u32 = 3;

/// Per-horizon state for the coordinated algorithms.
#[derive(Debug, Default)]
struct HorizonState {
    /// Owner cameras per global object of this horizon (one entry with
    /// redundancy 1; more under the redundant-assignment extension).
    assignment: Vec<Vec<usize>>,
    /// Per camera: shadow boxes of objects visible here but assigned
    /// elsewhere, keyed by global index (full BALB only).
    shadows: Vec<HashMap<usize, Shadow>>,
    /// Per camera: global index of each seeded track.
    track_global: Vec<HashMap<TrackId, usize>>,
    /// Per camera: distributed-stage mask (full BALB only).
    masks: Vec<Option<CameraMask>>,
    /// Amortized central-stage cost charged to every frame of the horizon.
    central_per_frame_ms: f64,
}

struct Pipeline<'a> {
    scenario: &'a Scenario,
    config: &'a PipelineConfig,
    profiles: Vec<LatencyProfile>,
    detectors: Vec<SimulatedDetector>,
    trained: Option<TrainedAssociation>,
    precompute: Option<MaskPrecompute>,
    partition: Option<StaticWorldPartition>,
    /// SP's fixed speed-priority masks (static for the whole run).
    static_masks: Vec<Option<CameraMask>>,
    rng: ChaCha8Rng,
    world: World,
    trackers: Vec<FlowTracker>,
    prev_views: Vec<Vec<GroundTruthObject>>,
    horizon: HorizonState,
    // Outputs.
    recall: RecallAccumulator,
    latency: LatencySeries,
    per_camera: Vec<Vec<f64>>,
    overhead: OverheadBreakdown,
    stats: PipelineStats,
}

impl<'a> Pipeline<'a> {
    fn new(scenario: &'a Scenario, config: &'a PipelineConfig) -> Self {
        let m = scenario.num_cameras();
        assert!(m > 0, "scenario has no cameras");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let profiles: Vec<LatencyProfile> = scenario
            .devices
            .iter()
            .map(|&d| {
                let p = LatencyProfile::for_device(d);
                if config.disable_batching {
                    p.without_batching()
                } else {
                    p
                }
            })
            .collect();
        let detectors: Vec<SimulatedDetector> = scenario
            .cameras
            .iter()
            .map(|c| SimulatedDetector::new(config.detection, c.frame))
            .collect();

        // Train the association models on the "first half" (the training
        // segment advances the shared RNG, exactly like a recorded prefix).
        let needs_assoc = matches!(
            config.algorithm,
            Algorithm::BalbCen | Algorithm::Balb | Algorithm::StaticPartition
        );
        let (trained, precompute) = if needs_assoc {
            let data = CorrespondenceData::collect(scenario, config.train_s, 2, &mut rng);
            let trained = TrainedAssociation::train(m, &data, config.assoc_k, config.assoc_iou)
                .expect("association models must train on scenario data");
            let precompute = matches!(
                config.algorithm,
                Algorithm::Balb | Algorithm::StaticPartition
            )
            .then(|| {
                let frames: Vec<_> = scenario.cameras.iter().map(|c| c.frame).collect();
                MaskPrecompute::build(&frames, &data, config.grid_cell_px)
            });
            (Some(trained), precompute)
        } else {
            (None, None)
        };
        // SP's offline allocation: overlap cells divided among covering
        // cameras in proportion to processing power, frozen for the run.
        let static_masks = if config.algorithm == Algorithm::StaticPartition {
            let weights: Vec<f64> = profiles.iter().map(|p| p.speed_score()).collect();
            let pre = precompute.as_ref().expect("SP precomputes coverage");
            pre.sp_masks(&weights).into_iter().map(Some).collect()
        } else {
            vec![None; m]
        };
        let partition = matches!(config.algorithm, Algorithm::StaticPartitionOracle).then(|| {
            StaticWorldPartition::new(
                scenario.cameras.iter().map(|c| c.view_polygon()).collect(),
                profiles.iter().map(|p| p.speed_score()).collect(),
            )
        });

        let world = scenario.warmed_world(30.0, &mut rng);
        let prev_views = scenario
            .cameras
            .iter()
            .map(|c| c.visible_objects(&world, scenario.occlusion_threshold))
            .collect();
        let trackers = scenario
            .cameras
            .iter()
            .map(|c| FlowTracker::new(config.tracker, c.frame))
            .collect();
        Pipeline {
            scenario,
            config,
            profiles,
            detectors,
            trained,
            precompute,
            partition,
            static_masks,
            rng,
            world,
            trackers,
            prev_views,
            horizon: HorizonState {
                shadows: vec![HashMap::new(); m],
                track_global: vec![HashMap::new(); m],
                masks: vec![None; m],
                ..Default::default()
            },
            recall: RecallAccumulator::new(),
            latency: LatencySeries::new(),
            per_camera: vec![Vec::new(); m],
            overhead: OverheadBreakdown::new(),
            stats: PipelineStats::default(),
        }
    }

    fn run(mut self) -> PipelineResult {
        let dt = self.scenario.frame_dt_s();
        let frames = (self.config.eval_s * self.scenario.fps).round() as usize;
        let m = self.scenario.num_cameras();
        let lags: Vec<usize> = (0..m)
            .map(|i| self.config.camera_lag_frames.get(i).copied().unwrap_or(0))
            .collect();
        let max_lag = lags.iter().copied().max().unwrap_or(0);
        // Ring buffers of recent true views, for lagged cameras.
        let mut history: Vec<std::collections::VecDeque<Vec<GroundTruthObject>>> =
            vec![std::collections::VecDeque::with_capacity(max_lag + 1); m];
        for frame in 0..frames {
            self.world.step(dt, &mut self.rng);
            let true_views: Vec<Vec<GroundTruthObject>> = self
                .scenario
                .cameras
                .iter()
                .map(|c| c.visible_objects(&self.world, self.scenario.occlusion_threshold))
                .collect();
            // Each camera processes the scene from `lag` frames ago.
            let views: Vec<Vec<GroundTruthObject>> = (0..m)
                .map(|i| {
                    let h = &mut history[i];
                    h.push_back(true_views[i].clone());
                    if h.len() > lags[i] + 1 {
                        h.pop_front();
                    }
                    h.front().expect("just pushed").clone()
                })
                .collect();
            let flows: Vec<FlowField> = (0..views.len())
                .map(|i| {
                    FlowField::estimate(
                        &self.prev_views[i],
                        &views[i],
                        self.config.flow_noise_px,
                        &mut self.rng,
                    )
                })
                .collect();

            let is_key = frame % self.config.horizon == 0;
            let (frame_latency, detected, oh) = match self.config.algorithm {
                Algorithm::Full => self.full_frame(&views),
                _ if is_key => self.key_frame(&views),
                _ => self.regular_frame(&views, &flows),
            };

            // Recall is judged against what is truly in front of the
            // cameras *now*, which is what makes lag hurt.
            let visible: HashSet<u64> = true_views.iter().flatten().map(|g| g.id).collect();
            self.recall.record(visible, detected);
            let system = frame_latency.iter().fold(0.0, |a: f64, &b| a.max(b));
            self.latency.push(system);
            for (series, &l) in self.per_camera.iter_mut().zip(&frame_latency) {
                series.push(l);
            }
            self.overhead.record_frame(&oh);
            self.prev_views = views;
        }
        let per_camera_mean_ms = self
            .per_camera
            .iter()
            .map(|s| s.iter().sum::<f64>() / s.len().max(1) as f64)
            .collect();
        PipelineResult {
            algorithm: self.config.algorithm,
            frames,
            recall: self.recall.recall(),
            mean_latency_ms: self.latency.mean_ms(),
            latency: self.latency,
            per_camera_mean_ms,
            per_camera_series_ms: self.per_camera,
            overhead_mean: self.overhead.mean(),
            stats: self.stats,
        }
    }

    /// The Full baseline: full-frame inspection everywhere, every frame.
    #[allow(clippy::needless_range_loop)] // `i` indexes parallel per-camera state
    fn full_frame(
        &mut self,
        views: &[Vec<GroundTruthObject>],
    ) -> (Vec<f64>, HashSet<u64>, Vec<OverheadSample>) {
        let m = views.len();
        let mut latency = Vec::with_capacity(m);
        let mut detected = HashSet::new();
        for i in 0..m {
            let dets = self.detectors[i].detect_full_frame(&views[i], &mut self.rng);
            detected.extend(dets.iter().filter_map(|d| d.truth_id));
            latency.push(self.profiles[i].full_frame_ms());
        }
        (latency, detected, vec![OverheadSample::default(); m])
    }

    /// A key frame for the tracking-based algorithms.
    #[allow(clippy::needless_range_loop)] // `i` indexes parallel per-camera state
    fn key_frame(
        &mut self,
        views: &[Vec<GroundTruthObject>],
    ) -> (Vec<f64>, HashSet<u64>, Vec<OverheadSample>) {
        self.stats.key_frames += 1;
        let m = views.len();
        let mut detected = HashSet::new();
        let mut latency = Vec::with_capacity(m);
        let mut all_dets: Vec<Vec<Detection>> = Vec::with_capacity(m);
        for i in 0..m {
            let dets = self.detectors[i].detect_full_frame(&views[i], &mut self.rng);
            detected.extend(dets.iter().filter_map(|d| d.truth_id));
            latency.push(self.profiles[i].full_frame_ms());
            all_dets.push(dets);
        }
        // Reset per-horizon state.
        for t in &mut self.trackers {
            t.clear();
        }
        self.horizon = HorizonState {
            shadows: vec![HashMap::new(); m],
            track_global: vec![HashMap::new(); m],
            masks: vec![None; m],
            ..Default::default()
        };

        match self.config.algorithm {
            Algorithm::BalbInd => {
                // Every camera keeps everything it saw.
                for (i, dets) in all_dets.iter().enumerate() {
                    for d in dets {
                        self.trackers[i].seed(d.bbox, d.truth_id);
                    }
                }
            }
            Algorithm::StaticPartition => {
                // Each camera keeps the detections falling in cells its
                // static speed-priority mask owns (same imperfect models
                // as BALB's masks, but load-oblivious).
                for (i, dets) in all_dets.iter().enumerate() {
                    let mask = self.static_masks[i].as_ref().expect("SP masks built");
                    for d in dets {
                        if mask.is_responsible_for(&d.bbox) {
                            self.trackers[i].seed(d.bbox, d.truth_id);
                        }
                    }
                }
            }
            Algorithm::StaticPartitionOracle => {
                // Ablation: allocation by oracle world geometry.
                let partition = self.partition.as_ref().expect("oracle SP has a partition");
                let world_pos: HashMap<u64, mvs_geometry::Point2> = self
                    .world
                    .objects()
                    .iter()
                    .map(|o| (o.id, self.world.position_of(o)))
                    .collect();
                for (i, dets) in all_dets.iter().enumerate() {
                    for d in dets {
                        let mine = match d.truth_id.and_then(|id| world_pos.get(&id)) {
                            Some(&pos) => partition.owner(pos) == Some(i),
                            // False positives have no world anchor; the
                            // observing camera keeps them.
                            None => true,
                        };
                        if mine {
                            self.trackers[i].seed(d.bbox, d.truth_id);
                        }
                    }
                }
            }
            Algorithm::BalbCen | Algorithm::Balb => {
                let started = Instant::now();
                let trained = self.trained.as_ref().expect("association is trained");
                let boxes: Vec<Vec<BBox>> = all_dets
                    .iter()
                    .map(|d| d.iter().map(|x| x.bbox).collect())
                    .collect();
                let globals = trained.engine.associate(&boxes);
                // Build the MVS instance.
                let cameras: Vec<CameraInfo> = (0..m)
                    .map(|i| CameraInfo {
                        id: CameraId(i),
                        profile: self.profiles[i].clone(),
                    })
                    .collect();
                let margin = 1.0 + self.config.tracker.margin_frac;
                let objects: Vec<ObjectInfo> = globals
                    .iter()
                    .enumerate()
                    .map(|(g, go)| {
                        let sizes: BTreeMap<CameraId, SizeClass> = go
                            .members
                            .iter()
                            .map(|&(cam, det)| {
                                let b = boxes[cam][det];
                                (
                                    CameraId(cam),
                                    SizeClass::quantize(b.width() * margin, b.height() * margin),
                                )
                            })
                            .collect();
                        ObjectInfo {
                            id: ObjectId(g),
                            sizes,
                        }
                    })
                    .collect();
                let problem =
                    MvsProblem::new(cameras, objects).expect("pipeline builds valid instances");
                let schedule =
                    mvs_core::extensions::balb_redundant(&problem, self.config.redundancy.max(1));
                let compute_ms = started.elapsed().as_secs_f64() * 1e3;

                // Seed trackers per the assignment; record shadows.
                self.horizon.assignment = (0..globals.len())
                    .map(|g| {
                        schedule
                            .assignment
                            .owners_of(ObjectId(g))
                            .iter()
                            .map(|c| c.0)
                            .collect()
                    })
                    .collect();
                for (g, go) in globals.iter().enumerate() {
                    let owners = self.horizon.assignment[g].clone();
                    for &(cam, det) in &go.members {
                        let d = &all_dets[cam][det];
                        if owners.contains(&cam) {
                            let id = self.trackers[cam].seed(d.bbox, d.truth_id);
                            self.horizon.track_global[cam].insert(id, g);
                        } else if self.config.algorithm == Algorithm::Balb {
                            self.horizon.shadows[cam].insert(
                                g,
                                Shadow {
                                    bbox: d.bbox,
                                    gone_frames: 0,
                                },
                            );
                        }
                    }
                }
                // Distributed-stage masks under the new priority order.
                if self.config.algorithm == Algorithm::Balb {
                    let pre = self.precompute.as_ref().expect("BALB precomputes masks");
                    for i in 0..m {
                        self.horizon.masks[i] = Some(pre.mask_for(i, &schedule.priority));
                    }
                }
                // Central-stage cost: computation plus the slowest camera's
                // key-frame round trip (typed wire messages), amortized
                // over the horizon.
                let uplink_ms = all_dets
                    .iter()
                    .enumerate()
                    .map(|(cam, dets)| {
                        let msg = UploadMessage {
                            camera: cam as u32,
                            frame: 0,
                            objects: dets
                                .iter()
                                .enumerate()
                                .map(|(d, det)| ObjectRecord {
                                    detection: d as u32,
                                    bbox: det.bbox,
                                    confidence: det.confidence as f32,
                                    size: SizeClass::quantize(det.bbox.width(), det.bbox.height()),
                                })
                                .collect(),
                        };
                        self.config.network.uplink_ms(msg.encoded_len())
                    })
                    .fold(0.0, f64::max);
                let reply = AssignmentMessage {
                    horizon: 0,
                    assignments: (0..globals.len())
                        .map(|g| {
                            (
                                g as u32,
                                self.horizon.assignment[g]
                                    .iter()
                                    .map(|&c| c as u32)
                                    .collect(),
                            )
                        })
                        .collect(),
                    priority: schedule.priority.iter().map(|c| c.0 as u32).collect(),
                };
                let downlink_ms = self.config.network.downlink_ms(reply.encoded_len());
                self.horizon.central_per_frame_ms =
                    (compute_ms + uplink_ms + downlink_ms) / self.config.horizon as f64;
            }
            Algorithm::Full => unreachable!("handled by full_frame"),
        }
        let oh = vec![
            OverheadSample {
                central_ms: self.horizon.central_per_frame_ms,
                ..Default::default()
            };
            m
        ];
        (latency, detected, oh)
    }

    /// A regular frame: flow prediction, slicing, batched partial
    /// inspection, and the distributed stage.
    fn regular_frame(
        &mut self,
        views: &[Vec<GroundTruthObject>],
        flows: &[FlowField],
    ) -> (Vec<f64>, HashSet<u64>, Vec<OverheadSample>) {
        let m = views.len();
        let mut latency = Vec::with_capacity(m);
        let mut detected = HashSet::new();
        let mut oh = Vec::with_capacity(m);
        for i in 0..m {
            let frame_dims = self.scenario.cameras[i].frame;
            // 1. Flow-predict tracks and shadows.
            self.trackers[i].predict(&flows[i]);
            if self.config.algorithm == Algorithm::Balb {
                let shadows = &mut self.horizon.shadows[i];
                let flow = &flows[i];
                shadows.retain(|_, s| {
                    let moved = s
                        .bbox
                        .translated(flow.displacement_at(s.bbox.center()).displacement);
                    match moved.clamped_to(frame_dims) {
                        Some(c) if c.area() > 0.25 * s.bbox.area() => {
                            s.bbox = moved;
                            true
                        }
                        _ => false,
                    }
                });
            }

            // 2. Distributed stage (measured).
            let distributed_started = Instant::now();
            let mut takeover_seeds: Vec<(usize, BBox)> = Vec::new();
            if self.config.algorithm == Algorithm::Balb {
                let trained = self.trained.as_ref().expect("trained");
                let mask = self.horizon.masks[i].as_ref().expect("mask built");
                let assignment = &self.horizon.assignment;
                for (&g, shadow) in self.horizon.shadows[i].iter_mut() {
                    let owners = &assignment[g];
                    if owners.contains(&i) {
                        continue;
                    }
                    // The object has left *every* assigned camera's view
                    // (per the synchronized pair models); require the
                    // verdict to persist so one noisy classifier answer
                    // does not steal a still-tracked object. If this
                    // camera owns the cell where the object now is, it
                    // takes over.
                    let gone_everywhere = owners
                        .iter()
                        .all(|&owner| trained.map_box(i, owner, &shadow.bbox).is_none());
                    if gone_everywhere {
                        shadow.gone_frames += 1;
                    } else {
                        shadow.gone_frames = 0;
                    }
                    if shadow.gone_frames >= TAKEOVER_HYSTERESIS
                        && mask.is_responsible_for(&shadow.bbox)
                    {
                        takeover_seeds.push((g, shadow.bbox));
                    }
                }
                self.stats.takeovers += takeover_seeds.len();
                for (g, bbox) in &takeover_seeds {
                    self.horizon.shadows[i].remove(g);
                    self.horizon.assignment[*g].push(i);
                    let id = self.trackers[i].seed(*bbox, None);
                    self.horizon.track_global[i].insert(id, *g);
                }
            }
            let distributed_ms = distributed_started.elapsed().as_secs_f64() * 1e3;

            // 3. Slice regions for live tracks.
            let mut tasks: Vec<RegionTask> = slice_regions(self.trackers[i].tracks(), frame_dims);

            // 4. New-region probing.
            let probe_allowed = matches!(
                self.config.algorithm,
                Algorithm::BalbInd
                    | Algorithm::Balb
                    | Algorithm::StaticPartition
                    | Algorithm::StaticPartitionOracle
            );
            if probe_allowed {
                let mut predicted: Vec<BBox> =
                    self.trackers[i].tracks().iter().map(|t| t.bbox).collect();
                if self.config.algorithm == Algorithm::Balb {
                    predicted.extend(self.horizon.shadows[i].values().map(|s| s.bbox));
                }
                let fresh = find_new_regions(flows[i].moving_clusters(), &predicted, 0.5);
                for region in fresh {
                    let responsible = match self.config.algorithm {
                        Algorithm::BalbInd => true,
                        Algorithm::Balb => self.horizon.masks[i]
                            .as_ref()
                            .expect("mask built")
                            .is_responsible_for(&region),
                        Algorithm::StaticPartition => self.static_masks[i]
                            .as_ref()
                            .expect("SP masks built")
                            .is_responsible_for(&region),
                        Algorithm::StaticPartitionOracle => {
                            // The oracle SP allocation is geometric; check
                            // the world region behind the cluster.
                            let partition = self.partition.as_ref().expect("SP partition");
                            views[i].iter().any(|g| {
                                g.bbox.coverage_by(&region) >= 0.35
                                    && self
                                        .world
                                        .objects()
                                        .iter()
                                        .find(|o| o.id == g.id)
                                        .map(|o| {
                                            partition.owner(self.world.position_of(o)) == Some(i)
                                        })
                                        .unwrap_or(false)
                            })
                        }
                        _ => false,
                    };
                    if responsible {
                        if let Some(task) = RegionTask::for_region(region, frame_dims) {
                            tasks.push(task);
                            self.stats.probes += 1;
                        }
                    }
                }
            }

            // 5. Run the (simulated) DNN on every crop; batching decides
            // the latency.
            let counts = SizeCounts::from_sizes(tasks.iter().map(|t| t.size));
            latency.push(counts.latency_ms(&self.profiles[i]));
            let mut detections: Vec<Detection> = Vec::new();
            for task in &tasks {
                detections.extend(self.detectors[i].detect_region(
                    &task.region,
                    task.size,
                    &views[i],
                    &mut self.rng,
                ));
            }
            // Deduplicate: neighbouring crops can both cover one object.
            detections.sort_by_key(|a| a.truth_id);
            detections.dedup_by(|a, b| a.truth_id.is_some() && a.truth_id == b.truth_id);
            detected.extend(detections.iter().filter_map(|d| d.truth_id));

            // 6. Track association + lifecycle.
            let outcome = self.trackers[i].associate(&detections);
            if probe_allowed {
                for &di in &outcome.unmatched_detections {
                    let d = &detections[di];
                    self.trackers[i].seed(d.bbox, d.truth_id);
                }
            }
            let dropped = self.trackers[i].prune();
            for id in dropped {
                self.horizon.track_global[i].remove(&id);
            }

            // 7. Overheads.
            let tracked = self.trackers[i].tracks().len()
                + if self.config.algorithm == Algorithm::Balb {
                    self.horizon.shadows[i].len()
                } else {
                    0
                };
            let batches: usize = counts.batches(&self.profiles[i]).iter().sum();
            oh.push(OverheadSample {
                central_ms: self.horizon.central_per_frame_ms,
                tracking_ms: self.config.overhead.flow_base_ms
                    + self.config.overhead.tracking_per_object_ms * tracked as f64,
                distributed_ms,
                batching_ms: self.config.overhead.batch_per_crop_ms * tasks.len() as f64
                    + self.config.overhead.batch_per_batch_ms * batches as f64,
            });
        }
        (latency, detected, oh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioKind};

    fn quick_config(algorithm: Algorithm) -> PipelineConfig {
        PipelineConfig {
            train_s: 40.0,
            eval_s: 30.0,
            ..PipelineConfig::paper_default(algorithm)
        }
    }

    #[test]
    fn full_baseline_latency_is_constant_slowest_camera() {
        let sc = Scenario::new(ScenarioKind::S2);
        let r = run_pipeline(&sc, &quick_config(Algorithm::Full));
        // S2 = Xavier + Nano → every frame costs the Nano's 650 ms.
        assert!((r.mean_latency_ms - 650.0).abs() < 1e-9);
        assert!(r.recall > 0.9, "full recall {}", r.recall);
    }

    #[test]
    fn balb_is_much_faster_than_full_on_s2() {
        let sc = Scenario::new(ScenarioKind::S2);
        let full = run_pipeline(&sc, &quick_config(Algorithm::Full));
        let balb = run_pipeline(&sc, &quick_config(Algorithm::Balb));
        let speedup = full.mean_latency_ms / balb.mean_latency_ms;
        assert!(speedup > 3.0, "speedup only {speedup:.2}x");
        // And detection quality stays close.
        assert!(
            balb.recall > full.recall - 0.25,
            "balb recall {} vs full {}",
            balb.recall,
            full.recall
        );
    }

    #[test]
    fn balb_ind_sits_between_full_and_balb() {
        let sc = Scenario::new(ScenarioKind::S2);
        let full = run_pipeline(&sc, &quick_config(Algorithm::Full));
        let ind = run_pipeline(&sc, &quick_config(Algorithm::BalbInd));
        let balb = run_pipeline(&sc, &quick_config(Algorithm::Balb));
        assert!(ind.mean_latency_ms < full.mean_latency_ms);
        assert!(balb.mean_latency_ms < ind.mean_latency_ms);
    }

    #[test]
    fn results_are_deterministic() {
        let sc = Scenario::new(ScenarioKind::S2);
        let a = run_pipeline(&sc, &quick_config(Algorithm::Balb));
        let b = run_pipeline(&sc, &quick_config(Algorithm::Balb));
        assert_eq!(a.recall, b.recall);
        assert_eq!(a.latency.samples_ms(), b.latency.samples_ms());
    }

    #[test]
    fn overheads_are_populated_for_balb() {
        let sc = Scenario::new(ScenarioKind::S2);
        let r = run_pipeline(&sc, &quick_config(Algorithm::Balb));
        let oh = r.overhead_mean;
        assert!(oh.central_ms > 0.0);
        assert!(oh.tracking_ms > 0.0);
        assert!(oh.batching_ms > 0.0);
        // Distributed stage is measured wall-clock; generous bound so
        // debug builds pass too.
        assert!(
            oh.distributed_ms < 10.0,
            "distributed {}",
            oh.distributed_ms
        );
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_panics() {
        let sc = Scenario::new(ScenarioKind::S2);
        let mut cfg = quick_config(Algorithm::Balb);
        cfg.horizon = 0;
        run_pipeline(&sc, &cfg);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioKind};

    fn quick(algorithm: Algorithm) -> PipelineConfig {
        PipelineConfig {
            train_s: 30.0,
            eval_s: 20.0,
            ..PipelineConfig::paper_default(algorithm)
        }
    }

    #[test]
    fn sp_oracle_runs_and_tracks() {
        let sc = Scenario::new(ScenarioKind::S2);
        let r = run_pipeline(&sc, &quick(Algorithm::StaticPartitionOracle));
        assert!(r.recall > 0.8, "oracle SP recall {}", r.recall);
        assert!(r.mean_latency_ms < 650.0);
    }

    #[test]
    fn balb_cen_never_probes_new_regions() {
        // With the distributed stage off, regular-frame workload can only
        // shrink as tracks are lost; the latency series between key frames
        // must be non-increasing within every horizon.
        let sc = Scenario::new(ScenarioKind::S2);
        let r = run_pipeline(&sc, &quick(Algorithm::BalbCen));
        for horizon in r.latency.samples_ms().chunks(10) {
            // Skip the key frame (index 0); compare per-camera *counts*
            // indirectly: regular-frame system latency never exceeds the
            // first regular frame's by more than one batch step.
            let first_regular = horizon.get(1).copied().unwrap_or(0.0);
            for &v in &horizon[1..] {
                assert!(
                    v <= first_regular + 1e-9,
                    "workload grew mid-horizon without a distributed stage: {v} > {first_regular}"
                );
            }
        }
    }

    #[test]
    fn redundancy_two_tracks_objects_on_multiple_cameras() {
        let sc = Scenario::new(ScenarioKind::S2);
        let single = run_pipeline(&sc, &quick(Algorithm::Balb));
        let mut cfg = quick(Algorithm::Balb);
        cfg.redundancy = 2;
        let double = run_pipeline(&sc, &cfg);
        // More owners ⇒ more crops ⇒ more latency on at least one camera.
        let sum_single: f64 = single.per_camera_mean_ms.iter().sum();
        let sum_double: f64 = double.per_camera_mean_ms.iter().sum();
        assert!(
            sum_double > sum_single,
            "redundancy should add work: {sum_double} vs {sum_single}"
        );
    }

    #[test]
    fn overhead_model_scales_tracking_with_objects() {
        // S3 (busy) must spend more modeled tracking time than S2 (sparse).
        let busy = run_pipeline(&Scenario::new(ScenarioKind::S3), &quick(Algorithm::Balb));
        let sparse = run_pipeline(&Scenario::new(ScenarioKind::S2), &quick(Algorithm::Balb));
        assert!(busy.overhead_mean.tracking_ms > sparse.overhead_mean.tracking_ms);
        assert!(busy.overhead_mean.batching_ms > sparse.overhead_mean.batching_ms);
    }

    #[test]
    fn algorithm_display_names_are_stable() {
        let names: Vec<String> = Algorithm::ALL.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            names,
            vec!["Full", "BALB-Ind", "BALB-Cen", "BALB", "SP", "SP-Oracle"]
        );
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioKind};

    #[test]
    fn stats_reflect_distributed_activity() {
        let sc = Scenario::new(ScenarioKind::S2);
        let cfg = PipelineConfig {
            train_s: 30.0,
            eval_s: 30.0,
            ..PipelineConfig::paper_default(Algorithm::Balb)
        };
        let r = run_pipeline(&sc, &cfg);
        assert_eq!(r.stats.key_frames, 30); // 300 frames / horizon 10
        assert!(r.stats.probes > 0, "sparse traffic still has arrivals");
        // BALB-Cen never probes or takes over.
        let cen = run_pipeline(
            &sc,
            &PipelineConfig {
                train_s: 30.0,
                eval_s: 30.0,
                ..PipelineConfig::paper_default(Algorithm::BalbCen)
            },
        );
        assert_eq!(cen.stats.probes, 0);
        assert_eq!(cen.stats.takeovers, 0);
        assert_eq!(cen.stats.key_frames, 30);
    }
}
