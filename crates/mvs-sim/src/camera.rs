//! Static camera models: world→image projection and occlusion.

use crate::world::{World, WorldObject};
use mvs_geometry::{BBox, FrameDims, Point2, Polygon};
use mvs_vision::GroundTruthObject;
use serde::{Deserialize, Serialize};

/// A statically mounted camera: world pose plus a ground-plane pinhole
/// projection into its own pixel frame.
///
/// The projection models what matters for the scheduler: objects closer to
/// the camera occupy more pixels (larger crop sizes, higher per-object
/// cost), and every camera sees the shared world region at its own pixel
/// coordinates and scale (which is what makes homography-free, data-driven
/// association necessary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraModel {
    /// Camera position on the ground plane (metres).
    pub position: Point2,
    /// Viewing direction, radians (world frame).
    pub heading: f64,
    /// Half of the horizontal field of view, radians.
    pub half_fov: f64,
    /// Nearest visible ground distance, metres.
    pub near_m: f64,
    /// Farthest visible ground distance, metres.
    pub far_m: f64,
    /// Mounting height, metres.
    pub height_m: f64,
    /// Focal length in pixels.
    pub focal_px: f64,
    /// Pixel frame dimensions.
    pub frame: FrameDims,
}

impl CameraModel {
    /// A camera at `position` looking at `target`, with sensible defaults
    /// for the remaining intrinsics.
    pub fn looking_at(position: Point2, target: Point2, frame: FrameDims) -> Self {
        let d = target - position;
        CameraModel {
            position,
            heading: d.y.atan2(d.x),
            half_fov: 0.48,
            near_m: 4.0,
            far_m: 90.0,
            height_m: 6.0,
            focal_px: 1000.0,
            frame,
        }
    }

    /// The camera's visibility footprint on the ground plane.
    pub fn view_polygon(&self) -> Polygon {
        Polygon::view_wedge(
            self.position,
            self.heading,
            self.half_fov,
            self.near_m,
            self.far_m,
        )
    }

    /// Projects a world-plane object into this camera's pixel frame.
    ///
    /// Returns `None` when the object is outside the view wedge or its
    /// projected box retains too little area inside the frame. The box is a
    /// ground-plane pinhole projection: horizontal position/scale follow
    /// `focal · lateral / depth`, the bottom edge sits where the ground at
    /// that depth projects, and the top edge rises with object height.
    pub fn project(&self, world_pos: Point2, length_m: f64, height_m: f64) -> Option<BBox> {
        let rel = world_pos - self.position;
        let dir = Point2::new(self.heading.cos(), self.heading.sin());
        let right = Point2::new(dir.y, -dir.x);
        let depth = rel.dot(dir);
        if depth < self.near_m || depth > self.far_m {
            return None;
        }
        let lateral = rel.dot(right);
        if lateral.abs() / depth > self.half_fov.tan() {
            return None;
        }
        let cx = self.frame.width as f64 / 2.0;
        // Horizon row: where infinitely-far ground projects. Placed at 30%
        // of the frame height, as with a typical slightly-downward tilt.
        let horizon = 0.30 * self.frame.height as f64;
        let x_center = cx + self.focal_px * lateral / depth;
        let y_bottom = horizon + self.focal_px * self.height_m / depth;
        let y_top = horizon + self.focal_px * (self.height_m - height_m) / depth;
        let width = self.focal_px * length_m / depth;
        let raw = BBox::new(
            x_center - width / 2.0,
            y_top,
            x_center + width / 2.0,
            y_bottom,
        )
        .ok()?;
        let clamped = raw.clamped_to(self.frame)?;
        // Require most of the object to be inside the frame.
        (clamped.area() >= 0.5 * raw.area()).then_some(clamped)
    }

    /// Projects every world object visible to this camera, applying
    /// depth-order occlusion: an object mostly hidden behind a nearer
    /// object's box is dropped.
    pub fn visible_objects(
        &self,
        world: &World,
        occlusion_threshold: f64,
    ) -> Vec<GroundTruthObject> {
        let dir = Point2::new(self.heading.cos(), self.heading.sin());
        // (depth, ground-truth) pairs, nearest first.
        let mut projected: Vec<(f64, GroundTruthObject)> = world
            .objects()
            .iter()
            .filter_map(|o: &WorldObject| {
                let pos = world.position_of(o);
                let bbox = self.project(pos, o.length_m, o.height_m)?;
                let depth = (pos - self.position).dot(dir);
                Some((depth, GroundTruthObject { id: o.id, bbox }))
            })
            .collect();
        projected.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite depth"));
        let mut out: Vec<GroundTruthObject> = Vec::with_capacity(projected.len());
        for (_, gt) in projected {
            let occluded = out
                .iter()
                .any(|nearer| gt.bbox.coverage_by(&nearer.bbox) >= occlusion_threshold);
            if !occluded {
                out.push(gt);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::{FollowingModel, Route, SpawnConfig};
    use crate::world::Lane;

    fn camera() -> CameraModel {
        CameraModel::looking_at(Point2::ORIGIN, Point2::new(50.0, 0.0), FrameDims::REGULAR)
    }

    #[test]
    fn closer_objects_are_larger_and_lower() {
        let cam = camera();
        let near = cam.project(Point2::new(15.0, 0.0), 4.5, 1.6).unwrap();
        let far = cam.project(Point2::new(60.0, 0.0), 4.5, 1.6).unwrap();
        assert!(near.width() > 2.0 * far.width());
        assert!(near.y2() > far.y2(), "closer object sits lower in frame");
    }

    #[test]
    fn out_of_wedge_is_invisible() {
        let cam = camera();
        assert!(cam.project(Point2::new(2.0, 0.0), 4.5, 1.6).is_none()); // before near
        assert!(cam.project(Point2::new(120.0, 0.0), 4.5, 1.6).is_none()); // past far
        assert!(cam.project(Point2::new(20.0, 30.0), 4.5, 1.6).is_none()); // off-axis
        assert!(cam.project(Point2::new(-20.0, 0.0), 4.5, 1.6).is_none()); // behind
    }

    #[test]
    fn lateral_offset_moves_box_horizontally() {
        let cam = camera();
        let center = cam.project(Point2::new(30.0, 0.0), 4.5, 1.6).unwrap();
        // Camera looks along +x; right-hand side is -y… check both offsets
        // land on opposite sides of the centre.
        let left = cam.project(Point2::new(30.0, 8.0), 4.5, 1.6).unwrap();
        let right = cam.project(Point2::new(30.0, -8.0), 4.5, 1.6).unwrap();
        assert!(left.center().x < center.center().x);
        assert!(right.center().x > center.center().x);
    }

    #[test]
    fn taller_objects_have_taller_boxes() {
        let cam = camera();
        let short = cam.project(Point2::new(30.0, 0.0), 4.5, 1.4).unwrap();
        let tall = cam.project(Point2::new(30.0, 0.0), 4.5, 2.0).unwrap();
        assert!(tall.height() > short.height());
        assert_eq!(tall.y2(), short.y2()); // same ground contact row
    }

    #[test]
    fn view_polygon_agrees_with_projection() {
        let cam = camera();
        let poly = cam.view_polygon();
        // A point that projects must be inside the polygon.
        let p = Point2::new(25.0, 3.0);
        assert!(cam.project(p, 4.5, 1.6).is_some());
        assert!(poly.contains(p));
        // A point outside the polygon must not project.
        let q = Point2::new(25.0, 25.0);
        assert!(!poly.contains(q));
        assert!(cam.project(q, 4.5, 1.6).is_none());
    }

    fn world_with(positions: &[f64]) -> World {
        let lane = Lane {
            route: Route::new(vec![Point2::new(0.0, 0.0), Point2::new(200.0, 0.0)], 10.0),
            light: None,
            spawn: SpawnConfig {
                rate_per_s: 0.0,
                min_gap_m: 8.0,
            },
        };
        let mut w = World::new(vec![lane], FollowingModel::default());
        for &p in positions {
            w.spawn_at(0, p, 4.5, 1.6);
        }
        w
    }

    #[test]
    fn occlusion_drops_hidden_objects() {
        // Camera behind the lane looking along it: vehicles line up, the
        // nearer one occludes the farther one.
        let cam = CameraModel::looking_at(
            Point2::new(-10.0, 0.0),
            Point2::new(50.0, 0.0),
            FrameDims::REGULAR,
        );
        let w = world_with(&[10.0, 14.0]);
        let strict = cam.visible_objects(&w, 0.35);
        assert_eq!(strict.len(), 1, "farther vehicle occluded");
        // With occlusion effectively off, both project.
        let lax = cam.visible_objects(&w, 2.0);
        assert_eq!(lax.len(), 2);
    }

    #[test]
    fn side_view_has_no_occlusion() {
        // Camera perpendicular to the lane: vehicles are spread out
        // horizontally, nobody hides anybody.
        let cam = CameraModel::looking_at(
            Point2::new(25.0, -20.0),
            Point2::new(25.0, 0.0),
            FrameDims::REGULAR,
        );
        let w = world_with(&[15.0, 25.0, 35.0]);
        let visible = cam.visible_objects(&w, 0.65);
        assert_eq!(visible.len(), 3);
    }
}
