//! Camera↔scheduler network model.
//!
//! The paper's testbed connects the Jetson boards to the central scheduler
//! over a wired link with 100 Mbps downlink and 20 Mbps uplink. Cameras
//! upload detected-object lists at key frames and receive assignments back;
//! this module meters those messages so the Table II central-stage
//! overhead includes communication time.

use serde::{Deserialize, Serialize};

/// A symmetric-latency, asymmetric-bandwidth link model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Camera → scheduler bandwidth, megabits per second.
    pub uplink_mbps: f64,
    /// Scheduler → camera bandwidth, megabits per second.
    pub downlink_mbps: f64,
    /// One-way propagation + processing latency, ms.
    pub one_way_ms: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // The paper's testbed: 100 Mbps down, 20 Mbps up; wired LAN RTT.
        NetworkModel {
            uplink_mbps: 20.0,
            downlink_mbps: 100.0,
            one_way_ms: 0.5,
        }
    }
}

/// Serialized size of one detected-object record (box coordinates, ids,
/// confidence — a compact binary encoding).
pub const BYTES_PER_OBJECT: usize = 40;
/// Fixed per-message envelope (headers, frame id, camera id, checksums).
pub const MESSAGE_HEADER_BYTES: usize = 96;

impl NetworkModel {
    /// Time to upload `bytes` from a camera to the scheduler, ms.
    pub fn uplink_ms(&self, bytes: usize) -> f64 {
        self.one_way_ms + (bytes as f64 * 8.0) / (self.uplink_mbps * 1e6) * 1e3
    }

    /// Time to push `bytes` from the scheduler to a camera, ms.
    pub fn downlink_ms(&self, bytes: usize) -> f64 {
        self.one_way_ms + (bytes as f64 * 8.0) / (self.downlink_mbps * 1e6) * 1e3
    }

    /// Size of an object-list message carrying `num_objects` records.
    pub fn object_list_bytes(num_objects: usize) -> usize {
        MESSAGE_HEADER_BYTES + num_objects * BYTES_PER_OBJECT
    }

    /// Key-frame round-trip for one camera: upload its `uploaded` objects,
    /// receive an assignment covering `assigned` objects.
    pub fn key_frame_round_trip_ms(&self, uploaded: usize, assigned: usize) -> f64 {
        self.uplink_ms(Self::object_list_bytes(uploaded))
            + self.downlink_ms(Self::object_list_bytes(assigned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_is_slower_than_downlink() {
        let n = NetworkModel::default();
        let bytes = NetworkModel::object_list_bytes(50);
        assert!(n.uplink_ms(bytes) > n.downlink_ms(bytes));
    }

    #[test]
    fn times_scale_with_size() {
        let n = NetworkModel::default();
        assert!(n.uplink_ms(10_000) > n.uplink_ms(100));
        // 20 Mbps = 2.5 MB/s → 25 kB ≈ 10 ms + latency.
        let ms = n.uplink_ms(25_000);
        assert!((ms - (0.5 + 10.0)).abs() < 0.1, "got {ms}");
    }

    #[test]
    fn empty_message_still_pays_header_and_latency() {
        let n = NetworkModel::default();
        let ms = n.uplink_ms(NetworkModel::object_list_bytes(0));
        assert!(ms > n.one_way_ms);
        assert!(ms < 1.0);
    }

    #[test]
    fn round_trip_combines_directions() {
        let n = NetworkModel::default();
        let rt = n.key_frame_round_trip_ms(10, 5);
        let manual = n.uplink_ms(NetworkModel::object_list_bytes(10))
            + n.downlink_ms(NetworkModel::object_list_bytes(5));
        assert_eq!(rt, manual);
    }
}
