//! Serde round-trips for the simulator's persisted configuration types.

use mvs_sim::{Algorithm, PipelineConfig, Scenario, ScenarioKind};

#[test]
fn scenario_round_trips() {
    for kind in ScenarioKind::ALL {
        let sc = Scenario::new(kind);
        let json = serde_json::to_string(&sc).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(sc, back, "{kind}");
    }
}

#[test]
fn pipeline_config_round_trips() {
    let mut cfg = PipelineConfig::paper_default(Algorithm::Balb);
    cfg.redundancy = 2;
    cfg.camera_lag_frames = vec![0, 3];
    let json = serde_json::to_string(&cfg).unwrap();
    let back: PipelineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn algorithm_names_are_stable_in_json() {
    let json = serde_json::to_string(&Algorithm::StaticPartition).unwrap();
    assert_eq!(json, "\"StaticPartition\"");
    let back: Algorithm = serde_json::from_str("\"Balb\"").unwrap();
    assert_eq!(back, Algorithm::Balb);
}
