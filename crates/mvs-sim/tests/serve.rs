//! Integration and property tests for the multi-tenant serving loop
//! (ISSUE 7): lane ordering and accounting invariants, thread-count
//! determinism, and the 16-tenant acceptance workload under faults.

use mvs_sim::{run_serve, run_serve_traced, FaultModel, IngestLane, ServeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Whatever interleaving of offers and takes a lane sees, the
    // consumed sequence is a strictly increasing subsequence of the
    // offered sequence — latest-frame-wins may drop frames but can
    // never reorder or duplicate them.
    #[test]
    fn lane_never_reorders_or_duplicates(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut lane = IngestLane::new();
        let mut next_frame = 0u64;
        let mut offered = Vec::new();
        let mut taken = Vec::new();
        for offer in ops {
            if offer {
                lane.offer(next_frame);
                offered.push(next_frame);
                next_frame += 1;
            } else if let Some(f) = lane.take() {
                taken.push(f);
            }
        }
        for pair in taken.windows(2) {
            prop_assert!(pair[0] < pair[1], "consumed out of order: {pair:?}");
        }
        let mut it = offered.iter();
        for f in &taken {
            prop_assert!(
                it.any(|o| o == f),
                "consumed frame {f} is not a subsequence match"
            );
        }
    }

    // The lane accounts for every offered frame exactly once:
    // offered == delivered + dropped + still-waiting, and the queue
    // depth never exceeds one.
    #[test]
    fn lane_drop_counters_are_exact(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut lane = IngestLane::new();
        let mut next_frame = 0u64;
        let mut offers = 0u64;
        let mut takes = 0u64;
        for offer in ops {
            if offer {
                lane.offer(next_frame);
                next_frame += 1;
                offers += 1;
            } else if lane.take().is_some() {
                takes += 1;
            }
            prop_assert!(lane.depth() <= 1, "depth-1 queue grew");
            prop_assert_eq!(
                lane.offered(),
                lane.delivered() + lane.dropped() + lane.depth() as u64
            );
        }
        prop_assert_eq!(lane.offered(), offers);
        prop_assert_eq!(lane.delivered(), takes);
    }
}

/// Small serving mix used by the determinism tests.
fn small_config() -> ServeConfig {
    ServeConfig {
        tenants: 2,
        cameras_per_tenant: 4,
        duration_s: 4.0,
        train_s: 10.0,
        capacity_cores: 4.0,
        ..ServeConfig::default()
    }
}

#[test]
fn serve_is_deterministic_across_thread_counts() {
    let base = run_serve(&ServeConfig {
        threads: 1,
        ..small_config()
    });
    for threads in [2, 4] {
        let other = run_serve(&ServeConfig {
            threads,
            ..small_config()
        });
        // Reports embed their config (which includes `threads`), so
        // compare everything else field by field via a threads-normalized
        // clone.
        let mut normalized = other.clone();
        normalized.config.threads = 1;
        assert_eq!(base, normalized, "serve diverged at {threads} threads");
    }
}

#[test]
fn serve_conserves_every_captured_frame() {
    let report = run_serve(&small_config());
    for t in &report.tenants {
        assert_eq!(
            t.captured,
            t.processed + t.queue_dropped + t.policy_skipped + t.replayed,
            "tenant {}: frames leaked",
            t.tenant
        );
        assert!(t.max_lane_depth <= 1);
    }
    assert_eq!(
        report.captured,
        report.processed + report.queue_dropped + report.policy_skipped + report.replayed
    );
}

/// The ISSUE 7 acceptance workload: 16 tenants × 8 cameras × 10 fps city
/// scenarios under the fault model, served with zero panics, bounded
/// lanes, and a finite tail latency.
#[test]
fn sixteen_tenant_city_workload_survives_faults() {
    let config = ServeConfig {
        tenants: 16,
        cameras_per_tenant: 8,
        fps: 10.0,
        duration_s: 6.0,
        train_s: 10.0,
        capacity_cores: 24.0,
        faults: FaultModel {
            keyframe_loss: 0.1,
            dropout_per_horizon: 0.05,
            rejoin_per_horizon: 0.3,
            ..FaultModel::none()
        },
        ..ServeConfig::default()
    };
    let report = run_serve(&config);
    assert_eq!(report.tenants.len(), 16);
    assert!(
        report.processed > 0,
        "an overloaded service must still serve someone"
    );
    assert!(report.admitted_load_cores <= config.capacity_cores + 1e-9);
    for t in &report.tenants {
        assert!(t.max_lane_depth <= 1, "tenant {}: lane grew", t.tenant);
        assert_eq!(
            t.captured,
            t.processed + t.queue_dropped + t.policy_skipped + t.replayed
        );
        if t.processed > 0 {
            assert!(t.e2e_ms.p99.is_finite());
            assert_eq!(t.e2e_ms.rejected, 0, "poisoned e2e samples");
        }
    }
}

/// Serving stays up even when fault injection desynchronizes *every*
/// camera at *every* key frame — the pipeline coasts (the satellite-1
/// regression scenario) and the event loop keeps multiplexing.
#[test]
fn serve_survives_total_keyframe_loss() {
    let config = ServeConfig {
        tenants: 3,
        cameras_per_tenant: 4,
        duration_s: 4.0,
        train_s: 10.0,
        capacity_cores: 6.0,
        faults: FaultModel {
            keyframe_loss: 1.0,
            max_retries: 1,
            ..FaultModel::none()
        },
        ..ServeConfig::default()
    };
    let report = run_serve(&config);
    assert!(report.processed > 0);
    for t in &report.tenants {
        assert!(
            t.degradation.coasted_horizons > 0,
            "tenant {}: total loss must force coasting",
            t.tenant
        );
    }
}

#[test]
fn traced_serve_returns_one_trace_per_tenant_without_changing_results() {
    let config = small_config();
    let untraced = run_serve(&config);
    let (traced, traces) = run_serve_traced(&config);
    assert_eq!(untraced, traced, "tracing must not perturb results");
    assert_eq!(traces.len(), config.tenants);
    for (t, trace) in traces.iter().enumerate() {
        assert!(!trace.is_empty(), "tenant {t} produced no spans");
        // Labeled exports carry the tenant tag on every series.
        let label = format!("tenant=\"{t}\"");
        let text = trace.prometheus_text_labeled(&[("tenant", &t.to_string())]);
        assert!(text.contains(&label));
    }
}
