//! Determinism suite for the pipelined key-frame path.
//!
//! `PipelineConfig::pipelined` overlaps the central BALB solve with the
//! uplink-leg encoding and merges sharded cold solves as they complete.
//! The overlap is required to be *semantically invisible*: every result,
//! trace, and serve report must be bitwise identical to the sequential
//! path, at any thread count, warm or cold, sharded or monolithic, under
//! faults, and in the middle of a serve-layer chaos storm. These tests
//! pin that contract by direct `PartialEq` comparison of full results
//! (all latency series are `f64`, so equality is bitwise).

use mvs_sim::{
    run_pipeline, run_pipeline_traced, run_serve, Algorithm, FaultModel, PipelineConfig,
    PoolDegrade, Scenario, ScenarioKind, ServeConfig, ServeFaultModel,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Short pure-function run: results are a function of (scenario, config).
fn base_config() -> PipelineConfig {
    PipelineConfig {
        train_s: 30.0,
        eval_s: 3.0,
        seed: 2022,
        measured_overheads: false,
        ..PipelineConfig::paper_default(Algorithm::Balb)
    }
}

/// Asserts the pipelined run equals the sequential one bitwise for every
/// thread count, against a single sequential single-thread reference.
fn assert_pipelining_invisible(name: &str, config: &PipelineConfig) {
    let scenario = Scenario::new(ScenarioKind::S2);
    let reference = run_pipeline(
        &scenario,
        &PipelineConfig {
            threads: 1,
            pipelined: false,
            ..config.clone()
        },
    );
    for threads in THREAD_COUNTS {
        let sequential = run_pipeline(
            &scenario,
            &PipelineConfig {
                threads,
                pipelined: false,
                ..config.clone()
            },
        );
        let pipelined = run_pipeline(
            &scenario,
            &PipelineConfig {
                threads,
                pipelined: true,
                ..config.clone()
            },
        );
        assert_eq!(
            sequential, reference,
            "{name}: sequential drifted at {threads} threads"
        );
        assert_eq!(
            pipelined, reference,
            "{name}: pipelined diverged at {threads} threads"
        );
    }
}

#[test]
fn pipelined_matches_sequential_warm() {
    assert_pipelining_invisible("warm", &base_config());
}

#[test]
fn pipelined_matches_sequential_cold() {
    let config = PipelineConfig {
        warm_start: false,
        ..base_config()
    };
    assert_pipelining_invisible("cold", &config);
}

#[test]
fn pipelined_matches_sequential_sharded_cold() {
    // The cold sharded solve is the one path that actually reorders work
    // (shards merge as they complete instead of in plan order).
    let config = PipelineConfig {
        warm_start: false,
        shard_solver: true,
        ..base_config()
    };
    assert_pipelining_invisible("sharded-cold", &config);
}

#[test]
fn pipelined_matches_sequential_under_faults() {
    let config = PipelineConfig {
        faults: FaultModel {
            dropout_per_horizon: 0.5,
            rejoin_per_horizon: 0.5,
            keyframe_loss: 0.3,
            ..FaultModel::none()
        },
        ..base_config()
    };
    assert_pipelining_invisible("faulty", &config);
}

#[test]
fn pipelined_traced_matches_untraced_and_sequential_trace() {
    let scenario = Scenario::new(ScenarioKind::S2);
    let sequential = PipelineConfig {
        threads: 4,
        ..base_config()
    };
    let pipelined = PipelineConfig {
        pipelined: true,
        ..sequential.clone()
    };
    let untraced = run_pipeline(&scenario, &pipelined);
    let (traced, pipe_trace) = run_pipeline_traced(&scenario, &pipelined);
    assert_eq!(traced, untraced, "tracing perturbed the pipelined run");
    let (_, seq_trace) = run_pipeline_traced(&scenario, &sequential);
    assert_eq!(
        pipe_trace.golden_text(),
        seq_trace.golden_text(),
        "pipelining changed the recorded trace"
    );
}

/// Serve-layer chaos storm (crash + poison + pool degrade) with the
/// pipelined solve on: the report must match the sequential storm bitwise
/// (modulo the config it embeds) at every thread count.
#[test]
fn serve_chaos_storm_is_pipelining_invariant() {
    let storm = |threads, pipelined| ServeConfig {
        tenants: 2,
        cameras_per_tenant: 3,
        duration_s: 3.0,
        train_s: 8.0,
        capacity_cores: 6.0,
        threads,
        pipelined,
        chaos: ServeFaultModel {
            seed: 11,
            crash_at_us: vec![1_200_000],
            restart_delay_us: 300_000,
            poison_per_frame: 0.05,
            quarantine_us: 800_000,
            degrades: vec![PoolDegrade {
                at_us: 2_000_000,
                capacity_factor: 0.5,
                service_inflation: 1.5,
            }],
            ..ServeFaultModel::none()
        },
        snapshot_every_horizons: 1,
        ..ServeConfig::default()
    };
    let base = run_serve(&storm(1, false));
    for threads in [1, 2, 8] {
        let other = run_serve(&storm(threads, true));
        let mut normalized = other.clone();
        normalized.config.threads = 1;
        normalized.config.pipelined = false;
        assert_eq!(
            base, normalized,
            "pipelined chaos storm diverged at {threads} threads"
        );
    }
}
