//! Determinism suite for the persistent executor (ISSUE 10).
//!
//! Every per-frame and per-solve fan-out in the workspace now dispatches
//! onto `mvs_exec::pool()` instead of spawning scoped threads. The pool is
//! required to be *semantically invisible*: lane count controls where work
//! runs, never what it computes. These tests pin that contract bitwise —
//! latency series are compared through `f64::to_bits`, not float equality,
//! so `-0.0` vs `0.0` or NaN drift cannot hide behind `PartialEq` — at
//! 1/2/4/8 threads across warm, cold, sharded, faulted, and pipelined
//! runs, plus the serve layer's parallel admission/restore/readmission
//! phases under a full chaos storm.

use mvs_sim::{
    run_pipeline, run_serve, Algorithm, FaultModel, PipelineConfig, PipelineResult, PoolDegrade,
    Scenario, ScenarioKind, ServeConfig, ServeFaultModel, ServeLoop, ServeReport,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Short S2 run: small enough for debug tier-1, long enough to cross a
/// key-frame boundary so the central solve and distributed stages both run.
fn base_config() -> PipelineConfig {
    PipelineConfig {
        train_s: 30.0,
        eval_s: 3.0,
        seed: 2022,
        measured_overheads: false,
        ..PipelineConfig::paper_default(Algorithm::Balb)
    }
}

/// Asserts two results are bitwise identical: full structural equality
/// plus an explicit `to_bits` sweep over every `f64` series, so the
/// comparison cannot be weakened by float-equality semantics.
fn assert_bitwise_equal(
    name: &str,
    threads: usize,
    reference: &PipelineResult,
    got: &PipelineResult,
) {
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(reference.latency.samples_ms()),
        bits(got.latency.samples_ms()),
        "{name}: system-latency series diverged at {threads} threads"
    );
    assert_eq!(
        bits(&reference.per_camera_mean_ms),
        bits(&got.per_camera_mean_ms),
        "{name}: per-camera means diverged at {threads} threads"
    );
    for (cam, (r, g)) in reference
        .per_camera_series_ms
        .iter()
        .zip(&got.per_camera_series_ms)
        .enumerate()
    {
        assert_eq!(
            bits(r),
            bits(g),
            "{name}: camera {cam} series diverged at {threads} threads"
        );
    }
    assert_eq!(
        reference.recall.to_bits(),
        got.recall.to_bits(),
        "{name}: recall diverged at {threads} threads"
    );
    assert_eq!(
        reference, got,
        "{name}: result diverged at {threads} threads"
    );
}

/// Runs `config` at every thread count and compares against the
/// single-thread run bitwise.
fn assert_pool_invisible(name: &str, config: &PipelineConfig) {
    let scenario = Scenario::new(ScenarioKind::S2);
    let reference = run_pipeline(
        &scenario,
        &PipelineConfig {
            threads: 1,
            ..config.clone()
        },
    );
    for threads in THREAD_COUNTS {
        let got = run_pipeline(
            &scenario,
            &PipelineConfig {
                threads,
                ..config.clone()
            },
        );
        assert_bitwise_equal(name, threads, &reference, &got);
    }
}

#[test]
fn pool_matches_single_thread_warm() {
    assert_pool_invisible("warm", &base_config());
}

#[test]
fn pool_matches_single_thread_cold() {
    let config = PipelineConfig {
        warm_start: false,
        ..base_config()
    };
    assert_pool_invisible("cold", &config);
}

#[test]
fn pool_matches_single_thread_sharded() {
    // The cold sharded solve exercises `merge_as_completed`: shard
    // outputs fold in completion order, which must not be observable.
    let config = PipelineConfig {
        warm_start: false,
        shard_solver: true,
        ..base_config()
    };
    assert_pool_invisible("sharded", &config);
}

#[test]
fn pool_matches_single_thread_under_faults() {
    let config = PipelineConfig {
        faults: FaultModel {
            dropout_per_horizon: 0.5,
            rejoin_per_horizon: 0.5,
            keyframe_loss: 0.3,
            ..FaultModel::none()
        },
        ..base_config()
    };
    assert_pool_invisible("faulted", &config);
}

#[test]
fn pool_matches_single_thread_pipelined() {
    // `pipelined` routes the key-frame solve through `Executor::join`.
    let config = PipelineConfig {
        pipelined: true,
        shard_solver: true,
        ..base_config()
    };
    assert_pool_invisible("pipelined", &config);
}

/// A serve chaos storm exercising every parallel serve phase: admission
/// pilots (`new_inner`), crash restore (`restore`), and quarantine
/// readmission (`readmit_due`), all against the dispatch clock.
fn storm_config(threads: usize) -> ServeConfig {
    ServeConfig {
        tenants: 3,
        cameras_per_tenant: 3,
        duration_s: 3.0,
        train_s: 8.0,
        capacity_cores: 6.0,
        threads,
        chaos: ServeFaultModel {
            seed: 11,
            crash_at_us: vec![1_200_000],
            restart_delay_us: 300_000,
            poison_per_frame: 0.05,
            quarantine_us: 800_000,
            degrades: vec![PoolDegrade {
                at_us: 2_000_000,
                capacity_factor: 0.5,
                service_inflation: 1.5,
            }],
            ..ServeFaultModel::none()
        },
        snapshot_every_horizons: 1,
        ..ServeConfig::default()
    }
}

/// Zeroes the one legitimately thread-dependent report field (the embedded
/// config) so the rest can be compared exactly.
fn normalized(report: &ServeReport) -> ServeReport {
    let mut r = report.clone();
    r.config.threads = 0;
    r
}

#[test]
fn serve_chaos_storm_is_thread_invariant() {
    let reference = run_serve(&storm_config(1));
    for threads in THREAD_COUNTS {
        let got = run_serve(&storm_config(threads));
        assert_eq!(
            normalized(&reference),
            normalized(&got),
            "serve chaos storm diverged at {threads} threads"
        );
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        for (r, g) in reference.tenants.iter().zip(&got.tenants) {
            assert_eq!(
                bits(&[r.e2e_ms.mean, r.e2e_ms.p50, r.e2e_ms.p95, r.e2e_ms.p99]),
                bits(&[g.e2e_ms.mean, g.e2e_ms.p50, g.e2e_ms.p95, g.e2e_ms.p99]),
                "tenant {} latency summary diverged at {threads} threads",
                r.tenant
            );
        }
    }
}

/// Crash → snapshot → recover on the parallel serve loop: a coordinator
/// rebuilt from a checkpoint at 8 threads must continue bitwise exactly
/// like the uninterrupted single-thread loop.
#[test]
fn crash_recover_round_trip_on_parallel_loop() {
    let config = storm_config(8);
    let mut live = ServeLoop::new(&config).expect("valid config");
    live.run_until(1_000_000);
    let snap = live.snapshot();
    let live_report = live.run();

    let recovered = ServeLoop::recover(&config, &snap, 1_000_000).expect("recoverable");
    let recovered_report = recovered.run();
    assert_eq!(
        live_report, recovered_report,
        "recovery diverged from the live continuation"
    );

    // And the whole recovered trajectory matches the single-thread storm.
    let reference = run_serve(&storm_config(1));
    assert_eq!(normalized(&reference), normalized(&recovered_report));
}
