//! Property-based tests for the simulator: world dynamics, route
//! parameterization, and the response-delay replay.

use mvs_geometry::Point2;
use mvs_sim::{replay_response, FollowingModel, Lane, QueuePolicy, Route, SpawnConfig, World};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn straight_lane(rate: f64) -> Lane {
    Lane {
        route: Route::new(vec![Point2::new(0.0, 0.0), Point2::new(300.0, 0.0)], 10.0),
        light: None,
        spawn: SpawnConfig {
            rate_per_s: rate,
            min_gap_m: 8.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vehicles_never_overtake_within_a_lane(seed in any::<u64>(), steps in 10usize..300) {
        let mut world = World::new(vec![straight_lane(0.5)], FollowingModel::default());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..steps {
            world.step(0.1, &mut rng);
            // Order by id (spawn order) must match order by progress:
            // later arrivals are always behind earlier ones.
            let mut objs: Vec<_> = world.objects().to_vec();
            objs.sort_by_key(|o| o.id);
            for pair in objs.windows(2) {
                prop_assert!(
                    pair[0].progress_m >= pair[1].progress_m - 1e-9,
                    "vehicle {} overtook {}",
                    pair[1].id,
                    pair[0].id
                );
            }
        }
    }

    #[test]
    fn progress_is_monotone_and_bounded(seed in any::<u64>()) {
        let mut world = World::new(vec![straight_lane(0.3)], FollowingModel::default());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut last: std::collections::HashMap<u64, f64> = Default::default();
        for _ in 0..200 {
            world.step(0.1, &mut rng);
            for o in world.objects() {
                prop_assert!(o.progress_m >= 0.0);
                prop_assert!(o.progress_m < 300.0, "past the route end");
                if let Some(&prev) = last.get(&o.id) {
                    prop_assert!(o.progress_m + 1e-9 >= prev, "vehicle moved backwards");
                }
                last.insert(o.id, o.progress_m);
            }
        }
    }

    #[test]
    fn route_positions_lie_on_the_polyline_hull(
        s in 0.0f64..400.0,
        x1 in -100.0f64..100.0,
        y2 in -100.0f64..100.0,
    ) {
        prop_assume!(x1.abs() > 1.0 && y2.abs() > 1.0);
        let route = Route::new(
            vec![Point2::new(x1, 0.0), Point2::new(0.0, 0.0), Point2::new(0.0, y2)],
            5.0,
        );
        let p = route.position_at(s);
        // Every point of an axis-aligned L route has x between the
        // endpoints' x and y between the endpoints' y.
        prop_assert!(p.x >= x1.min(0.0) - 1e-9 && p.x <= x1.max(0.0) + 1e-9);
        prop_assert!(p.y >= y2.min(0.0) - 1e-9 && p.y <= y2.max(0.0) + 1e-9);
    }

    #[test]
    fn replay_conserves_frames(
        latencies in prop::collection::vec(0.0f64..900.0, 0..120),
        policy in prop::sample::select(vec![QueuePolicy::Queue, QueuePolicy::DropToLatest]),
    ) {
        let stats = replay_response(&latencies, 100.0, policy);
        prop_assert_eq!(stats.processed + stats.dropped, latencies.len());
        if policy == QueuePolicy::Queue {
            prop_assert_eq!(stats.dropped, 0);
        }
    }

    #[test]
    fn replay_never_exceeds_the_capture_rate(
        latencies in prop::collection::vec(0.0f64..900.0, 1..120),
    ) {
        let stats = replay_response(&latencies, 100.0, QueuePolicy::DropToLatest);
        prop_assert!(stats.effective_fps <= 10.0 + 1e-9);
        // Delay is at least the per-frame latency of some processed frame.
        let min_latency = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
        if stats.processed > 0 {
            prop_assert!(stats.mean_delay_ms + 1e-9 >= min_latency);
        }
    }

    #[test]
    fn drop_policy_delay_never_exceeds_queue_policy(
        latencies in prop::collection::vec(0.0f64..900.0, 1..100),
    ) {
        let dropped = replay_response(&latencies, 100.0, QueuePolicy::DropToLatest);
        let queued = replay_response(&latencies, 100.0, QueuePolicy::Queue);
        // Keeping only the latest frame can only shorten the worst wait.
        prop_assert!(dropped.max_delay_ms <= queued.max_delay_ms + 1e-9);
    }
}
