//! Crash-recovery and chaos tests for the serving layer (ISSUE 8):
//! checkpoint/restore round trips, snapshot neutrality, quarantine and
//! re-admission, pool degradation, and machine-checked invariants under
//! randomized fault schedules.
//!
//! Configs are deliberately tiny (2 tenants × 3 cameras, a few seconds)
//! so the suite stays fast in debug tier-1 runs.

use mvs_sim::{
    run_serve, PoolDegrade, ServeConfig, ServeConfigError, ServeFaultModel, ServeLoop, ServeReport,
    TransitionReason,
};
use proptest::prelude::*;

/// Small chaos-friendly serving mix.
fn small_config() -> ServeConfig {
    ServeConfig {
        tenants: 2,
        cameras_per_tenant: 3,
        duration_s: 3.0,
        train_s: 8.0,
        capacity_cores: 6.0,
        ..ServeConfig::default()
    }
}

/// Frame conservation and lane bounds — the invariants that must hold
/// under *any* fault schedule.
fn assert_conserved(report: &ServeReport) {
    for t in &report.tenants {
        assert_eq!(
            t.captured,
            t.processed + t.queue_dropped + t.policy_skipped + t.replayed,
            "tenant {}: frames leaked",
            t.tenant
        );
        assert!(t.max_lane_depth <= 1, "tenant {}: lane grew", t.tenant);
    }
    assert_eq!(
        report.captured,
        report.processed + report.queue_dropped + report.policy_skipped + report.replayed
    );
    assert!((0.0..=1.0).contains(&report.availability));
}

#[test]
fn crash_recovery_round_trip_satisfies_invariants() {
    let config = ServeConfig {
        chaos: ServeFaultModel {
            crash_at_us: vec![1_500_000],
            restart_delay_us: 400_000,
            ..ServeFaultModel::none()
        },
        snapshot_every_horizons: 1,
        ..small_config()
    };
    let report = run_serve(&config);
    assert_conserved(&report);
    assert_eq!(report.recovery.restarts, 1);
    assert_eq!(report.recovery.outage_us, 400_000);
    assert!(
        report.replayed > 0,
        "a crash mid-run must lose frames to replay"
    );
    assert!(report.recovery.snapshots_taken > 0);
    assert!(report.recovery.mttr_us().is_finite());
    assert!(report.availability < 1.0, "outage must dent availability");
    assert!(report.processed > 0, "the service must come back");
    assert!(report.e2e_ms.p99.is_finite());
    assert!(
        report.post_recovery_e2e_ms.count > 0,
        "frames served after the restart must be tracked"
    );
    assert!(report.post_recovery_e2e_ms.p99.is_finite());
}

/// Acceptance criterion: a fault-free run with snapshotting enabled is
/// bitwise identical to one without — checkpoints must never perturb
/// scheduling.
#[test]
fn snapshotting_never_changes_results() {
    let plain = run_serve(&small_config());
    let snapshotted = run_serve(&ServeConfig {
        snapshot_every_horizons: 1,
        ..small_config()
    });
    assert!(snapshotted.recovery.snapshots_taken > 0);
    let mut normalized = snapshotted.clone();
    normalized.config.snapshot_every_horizons = 0;
    normalized.recovery.snapshots_taken = plain.recovery.snapshots_taken;
    assert_eq!(plain, normalized, "snapshotting perturbed the run");
}

/// Acceptance criterion: `run_until` → `snapshot` → `recover` resumes
/// bitwise exactly — the continuation of the original loop and the
/// recovered loop produce identical reports.
#[test]
fn snapshot_recover_resumes_bitwise_exactly() {
    let config = small_config();
    let mut live = ServeLoop::new(&config).expect("valid config");
    live.run_until(1_200_000);
    let resume_at = live.now_us();
    let snapshot = live.snapshot();
    assert_eq!(snapshot.taken_at_us(), resume_at);
    let continued = live.run();
    let recovered = ServeLoop::recover(&config, &snapshot, resume_at)
        .expect("snapshot matches config")
        .run();
    assert_eq!(
        continued, recovered,
        "recovery from a checkpoint diverged from the live continuation"
    );
}

#[test]
fn chaos_is_deterministic_across_thread_counts() {
    let storm = |threads| ServeConfig {
        threads,
        chaos: ServeFaultModel {
            seed: 11,
            crash_at_us: vec![1_200_000],
            restart_delay_us: 300_000,
            poison_per_frame: 0.05,
            quarantine_us: 800_000,
            degrades: vec![PoolDegrade {
                at_us: 2_000_000,
                capacity_factor: 0.5,
                service_inflation: 1.5,
            }],
            ..ServeFaultModel::none()
        },
        snapshot_every_horizons: 1,
        ..small_config()
    };
    let base = run_serve(&storm(1));
    assert_conserved(&base);
    for threads in [2, 4] {
        let other = run_serve(&storm(threads));
        let mut normalized = other.clone();
        normalized.config.threads = 1;
        assert_eq!(base, normalized, "chaos run diverged at {threads} threads");
    }
}

#[test]
fn poison_quarantines_and_readmits_through_the_ladder() {
    let config = ServeConfig {
        duration_s: 4.0,
        chaos: ServeFaultModel {
            poison_per_frame: 1.0,
            quarantine_us: 1_000_000,
            ..ServeFaultModel::none()
        },
        ..small_config()
    };
    let report = run_serve(&config);
    assert_conserved(&report);
    assert!(report.recovery.poisoned_steps > 0, "poison never fired");
    assert!(report.recovery.quarantines >= config.tenants as u64);
    assert!(
        report.recovery.readmissions > 0,
        "expired quarantines must re-enter the ladder"
    );
    assert_eq!(
        report.processed, 0,
        "with certain poison every dispatch must die before completing"
    );
    let reasons: Vec<TransitionReason> = report.transitions.iter().map(|t| t.reason).collect();
    assert!(reasons.contains(&TransitionReason::Quarantine));
    assert!(reasons.contains(&TransitionReason::Readmission));
    // The panics were isolated: the loop finished and reported, and the
    // sibling tenants' accounting is intact (checked by assert_conserved).
    assert_eq!(report.decisions.quarantined, config.tenants);
}

#[test]
fn pool_degrade_forces_admission_reevaluation() {
    let config = ServeConfig {
        capacity_cores: 8.0,
        chaos: ServeFaultModel {
            degrades: vec![PoolDegrade {
                at_us: 1_500_000,
                capacity_factor: 0.15,
                service_inflation: 1.0,
            }],
            ..ServeFaultModel::none()
        },
        ..small_config()
    };
    let report = run_serve(&config);
    assert_conserved(&report);
    let degrade_transitions: Vec<_> = report
        .transitions
        .iter()
        .filter(|t| t.reason == TransitionReason::PoolDegrade)
        .collect();
    assert!(
        !degrade_transitions.is_empty(),
        "an 85% capacity drop must demote someone"
    );
    for t in &degrade_transitions {
        assert_eq!(t.at_us, 1_500_000, "re-evaluation must happen at the event");
        assert_ne!(t.from, t.to, "recorded transition did not change the rung");
    }
}

#[test]
fn serve_loop_surfaces_typed_errors() {
    // Crash schedule without checkpoints cannot recover.
    let err = ServeLoop::new(&ServeConfig {
        chaos: ServeFaultModel {
            crash_at_us: vec![1_000_000],
            ..ServeFaultModel::none()
        },
        snapshot_every_horizons: 0,
        ..small_config()
    })
    .err()
    .expect("crash without snapshots must be rejected");
    assert_eq!(err, ServeConfigError::CrashWithoutSnapshots);

    let err = ServeLoop::new(&ServeConfig {
        fps: 0.0,
        ..small_config()
    })
    .err()
    .expect("zero fps must be rejected");
    assert!(matches!(err, ServeConfigError::BadFps { .. }));

    // A snapshot from a differently shaped deployment is rejected.
    let mut live = ServeLoop::new(&small_config()).expect("valid config");
    live.run_until(500_000);
    let snapshot = live.snapshot();
    let bigger = ServeConfig {
        tenants: 3,
        ..small_config()
    };
    let err = ServeLoop::recover(&bigger, &snapshot, 500_000)
        .err()
        .expect("mismatched snapshot must be rejected");
    assert_eq!(
        err,
        ServeConfigError::SnapshotMismatch {
            expected: 3,
            got: 2
        }
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Whatever the crash point, chaos seed, and poison rate, the serve
    // loop conserves every captured frame, keeps lanes bounded, and
    // reports a sane availability.
    #[test]
    fn conservation_holds_under_random_chaos(
        crash_s in 0.5f64..2.5,
        seed in any::<u64>(),
        poison in 0.0f64..0.05,
    ) {
        let config = ServeConfig {
            chaos: ServeFaultModel {
                seed,
                crash_at_us: vec![(crash_s * 1e6).round() as u64],
                restart_delay_us: 300_000,
                poison_per_frame: poison,
                quarantine_us: 700_000,
                ..ServeFaultModel::none()
            },
            snapshot_every_horizons: 1,
            ..small_config()
        };
        let report = run_serve(&config);
        assert_conserved(&report);
        prop_assert_eq!(report.recovery.restarts, 1);
        prop_assert!(report.replayed > 0);
        prop_assert!(report.availability < 1.0);
    }
}
