//! Fault-injection integration tests: the pipeline must survive camera
//! dropouts and key-frame message loss, degrade gracefully (recall falls,
//! nothing panics), and stay bitwise deterministic at any thread count.

use mvs_sim::{run_pipeline, Algorithm, FaultModel, PipelineConfig, Scenario, ScenarioKind};

fn faulty_config(algorithm: Algorithm) -> PipelineConfig {
    PipelineConfig {
        train_s: 30.0,
        eval_s: 30.0,
        measured_overheads: false,
        faults: FaultModel {
            dropout_per_horizon: 0.15,
            rejoin_per_horizon: 0.5,
            keyframe_loss: 0.10,
            ..FaultModel::none()
        },
        ..PipelineConfig::paper_default(algorithm)
    }
}

#[test]
fn faulty_run_completes_without_panicking() {
    // The acceptance scenario: camera dropout plus 10% key-frame loss on
    // the busiest deployment, full BALB.
    let sc = Scenario::new(ScenarioKind::S3);
    let r = run_pipeline(&sc, &faulty_config(Algorithm::Balb));
    assert_eq!(r.frames, 300);
    assert!(r.recall > 0.0, "faults must degrade recall, not zero it");
    assert!(r.latency.samples_ms().iter().all(|l| l.is_finite()));
    assert!(
        r.degradation.any(),
        "these fault rates always fire within 30 horizons"
    );
    assert!(r.degradation.dropouts > 0, "no dropout in 30 horizons");
    assert!(
        r.degradation.lost_messages() > 0,
        "no message loss at 10% per attempt"
    );
    assert_eq!(r.degradation.rejected_samples, 0);
}

#[test]
fn faulty_runs_are_bitwise_deterministic_at_any_thread_count() {
    let sc = Scenario::new(ScenarioKind::S3);
    for algorithm in [Algorithm::Balb, Algorithm::BalbCen] {
        let runs: Vec<_> = [1usize, 2, 7]
            .iter()
            .map(|&threads| {
                let cfg = PipelineConfig {
                    threads,
                    ..faulty_config(algorithm)
                };
                run_pipeline(&sc, &cfg)
            })
            .collect();
        assert_eq!(runs[0], runs[1], "{algorithm}: 1 vs 2 threads");
        assert_eq!(runs[0], runs[2], "{algorithm}: 1 vs 7 threads");
    }
}

#[test]
fn inactive_fault_model_is_bitwise_identical_to_the_default() {
    // FaultModel::none() must take the exact same code path as a build
    // without fault injection: same RNG draws, same schedule, same result.
    let sc = Scenario::new(ScenarioKind::S2);
    let mut plain = PipelineConfig {
        train_s: 30.0,
        eval_s: 20.0,
        measured_overheads: false,
        ..PipelineConfig::paper_default(Algorithm::Balb)
    };
    plain.faults = FaultModel::none();
    let baseline = run_pipeline(&sc, &plain);
    // An explicit zero-rate model with a different retry setup is equally
    // inactive.
    let mut zeroed = plain.clone();
    zeroed.faults = FaultModel {
        max_retries: 9,
        retry_timeout_ms: 1000.0,
        ..FaultModel::none()
    };
    assert_eq!(baseline, run_pipeline(&sc, &zeroed));
    assert!(!baseline.degradation.any());
}

#[test]
fn faults_degrade_recall_but_do_not_collapse_it() {
    let sc = Scenario::new(ScenarioKind::S3);
    let clean = run_pipeline(
        &sc,
        &PipelineConfig {
            faults: FaultModel::none(),
            ..faulty_config(Algorithm::Balb)
        },
    );
    let faulty = run_pipeline(&sc, &faulty_config(Algorithm::Balb));
    assert!(
        faulty.recall <= clean.recall + 0.02,
        "faults should not improve recall: {} vs clean {}",
        faulty.recall,
        clean.recall
    );
    assert!(
        faulty.recall > 0.3 * clean.recall,
        "graceful degradation, not collapse: {} vs clean {}",
        faulty.recall,
        clean.recall
    );
}

#[test]
fn pure_message_loss_desyncs_cameras_without_killing_them() {
    let sc = Scenario::new(ScenarioKind::S2);
    let cfg = PipelineConfig {
        train_s: 30.0,
        eval_s: 30.0,
        measured_overheads: false,
        faults: FaultModel {
            keyframe_loss: 0.45,
            max_retries: 0, // every loss is final: desyncs are frequent
            ..FaultModel::none()
        },
        ..PipelineConfig::paper_default(Algorithm::Balb)
    };
    let r = run_pipeline(&sc, &cfg);
    assert_eq!(r.degradation.dropouts, 0);
    assert_eq!(r.degradation.degraded_frames, 0);
    assert!(
        r.degradation.desynced_horizons > 0,
        "45% loss with no retries must desync some horizons"
    );
    assert!(r.degradation.lost_messages() > 0);
    assert!(r.recall > 0.0);
}

#[test]
fn retries_recover_sync_where_no_retries_fail() {
    // Same loss rate: a generous retry budget should recover most round
    // trips that a zero-retry run loses for the horizon.
    let sc = Scenario::new(ScenarioKind::S2);
    let base = PipelineConfig {
        train_s: 30.0,
        eval_s: 30.0,
        measured_overheads: false,
        ..PipelineConfig::paper_default(Algorithm::Balb)
    };
    let run_with = |max_retries: u32| {
        let cfg = PipelineConfig {
            faults: FaultModel {
                keyframe_loss: 0.3,
                max_retries,
                ..FaultModel::none()
            },
            ..base.clone()
        };
        run_pipeline(&sc, &cfg)
    };
    let fragile = run_with(0);
    let robust = run_with(4);
    assert!(
        robust.degradation.desynced_horizons < fragile.degradation.desynced_horizons,
        "retries should cut desyncs: {} vs {}",
        robust.degradation.desynced_horizons,
        fragile.degradation.desynced_horizons
    );
    assert!(robust.degradation.retransmits > 0);
}

#[test]
fn dropouts_cost_coverage_on_every_algorithm() {
    // The degradation layer is algorithm-agnostic: dead cameras lose
    // frames for the baselines too, and none of them panic.
    let sc = Scenario::new(ScenarioKind::S2);
    for algorithm in [
        Algorithm::Full,
        Algorithm::BalbInd,
        Algorithm::BalbCen,
        Algorithm::Balb,
        Algorithm::StaticPartition,
    ] {
        let cfg = PipelineConfig {
            train_s: 30.0,
            eval_s: 30.0,
            measured_overheads: false,
            faults: FaultModel {
                dropout_per_horizon: 0.3,
                rejoin_per_horizon: 0.4,
                ..FaultModel::none()
            },
            ..PipelineConfig::paper_default(algorithm)
        };
        let r = run_pipeline(&sc, &cfg);
        assert!(r.degradation.dropouts > 0, "{algorithm}: no dropouts");
        assert!(
            r.degradation.degraded_frames > 0,
            "{algorithm}: no degraded frames"
        );
        assert!(r.recall > 0.0, "{algorithm}: recall collapsed");
    }
}

#[test]
fn total_keyframe_loss_coasts_every_horizon_instead_of_panicking() {
    // Regression: with 100% key-frame loss every camera desyncs in every
    // horizon, so the central stage never has a synced sub-fleet to solve
    // on. A long-running service must degrade (the whole fleet coasts on
    // stale masks and running tracks, counted per horizon) — this used to
    // be guarded by a single `.expect("at least one synced camera")` deep
    // in the key-frame path.
    let sc = Scenario::new(ScenarioKind::S2);
    for algorithm in [Algorithm::Balb, Algorithm::BalbCen] {
        let cfg = PipelineConfig {
            train_s: 30.0,
            eval_s: 30.0,
            measured_overheads: false,
            faults: FaultModel {
                keyframe_loss: 1.0,
                max_retries: 1,
                ..FaultModel::none()
            },
            ..PipelineConfig::paper_default(algorithm)
        };
        let r = run_pipeline(&sc, &cfg);
        let key_frames = r.stats.key_frames as u64;
        assert!(key_frames > 0, "{algorithm}: no key frames ran");
        assert_eq!(
            r.degradation.coasted_horizons, key_frames,
            "{algorithm}: every horizon must coast when nobody syncs"
        );
        assert_eq!(
            r.degradation.desynced_horizons,
            key_frames * sc.num_cameras() as u64,
            "{algorithm}: every camera desyncs every horizon"
        );
        // Never scheduled ⇒ nothing tracked ⇒ recall collapses — but the
        // run completes with finite latencies and exact bookkeeping.
        assert!(r.latency.samples_ms().iter().all(|l| l.is_finite()));
        assert_eq!(r.degradation.rejected_samples, 0);
        assert_eq!(r.frames, 300);
    }
}

#[test]
fn total_keyframe_loss_is_deterministic_across_thread_counts() {
    let sc = Scenario::new(ScenarioKind::S2);
    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let cfg = PipelineConfig {
                train_s: 30.0,
                eval_s: 30.0,
                measured_overheads: false,
                threads,
                faults: FaultModel {
                    keyframe_loss: 1.0,
                    max_retries: 1,
                    ..FaultModel::none()
                },
                ..PipelineConfig::paper_default(Algorithm::Balb)
            };
            run_pipeline(&sc, &cfg)
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads");
    assert_eq!(runs[0], runs[2], "1 vs 4 threads");
}
