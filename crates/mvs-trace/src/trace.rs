//! Completed traces: per-stage aggregation and the three export formats.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mvs_metrics::{Running, Summary};
use serde::{Deserialize, Serialize};

use crate::span::{SpanRecord, Stage};

/// A completed trace: the deterministic span stream of one pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    frame_interval_us: u64,
    records: Vec<SpanRecord>,
}

/// Crate-internal constructor used by `TraceRecorder::finish`.
pub(crate) fn trace_from_parts(frame_interval_us: u64, records: Vec<SpanRecord>) -> Trace {
    Trace {
        frame_interval_us,
        records,
    }
}

/// Aggregated statistics for one stage across a whole trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Running mean/variance over span durations (milliseconds).
    pub running: Running,
    /// Percentile summary over span durations (milliseconds).
    pub summary: Summary,
    /// Sum of span durations in milliseconds.
    pub total_ms: f64,
    /// Sum of span item counts.
    pub items: u64,
}

impl Trace {
    /// Sim-clock frame interval in microseconds.
    #[must_use]
    pub fn frame_interval_us(&self) -> u64 {
        self.frame_interval_us
    }

    /// The raw span stream, in deterministic drain order.
    #[must_use]
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Number of spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no spans were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sum of modeled span durations across all stages, in milliseconds.
    #[must_use]
    pub fn total_modeled_ms(&self) -> f64 {
        self.records.iter().map(|r| r.dur_us as f64 / 1_000.0).sum()
    }

    /// Per-stage aggregation over the whole trace. Stages that never
    /// recorded a span are absent from the map.
    #[must_use]
    pub fn stage_stats(&self) -> BTreeMap<Stage, StageStats> {
        let mut samples: BTreeMap<Stage, (Vec<f64>, u64)> = BTreeMap::new();
        for r in &self.records {
            let entry = samples.entry(r.stage).or_default();
            entry.0.push(r.dur_us as f64 / 1_000.0);
            entry.1 += u64::from(r.items);
        }
        samples
            .into_iter()
            .map(|(stage, (durs, items))| {
                let mut running = Running::new();
                running.extend(durs.iter().copied());
                let stats = StageStats {
                    running,
                    summary: Summary::of(&durs),
                    total_ms: durs.iter().sum(),
                    items,
                };
                (stage, stats)
            })
            .collect()
    }

    /// Prometheus text-format snapshot: a `summary` metric with p50/p99
    /// quantiles per stage, plus item and span counters.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        self.prometheus_text_labeled(&[])
    }

    /// Like [`Trace::prometheus_text`], but with extra constant labels
    /// prepended to every series — the multi-tenant serving path tags each
    /// tenant's trace with `[("tenant", "3")]` so one scrape distinguishes
    /// tenants. With no labels the output is byte-identical to
    /// [`Trace::prometheus_text`].
    ///
    /// # Panics
    ///
    /// Panics if a label name or value contains `"` or `\` — callers pass
    /// fixed names and formatted integers, so escaping is a bug upstream,
    /// not a condition to silently paper over.
    #[must_use]
    pub fn prometheus_text_labeled(&self, labels: &[(&str, &str)]) -> String {
        let mut prefix = String::new();
        for (name, value) in labels {
            assert!(
                !name.contains(['"', '\\']) && !value.contains(['"', '\\']),
                "prometheus labels must not need escaping: {name}={value}"
            );
            let _ = write!(prefix, "{name}=\"{value}\",");
        }
        let stats = self.stage_stats();
        let mut out = String::new();
        out.push_str(
            "# HELP mvs_stage_duration_ms Modeled span duration by pipeline stage.\n\
             # TYPE mvs_stage_duration_ms summary\n",
        );
        for (stage, s) in &stats {
            let name = stage.name();
            let _ = writeln!(
                out,
                "mvs_stage_duration_ms{{{prefix}stage=\"{name}\",quantile=\"0.5\"}} {}",
                fmt_f64(s.summary.p50)
            );
            let _ = writeln!(
                out,
                "mvs_stage_duration_ms{{{prefix}stage=\"{name}\",quantile=\"0.99\"}} {}",
                fmt_f64(s.summary.p99)
            );
            let _ = writeln!(
                out,
                "mvs_stage_duration_ms_sum{{{prefix}stage=\"{name}\"}} {}",
                fmt_f64(s.total_ms)
            );
            let _ = writeln!(
                out,
                "mvs_stage_duration_ms_count{{{prefix}stage=\"{name}\"}} {}",
                s.summary.count
            );
        }
        out.push_str(
            "# HELP mvs_stage_items_total Stage-specific item count (detections, batches, ...).\n\
             # TYPE mvs_stage_items_total counter\n",
        );
        for (stage, s) in &stats {
            let _ = writeln!(
                out,
                "mvs_stage_items_total{{{prefix}stage=\"{}\"}} {}",
                stage.name(),
                s.items
            );
        }
        out
    }

    /// Chrome `trace_event` JSON (the array-of-events form with complete
    /// `"ph":"X"` events). Load in `chrome://tracing` or Perfetto; lanes map
    /// to thread ids, so camera timelines stack under one process.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        // Hand-formatted: every field is an integer or a static name, so no
        // JSON library is needed and output bytes are deterministic.
        let mut out = String::from("{\"traceEvents\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"mvs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"frame\":{},\"items\":{}}}}}",
                r.stage.name(),
                r.start_us,
                r.dur_us,
                r.lane,
                r.frame,
                r.items
            );
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Compact golden-trace format: a header line followed by one
    /// whitespace-separated line per span. All fields are integers, so the
    /// output is bitwise stable and diffs line-by-line in code review.
    #[must_use]
    pub fn golden_text(&self) -> String {
        let mut out = format!(
            "# mvs-trace golden v1 interval_us={} spans={}\n\
             # frame lane stage start_us dur_us items\n",
            self.frame_interval_us,
            self.records.len()
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{} {} {} {} {} {}",
                r.frame,
                r.lane,
                r.stage.name(),
                r.start_us,
                r.dur_us,
                r.items
            );
        }
        out
    }
}

/// Formats a duration value the same way on every platform: plain `{}`
/// Display, which for f64 is shortest-roundtrip and locale-independent.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceRecorder;

    fn sample_trace() -> Trace {
        let mut rec = TraceRecorder::new(10.0);
        let mut cam = TraceRecorder::camera_buf(0);
        for frame in 0..2usize {
            let start = rec.begin_frame(frame);
            cam.begin_frame(frame as u32, start);
            rec.coordinator().span(Stage::Central, 0.0, 3);
            cam.span(Stage::Detect, 20.0 + frame as f64, 2);
            rec.end_frame([&mut cam]);
        }
        rec.finish()
    }

    #[test]
    fn stage_stats_aggregates_durations_and_items() {
        let trace = sample_trace();
        let stats = trace.stage_stats();
        let detect = &stats[&Stage::Detect];
        assert_eq!(detect.summary.count, 2);
        assert_eq!(detect.items, 4);
        assert!((detect.total_ms - 41.0).abs() < 1e-9);
        assert!((detect.running.mean() - 20.5).abs() < 1e-9);
        assert_eq!(stats[&Stage::Central].summary.p99, 0.0);
        assert!((trace.total_modeled_ms() - 41.0).abs() < 1e-9);
    }

    #[test]
    fn golden_text_is_line_per_span() {
        let trace = sample_trace();
        let text = trace.golden_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + trace.len());
        assert!(lines[0].starts_with("# mvs-trace golden v1 interval_us=100000 spans=4"));
        assert_eq!(lines[2], "0 0 central 0 0 3");
        assert_eq!(lines[3], "0 1 detect 0 20000 2");
        assert_eq!(lines[5], "1 1 detect 100000 21000 2");
    }

    #[test]
    fn prometheus_text_contains_quantiles_and_counters() {
        let text = sample_trace().prometheus_text();
        assert!(text.contains("mvs_stage_duration_ms{stage=\"detect\",quantile=\"0.99\"} 21"));
        assert!(text.contains("mvs_stage_duration_ms_count{stage=\"central\"} 2"));
        assert!(text.contains("mvs_stage_items_total{stage=\"detect\"} 4"));
    }

    #[test]
    fn labeled_prometheus_prepends_labels_to_every_series() {
        let trace = sample_trace();
        let text = trace.prometheus_text_labeled(&[("tenant", "3")]);
        assert!(text
            .contains("mvs_stage_duration_ms{tenant=\"3\",stage=\"detect\",quantile=\"0.99\"} 21"));
        assert!(text.contains("mvs_stage_items_total{tenant=\"3\",stage=\"detect\"} 4"));
        // Every series carries the label: stripping it recovers the
        // unlabeled export byte for byte.
        assert_eq!(text.replace("tenant=\"3\",", ""), trace.prometheus_text());
    }

    #[test]
    #[should_panic(expected = "escaping")]
    fn labeled_prometheus_rejects_quotes_in_values() {
        let _ = sample_trace().prometheus_text_labeled(&[("tenant", "a\"b")]);
    }

    #[test]
    fn chrome_json_is_balanced_and_complete() {
        let trace = sample_trace();
        let json = trace.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), trace.len());
        assert_eq!(json.matches("\"ts\":100000").count(), 2); // frame 1 spans
                                                              // Brace/bracket balance — no names contain braces, so counting works.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let rec = TraceRecorder::new(30.0);
        let trace = rec.finish();
        assert!(trace.is_empty());
        assert_eq!(trace.stage_stats().len(), 0);
        assert!(trace.golden_text().contains("spans=0"));
        assert!(trace.chrome_trace_json().contains("traceEvents"));
    }
}
