//! Per-lane span buffers and the frame-synchronous recorder.

use crate::span::{SpanRecord, Stage, COORDINATOR_LANE};
use crate::trace::Trace;
use crate::{ms_to_us, trace};

/// Append-only span buffer for one lane (coordinator or camera).
///
/// Each lane owns its buffer, so worker threads record without locks; the
/// [`TraceRecorder`] drains the buffers in lane order once per frame, which
/// restores a deterministic global order regardless of thread count.
#[derive(Debug)]
pub struct TraceBuf {
    lane: u32,
    frame: u32,
    cursor_us: u64,
    records: Vec<SpanRecord>,
}

impl TraceBuf {
    /// Creates an empty buffer for `lane`.
    #[must_use]
    pub fn new(lane: u32) -> Self {
        TraceBuf {
            lane,
            frame: 0,
            cursor_us: 0,
            records: Vec::new(),
        }
    }

    /// Resets the lane cursor to the start of `frame` at sim time `start_us`.
    pub fn begin_frame(&mut self, frame: u32, start_us: u64) {
        self.frame = frame;
        self.cursor_us = start_us;
    }

    /// Records a span of `dur_ms` modeled milliseconds at the lane cursor and
    /// advances the cursor past it.
    pub fn span(&mut self, stage: Stage, dur_ms: f64, items: usize) {
        let dur_us = ms_to_us(dur_ms);
        self.records.push(SpanRecord {
            frame: self.frame,
            lane: self.lane,
            stage,
            start_us: self.cursor_us,
            dur_us,
            items: items.min(u32::MAX as usize) as u32,
        });
        self.cursor_us += dur_us;
    }

    /// Number of buffered spans not yet drained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no spans are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn drain_into(&mut self, out: &mut Vec<SpanRecord>) {
        out.append(&mut self.records);
    }
}

/// Records a span into an optional buffer.
///
/// This is the hot-path entry used by instrumented library code: with
/// tracing disabled the buffer is `None` and the call reduces to a branch —
/// no allocation, no clock read. `bench_trace` asserts this costs < 1% of
/// pipeline runtime.
#[inline]
pub fn span_into(trace: Option<&mut TraceBuf>, stage: Stage, dur_ms: f64, items: usize) {
    if let Some(buf) = trace {
        buf.span(stage, dur_ms, items);
    }
}

/// Frame-synchronous trace recorder owned by the pipeline coordinator.
///
/// Usage per frame: [`TraceRecorder::begin_frame`], hand each camera its
/// [`TraceBuf`] (created once via [`TraceRecorder::camera_buf`]), record
/// coordinator spans via [`TraceRecorder::coordinator`], then
/// [`TraceRecorder::end_frame`] with the camera buffers in index order.
#[derive(Debug)]
pub struct TraceRecorder {
    frame_interval_us: u64,
    coordinator: TraceBuf,
    records: Vec<SpanRecord>,
}

impl TraceRecorder {
    /// Creates a recorder for a scenario running at `fps` frames per second.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not strictly positive and finite.
    #[must_use]
    pub fn new(fps: f64) -> Self {
        assert!(
            fps.is_finite() && fps > 0.0,
            "fps must be positive, got {fps}"
        );
        TraceRecorder {
            frame_interval_us: (1_000_000.0 / fps).round() as u64,
            coordinator: TraceBuf::new(COORDINATOR_LANE),
            records: Vec::new(),
        }
    }

    /// Creates the span buffer for camera `index` (lane `index + 1`).
    #[must_use]
    pub fn camera_buf(index: usize) -> TraceBuf {
        TraceBuf::new(index as u32 + 1)
    }

    /// Sim-clock start of `frame`, microseconds since run start.
    #[must_use]
    pub fn frame_start_us(&self, frame: usize) -> u64 {
        frame as u64 * self.frame_interval_us
    }

    /// Starts `frame` on the coordinator lane and returns its sim-clock
    /// start, which callers pass to each camera's [`TraceBuf::begin_frame`].
    pub fn begin_frame(&mut self, frame: usize) -> u64 {
        let start = self.frame_start_us(frame);
        self.coordinator.begin_frame(frame as u32, start);
        start
    }

    /// The coordinator's own span buffer.
    pub fn coordinator(&mut self) -> &mut TraceBuf {
        &mut self.coordinator
    }

    /// Closes the frame: drains the coordinator buffer, then each camera
    /// buffer in the order given. Callers must pass camera buffers in
    /// camera-index order to uphold the determinism contract.
    pub fn end_frame<'a, I>(&mut self, camera_bufs: I)
    where
        I: IntoIterator<Item = &'a mut TraceBuf>,
    {
        self.coordinator.drain_into(&mut self.records);
        for buf in camera_bufs {
            buf.drain_into(&mut self.records);
        }
    }

    /// Consumes the recorder and returns the completed [`Trace`].
    #[must_use]
    pub fn finish(self) -> Trace {
        trace::trace_from_parts(self.frame_interval_us, self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_advances_by_span_duration() {
        let mut buf = TraceBuf::new(3);
        buf.begin_frame(7, 700_000);
        buf.span(Stage::Flow, 9.0, 0);
        buf.span(Stage::Detect, 30.5, 4);
        assert_eq!(buf.len(), 2);
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        assert!(buf.is_empty());
        assert_eq!(
            out,
            vec![
                SpanRecord {
                    frame: 7,
                    lane: 3,
                    stage: Stage::Flow,
                    start_us: 700_000,
                    dur_us: 9_000,
                    items: 0,
                },
                SpanRecord {
                    frame: 7,
                    lane: 3,
                    stage: Stage::Detect,
                    start_us: 709_000,
                    dur_us: 30_500,
                    items: 4,
                },
            ]
        );
    }

    #[test]
    fn span_into_none_is_noop() {
        span_into(None, Stage::Central, 5.0, 1);
    }

    #[test]
    fn recorder_orders_coordinator_before_cameras() {
        let mut rec = TraceRecorder::new(10.0);
        let mut cam0 = TraceRecorder::camera_buf(0);
        let mut cam1 = TraceRecorder::camera_buf(1);

        let start = rec.begin_frame(2);
        assert_eq!(start, 200_000);
        cam0.begin_frame(2, start);
        cam1.begin_frame(2, start);
        // Cameras record "first" in wall time; the drain still puts the
        // coordinator span ahead of them.
        cam1.span(Stage::Track, 1.0, 2);
        cam0.span(Stage::Track, 1.0, 1);
        rec.coordinator().span(Stage::Central, 0.0, 5);
        rec.end_frame([&mut cam0, &mut cam1]);

        let trace = rec.finish();
        let lanes: Vec<u32> = trace.records().iter().map(|r| r.lane).collect();
        assert_eq!(lanes, vec![0, 1, 2]);
        assert_eq!(trace.frame_interval_us(), 100_000);
    }
}
