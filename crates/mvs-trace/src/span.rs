//! Span records: the unit of trace data.

use serde::{Deserialize, Serialize};

/// Lane index reserved for the coordinator (central solve, sync, faults).
/// Camera `i` records on lane `i + 1`.
pub const COORDINATOR_LANE: u32 = 0;

/// Pipeline stage a span belongs to.
///
/// The discriminant order is the canonical export order; it roughly follows
/// the data path of a frame through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Fault-model bookkeeping on key frames (dropouts, rejoins, lost
    /// key-frame messages). Items = cameras whose state changed.
    Fault,
    /// Central BALB/exact solve on the coordinator. Duration is wall-measured
    /// in the simulator and therefore recorded as 0 to keep traces
    /// deterministic; items = objects in the solved instance.
    Central,
    /// Key-frame synchronization: uplink of camera views plus downlink of the
    /// schedule. Items = cameras that synced this key frame.
    Sync,
    /// Optical-flow estimation on a camera (fixed per-frame base cost).
    Flow,
    /// Tracker advance/associate on a camera. Items = tracked objects
    /// (live tracks plus shadow tracks).
    Track,
    /// Distributed takeover scan over shadow tracks. Duration is
    /// wall-measured in the simulator, so recorded as 0; items = takeovers.
    Distributed,
    /// Region slicing: cropping tracked objects out of the frame.
    /// Items = region tasks produced.
    Slice,
    /// Batch assembly of region crops. Items = batches formed.
    Batch,
    /// DNN inference (full-frame on key frames, batched crops on regular
    /// frames). Items = detections returned or crops processed.
    Detect,
    /// Coordinator crash recovery: rebuilding a tenant pipeline from a
    /// snapshot's replay recipe. Duration is the modeled cost of the
    /// replayed steps; items = frames replayed.
    Recovery,
}

impl Stage {
    /// All stages in canonical export order.
    pub const ALL: [Stage; 10] = [
        Stage::Fault,
        Stage::Central,
        Stage::Sync,
        Stage::Flow,
        Stage::Track,
        Stage::Distributed,
        Stage::Slice,
        Stage::Batch,
        Stage::Detect,
        Stage::Recovery,
    ];

    /// Stable lowercase name used in every text export.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fault => "fault",
            Stage::Central => "central",
            Stage::Sync => "sync",
            Stage::Flow => "flow",
            Stage::Track => "track",
            Stage::Distributed => "distributed",
            Stage::Slice => "slice",
            Stage::Batch => "batch",
            Stage::Detect => "detect",
            Stage::Recovery => "recovery",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Frame index within the evaluation run.
    pub frame: u32,
    /// [`COORDINATOR_LANE`] or `camera + 1`.
    pub lane: u32,
    /// Pipeline stage.
    pub stage: Stage,
    /// Sim-clock start, microseconds since run start.
    pub start_us: u64,
    /// Modeled duration in microseconds (0 for wall-measured stages).
    pub dur_us: u64,
    /// Stage-specific item count (see [`Stage`] docs).
    pub items: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique() {
        for (i, a) in Stage::ALL.iter().enumerate() {
            for b in &Stage::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn stage_order_matches_all() {
        for pair in Stage::ALL.windows(2) {
            assert!(pair[0] < pair[1], "{:?} vs {:?}", pair[0], pair[1]);
        }
    }
}
