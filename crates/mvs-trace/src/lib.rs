//! Structured tracing for the multi-view pipeline.
//!
//! The pipeline's headline metric is *per-frame processing latency*, yet an
//! end-of-run summary cannot say where a frame's budget went: slicing,
//! batching, the central BALB solve, or sync retries after a fault. This
//! crate records that breakdown as **spans** — one per pipeline stage
//! execution, labelled with the frame index, a lane (coordinator or camera),
//! the [`Stage`], and a duration.
//!
//! # Clock model
//!
//! Spans are stamped on a **simulated clock**, not the wall clock. Frame `f`
//! of a scenario running at `fps` frames per second starts at
//! `f * round(1e6 / fps)` microseconds; within a frame, each lane advances a
//! private cursor by the *modeled* duration of every span it records. Spans
//! therefore form a contiguous per-lane timeline whose values depend only on
//! `(scenario, config)` — never on host speed or thread count — which is what
//! makes golden-trace snapshots bitwise reproducible. Stages whose cost the
//! simulator measures on the wall clock (and which would break determinism)
//! are recorded with duration 0: they still witness ordering and item counts.
//!
//! # Determinism contract
//!
//! Each camera writes into its own [`TraceBuf`]; the coordinator drains the
//! buffers in camera-index order once per frame. The resulting record stream
//! is identical for any worker-thread count, so `Trace::golden_text` output
//! can be compared byte-for-byte across runs.
//!
//! # Exports
//!
//! * [`Trace::prometheus_text`] — text-format metrics snapshot
//!   ([`Trace::prometheus_text_labeled`] tags every series with constant
//!   labels, e.g. a serving tenant id),
//! * [`Trace::chrome_trace_json`] — Chrome `trace_event` JSON for
//!   `chrome://tracing` / Perfetto flame graphs,
//! * [`Trace::golden_text`] — compact line format checked into `tests/golden/`.

mod recorder;
mod span;
mod trace;

pub use recorder::{span_into, TraceBuf, TraceRecorder};
pub use span::{SpanRecord, Stage, COORDINATOR_LANE};
pub use trace::{StageStats, Trace};

/// Converts a modeled duration in milliseconds to integer microseconds.
///
/// Rounding to whole microseconds keeps every timestamp an integer, which
/// sidesteps float-formatting differences in the text exports.
#[must_use]
pub fn ms_to_us(ms: f64) -> u64 {
    debug_assert!(ms >= 0.0, "span durations are non-negative, got {ms}");
    if ms <= 0.0 {
        0
    } else {
        (ms * 1_000.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_to_us_rounds_to_whole_microseconds() {
        assert_eq!(ms_to_us(0.0), 0);
        assert_eq!(ms_to_us(1.0), 1_000);
        assert_eq!(ms_to_us(0.0004), 0);
        assert_eq!(ms_to_us(0.0006), 1);
        assert_eq!(ms_to_us(650.0), 650_000);
    }
}
