//! Persistent deterministic executor.
//!
//! Every parallel site in this workspace used to pay OS-thread spawn and
//! join costs per frame (`std::thread::scope` in the camera pool, the
//! sharded solver, the pipelined key-frame overlap, and the experiment
//! sweeps). This crate replaces all of them with one long-lived pool of
//! parked worker threads and a small family of chunked fan-out primitives:
//!
//! - [`Executor::par_map`] / [`Executor::par_map_mut`] — contiguous-chunk
//!   map with an index-ordered merge (drop-in for the old scoped helpers).
//! - [`Executor::par_chunks`] / [`Executor::par_chunks_mut`] — the same
//!   fan-out at chunk granularity, for scatter passes that keep per-worker
//!   local state.
//! - [`Executor::merge_as_completed`] — producers on the pool, a serial
//!   fold on the caller *as results arrive* (the pipelined-merge shape).
//! - [`Executor::join`] — a two-way fork for overlapping one computation
//!   with the caller's own work.
//! - [`Executor::par_map_queue`] — dynamic one-item-at-a-time scheduling
//!   for sweeps whose item costs differ wildly.
//!
//! # Determinism contract
//!
//! Lane count (`lanes`) controls *where* work runs, never *what* it
//! computes. Chunking is contiguous (`chunk_len = n.div_ceil(lanes)`),
//! merges are index-ordered, and caller-visible effects happen in input
//! order, so every primitive returns bitwise the same results at any lane
//! count — including one, where it degenerates to a plain serial loop
//! with no synchronization at all. Callers own any shared-state
//! discipline (private RNG streams, disjoint writes); the executor only
//! promises it will not add ordering of its own.
//!
//! # Pool lifecycle
//!
//! [`pool()`] returns the process-wide executor. Workers are spawned
//! lazily the first time a fan-out needs them (growth is the only place
//! this workspace creates threads) and then park on their private task
//! channels forever — dispatching a batch costs channel sends and one
//! condvar wait, not thread creation. A batch submitted from *inside* a
//! pool task runs inline on that worker, so nested fan-outs can never
//! deadlock the pool.
//!
//! # Panics
//!
//! A panicking task never kills a worker: each task runs under
//! `catch_unwind`, payloads are collected per task, and after the whole
//! batch has finished the lowest-index payload is resumed on the caller —
//! the same observable behavior as joining scoped threads in spawn order,
//! and deterministic when several lanes panic at once.

#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Upper bound on pool width. Lane counts are clamped to item counts at
/// every call site, so this is a runaway backstop, not a tuning knob;
/// batches wider than the pool round-robin over the existing workers.
const MAX_WORKERS: usize = 64;

/// Lane counts the profiler models region execution at (see
/// [`ExecProfile::modeled_s`]).
pub const MODELED_LANES: [usize; 4] = [1, 2, 4, 8];

thread_local! {
    /// Set for the lifetime of a pool worker thread, and on the caller
    /// while it runs its own share of a parallel batch: code that is
    /// already inside an executor task runs nested fan-outs inline.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
    /// Nesting depth of inline profiled regions on this thread; only the
    /// outermost region records (inner time is already inside its task
    /// durations, exactly as it would inline in a parallel run).
    static REGION_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Whether the current thread is executing an executor task (worker
/// thread, or caller running its lane of a batch). Nested executor calls
/// made here run inline.
fn in_executor_task() -> bool {
    IN_TASK.with(Cell::get)
}

/// Resolves a requested thread count: `0` means auto — the `MVS_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("MVS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Work/span profile of the executor regions run while profiling was
/// enabled (see [`Executor::profile_start`]). Benches profile a
/// single-lane run and use the per-task durations to *model* the same
/// run's makespan at wider lane counts — the fleet benches' established
/// technique for gating parallel speedups on few-core CI runners.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecProfile {
    /// Outermost executor regions recorded.
    pub regions: u64,
    /// Tasks (items, for inline single-lane regions) across all regions.
    pub tasks: u64,
    /// Total timed task work across all regions, seconds.
    pub work_s: f64,
    /// Modeled execution time of all regions at [`MODELED_LANES`] lanes,
    /// seconds: per region, tasks are chunked contiguously exactly as the
    /// executor would chunk them and the longest chunk wins. Nested
    /// regions model as serial — in a real parallel run they inline
    /// inside their enclosing task.
    pub modeled_s: [f64; 4],
}

impl ExecProfile {
    /// Modeled total region time at `lanes`, if `lanes` is one of
    /// [`MODELED_LANES`].
    #[must_use]
    pub fn modeled_at(&self, lanes: usize) -> Option<f64> {
        MODELED_LANES
            .iter()
            .position(|&l| l == lanes)
            .map(|i| self.modeled_s[i])
    }
}

/// Models the execution time of one region at `lanes`: contiguous chunks
/// of `n.div_ceil(lanes)` tasks per lane, longest lane wins.
fn modeled_time(durs: &[f64], lanes: usize) -> f64 {
    let n = durs.len();
    if n == 0 {
        return 0.0;
    }
    let lanes = lanes.clamp(1, n);
    let chunk_len = n.div_ceil(lanes);
    durs.chunks(chunk_len)
        .map(|c| c.iter().sum::<f64>())
        .fold(0.0, f64::max)
}

/// Countdown latch: the caller blocks until every submitted task of a
/// batch has finished. `count_down` is a worker's *last* touch of any
/// batch state, which is what makes handing borrowed task cells to
/// persistent threads sound (see [`RawTask`]).
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        // No task code runs under this lock, so the mutex cannot poison.
        let mut remaining = self.remaining.lock().expect("latch mutex poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            // Notify while holding the guard: the waiter cannot observe
            // zero and free the latch before this unlock completes.
            self.done.notify_one();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch mutex poisoned");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch mutex poisoned");
        }
    }
}

/// One task of a batch, on the submitting caller's stack: the closure to
/// run, the panic it produced (if any), and its timed duration when the
/// batch is profiled.
struct TaskCell<F> {
    f: Option<F>,
    panic: Option<Box<dyn Any + Send>>,
    dur_s: f64,
    timed: bool,
}

impl<F> TaskCell<F> {
    fn new(f: F, timed: bool) -> Self {
        TaskCell {
            f: Some(f),
            panic: None,
            dur_s: 0.0,
            timed,
        }
    }
}

/// Runs a cell's closure exactly once, catching any panic into the cell.
///
/// # Safety
///
/// `data` must point to a live `TaskCell<F>` that no other thread touches
/// until the batch's latch (or inline loop) says this call has returned.
unsafe fn run_cell<F: FnOnce()>(data: *mut ()) {
    let cell = unsafe { &mut *data.cast::<TaskCell<F>>() };
    let f = cell.f.take().expect("executor task runs exactly once");
    let started = cell.timed.then(Instant::now);
    if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
        cell.panic = Some(payload);
    }
    if let Some(s) = started {
        cell.dur_s = s.elapsed().as_secs_f64();
    }
}

/// A lifetime-erased task handed to a worker: a pointer to its
/// [`TaskCell`] on the submitting caller's stack, the monomorphic
/// trampoline that runs it, and the batch latch to count down after.
struct RawTask {
    data: *mut (),
    run: unsafe fn(*mut ()),
    latch: *const Latch,
}

// SAFETY: `RawTask` is a message, not shared state. The cell and latch it
// points to live on the submitting thread's stack, and that thread blocks
// on the latch until every task has counted down — the worker's accesses
// are exclusive (one task per cell) and strictly before the caller's
// resumption (mutex/condvar ordering), so sending the raw pointers to a
// worker thread is sound.
unsafe impl Send for RawTask {}

fn raw_task_for<F: FnOnce()>(cell: *mut TaskCell<F>, latch: *const Latch) -> RawTask {
    RawTask {
        data: cell.cast(),
        run: run_cell::<F>,
        latch,
    }
}

struct Worker {
    tx: Sender<RawTask>,
    join: Option<JoinHandle<()>>,
}

fn worker_loop(rx: &Receiver<RawTask>) {
    IN_TASK.with(|t| t.set(true));
    while let Ok(task) = rx.recv() {
        // SAFETY: the submitting thread keeps the cell and latch alive
        // until the latch opens, and `count_down` runs strictly after the
        // cell's last write (program order here, release on the latch
        // mutex for the caller).
        unsafe {
            (task.run)(task.data);
            (*task.latch).count_down();
        }
    }
}

/// Restores `IN_TASK` when the caller finishes running its own lane of a
/// batch (kept on unwind too, so a panicking lane cannot leak the flag).
struct InTaskGuard {
    was: bool,
}

impl InTaskGuard {
    fn enter() -> Self {
        let was = IN_TASK.with(|t| t.replace(true));
        InTaskGuard { was }
    }
}

impl Drop for InTaskGuard {
    fn drop(&mut self) {
        let was = self.was;
        IN_TASK.with(|t| t.set(was));
    }
}

/// Decrements `REGION_DEPTH` on drop (unwind-safe nesting bookkeeping).
struct DepthGuard;

impl DepthGuard {
    fn enter() -> Self {
        REGION_DEPTH.with(|d| d.set(d.get() + 1));
        DepthGuard
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        REGION_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// A persistent pool of parked worker threads. See the crate docs for the
/// determinism contract; [`pool()`] for the process-wide instance.
pub struct Executor {
    workers: Mutex<Vec<Worker>>,
    profiling: AtomicBool,
    profile: Mutex<ExecProfile>,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker registry"));
        for worker in workers {
            // Dropping the sender closes the worker's channel; it drains
            // anything already queued, then exits its loop.
            let Worker { tx, join } = worker;
            drop(tx);
            if let Some(handle) = join {
                let _ = handle.join();
            }
        }
    }
}

impl Executor {
    /// An executor with no workers yet; they are spawned lazily by the
    /// first fan-out that needs them.
    #[must_use]
    pub fn new() -> Self {
        Executor {
            workers: Mutex::new(Vec::new()),
            profiling: AtomicBool::new(false),
            profile: Mutex::new(ExecProfile::default()),
        }
    }

    /// Number of live pool workers (grows lazily; for diagnostics/tests).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.lock().expect("worker registry").len()
    }

    /// Starts recording a work/span profile of outermost executor
    /// regions, resetting any previous one.
    pub fn profile_start(&self) {
        *self.profile.lock().expect("profile state") = ExecProfile::default();
        self.profiling.store(true, Ordering::Release);
    }

    /// Stops profiling and returns the recorded profile.
    pub fn profile_stop(&self) -> ExecProfile {
        self.profiling.store(false, Ordering::Release);
        std::mem::take(&mut *self.profile.lock().expect("profile state"))
    }

    /// Whether a region started here, now, should record: profiling is on
    /// and this is an outermost region on a non-task thread.
    fn profiled_region(&self) -> bool {
        self.profiling.load(Ordering::Acquire)
            && !in_executor_task()
            && REGION_DEPTH.with(Cell::get) == 0
    }

    fn record_region(&self, durs: &[f64]) {
        let mut p = self.profile.lock().expect("profile state");
        p.regions += 1;
        p.tasks += durs.len() as u64;
        p.work_s += durs.iter().sum::<f64>();
        for (slot, &lanes) in p.modeled_s.iter_mut().zip(MODELED_LANES.iter()) {
            *slot += modeled_time(durs, lanes);
        }
    }

    /// Clones senders for up to `wanted` workers, growing the pool as
    /// needed. Growth is the only thread creation in the workspace's
    /// runtime paths. Returns fewer (possibly zero) senders when spawning
    /// fails — callers fall back to inline execution.
    fn senders_for(&self, wanted: usize) -> Vec<Sender<RawTask>> {
        let mut workers = self.workers.lock().expect("worker registry");
        while workers.len() < wanted.min(MAX_WORKERS) {
            let (tx, rx) = mpsc::channel();
            let name = format!("mvs-exec-{}", workers.len());
            match std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(&rx))
            {
                Ok(handle) => workers.push(Worker {
                    tx,
                    join: Some(handle),
                }),
                // Resource exhaustion: serve the batch with what exists.
                Err(_) => break,
            }
        }
        workers.iter().take(wanted).map(|w| w.tx.clone()).collect()
    }

    /// Runs a batch of same-typed tasks to completion: task 0 on the
    /// caller, the rest round-robin over pool workers; returns after all
    /// have finished, resuming the lowest-index panic if any task
    /// panicked. Falls back to an in-order inline loop when the batch has
    /// one task, the caller is itself an executor task, or no worker
    /// could be spawned — same results by the determinism contract.
    fn run_batch<F: FnOnce() + Send>(&self, tasks: Vec<F>, timings: Option<&mut Vec<f64>>) {
        let k = tasks.len();
        if k == 0 {
            return;
        }
        let timed = timings.is_some();
        let mut cells: Vec<TaskCell<F>> =
            tasks.into_iter().map(|f| TaskCell::new(f, timed)).collect();
        let senders = if k > 1 && !in_executor_task() {
            self.senders_for(k - 1)
        } else {
            Vec::new()
        };
        if senders.is_empty() {
            let _depth = DepthGuard::enter();
            for cell in &mut cells {
                // SAFETY: exclusive `&mut` access on this thread.
                unsafe { run_cell::<F>(std::ptr::from_mut(cell).cast()) };
            }
        } else {
            let latch = Latch::new(k - 1);
            // Derive every pointer from the base pointer (not through
            // element references) so the caller-side access to cell 0
            // cannot invalidate the workers' pointers.
            let base: *mut TaskCell<F> = cells.as_mut_ptr();
            for i in 1..k {
                // SAFETY: `i < k == cells.len()`; each cell is handed to
                // exactly one worker and untouched here until the latch
                // opens.
                let task = raw_task_for(unsafe { base.add(i) }, &latch);
                senders[(i - 1) % senders.len()]
                    .send(task)
                    .expect("pool workers outlive the executor");
            }
            {
                let _in_task = InTaskGuard::enter();
                let _depth = DepthGuard::enter();
                // SAFETY: cell 0 was not sent to any worker.
                unsafe { run_cell::<F>(base.cast()) };
            }
            latch.wait();
        }
        if let Some(out) = timings {
            out.extend(cells.iter().map(|c| c.dur_s));
        }
        if let Some(payload) = cells.into_iter().find_map(|c| c.panic) {
            resume_unwind(payload);
        }
    }

    /// Maps `f` over chunk starts and contiguous chunks of `items`
    /// (`chunk_len = n.div_ceil(lanes)`), returning per-chunk outputs in
    /// chunk order. The chunk *structure* is a function of `lanes` alone,
    /// so a caller-chosen lane count gives identical chunking whether the
    /// chunks run on the pool or inline.
    pub fn par_chunks<I, T, F>(&self, items: &[I], lanes: usize, f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &[I]) -> T + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let lanes = lanes.clamp(1, n);
        let chunk_len = n.div_ceil(lanes);
        let profiled = self.profiled_region();
        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(n.div_ceil(chunk_len), || None);
        let mut timings = profiled.then(Vec::new);
        {
            let f = &f;
            let tasks: Vec<_> = items
                .chunks(chunk_len)
                .zip(slots.iter_mut())
                .enumerate()
                .map(|(c, (chunk, slot))| move || *slot = Some(f(c * chunk_len, chunk)))
                .collect();
            self.run_batch(tasks, timings.as_mut());
        }
        if let Some(durs) = timings {
            self.record_region(&durs);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every chunk ran"))
            .collect()
    }

    /// [`Executor::par_chunks`] over mutable chunks.
    pub fn par_chunks_mut<I, T, F>(&self, items: &mut [I], lanes: usize, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, &mut [I]) -> T + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let lanes = lanes.clamp(1, n);
        let chunk_len = n.div_ceil(lanes);
        let profiled = self.profiled_region();
        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(n.div_ceil(chunk_len), || None);
        let mut timings = profiled.then(Vec::new);
        {
            let f = &f;
            let tasks: Vec<_> = items
                .chunks_mut(chunk_len)
                .zip(slots.iter_mut())
                .enumerate()
                .map(|(c, (chunk, slot))| move || *slot = Some(f(c * chunk_len, chunk)))
                .collect();
            self.run_batch(tasks, timings.as_mut());
        }
        if let Some(durs) = timings {
            self.record_region(&durs);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every chunk ran"))
            .collect()
    }

    /// Maps `f` over the items, fanning contiguous chunks out across up
    /// to `lanes` pool workers, and returns the outputs in input order
    /// regardless of which worker ran which chunk. With one lane (or one
    /// item, or when called from inside an executor task) it runs inline
    /// — same results, no synchronization.
    pub fn par_map<I, T, F>(&self, items: &[I], lanes: usize, f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        let n = items.len();
        let lanes = lanes.clamp(1, n.max(1));
        if lanes == 1 || in_executor_task() {
            return self.inline_map(items.iter(), n, &f);
        }
        self.par_chunks(items, lanes, |_, chunk| chunk.iter().map(&f).collect())
            .into_iter()
            .flat_map(|v: Vec<T>| v)
            .collect()
    }

    /// [`Executor::par_map`] over `&mut` items (workers get disjoint
    /// mutable chunks).
    pub fn par_map_mut<I, T, F>(&self, items: &mut [I], lanes: usize, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(&mut I) -> T + Sync,
    {
        let n = items.len();
        let lanes = lanes.clamp(1, n.max(1));
        if lanes == 1 || in_executor_task() {
            return self.inline_map(items.iter_mut(), n, &f);
        }
        self.par_chunks_mut(items, lanes, |_, chunk| chunk.iter_mut().map(&f).collect())
            .into_iter()
            .flat_map(|v: Vec<T>| v)
            .collect()
    }

    /// [`Executor::par_map_mut`] discarding outputs.
    pub fn par_for_each_mut<I, F>(&self, items: &mut [I], lanes: usize, f: F)
    where
        I: Send,
        F: Fn(&mut I) + Sync,
    {
        let _: Vec<()> = self.par_map_mut(items, lanes, |it| f(it));
    }

    /// Serial in-order map with optional per-item profiling — the single
    /// lane degenerate of every map primitive, kept as one code path so
    /// profiled serial runs see item-granular task durations.
    fn inline_map<It, T>(&self, items: It, n: usize, mut f: impl FnMut(It::Item) -> T) -> Vec<T>
    where
        It: Iterator,
    {
        if !self.profiled_region() {
            return items.map(f).collect();
        }
        let _depth = DepthGuard::enter();
        let mut durs = Vec::with_capacity(n);
        let out = items
            .map(|it| {
                let started = Instant::now();
                let v = f(it);
                durs.push(started.elapsed().as_secs_f64());
                v
            })
            .collect();
        drop(_depth);
        self.record_region(&durs);
        out
    }

    /// Maps `f(index, &item)` over the items on the pool and folds every
    /// output into `merge(index, output)` *on the caller, in completion
    /// order* — the pipelined-merge shape: the fold hides behind the
    /// still-running producers. The caller must therefore tolerate any
    /// fold order; with one lane (or inside an executor task) the fold
    /// runs in input order, inline.
    pub fn merge_as_completed<I, T, F, M>(&self, items: &[I], lanes: usize, f: F, mut merge: M)
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        M: FnMut(usize, T),
    {
        let n = items.len();
        if n == 0 {
            return;
        }
        let lanes = lanes.clamp(1, n);
        if lanes == 1 || in_executor_task() {
            let profiled = self.profiled_region();
            if !profiled {
                for (i, item) in items.iter().enumerate() {
                    let out = f(i, item);
                    merge(i, out);
                }
                return;
            }
            let mut durs = Vec::with_capacity(n);
            {
                let _depth = DepthGuard::enter();
                for (i, item) in items.iter().enumerate() {
                    let started = Instant::now();
                    let out = f(i, item);
                    durs.push(started.elapsed().as_secs_f64());
                    merge(i, out);
                }
            }
            self.record_region(&durs);
            return;
        }
        let chunk_len = n.div_ceil(lanes);
        let k = n.div_ceil(chunk_len);
        let senders = self.senders_for(k);
        if senders.is_empty() {
            for (i, item) in items.iter().enumerate() {
                let out = f(i, item);
                merge(i, out);
            }
            return;
        }
        let profiled = self.profiled_region();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let mut cells: Vec<TaskCell<_>> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(c, chunk)| {
                let tx = tx.clone();
                let f = &f;
                TaskCell::new(
                    move || {
                        for (off, item) in chunk.iter().enumerate() {
                            let idx = c * chunk_len + off;
                            let out = f(idx, item);
                            // The receiver outlives the batch; a send only
                            // fails if the caller is already unwinding.
                            let _ = tx.send((idx, out));
                        }
                    },
                    profiled,
                )
            })
            .collect();
        drop(tx);
        let latch = Latch::new(k);
        let base = cells.as_mut_ptr();
        for (i, sender) in (0..k).map(|i| (i, &senders[i % senders.len()])) {
            // SAFETY: `i < k == cells.len()`; each cell goes to exactly
            // one worker and the latch keeps it alive until they finish.
            let task = raw_task_for(unsafe { base.add(i) }, &latch);
            sender
                .send(task)
                .expect("pool workers outlive the executor");
        }
        // Fold as results arrive; the channel closes when every producer
        // task has dropped its sender clone (finished or unwound).
        while let Ok((idx, out)) = rx.recv() {
            merge(idx, out);
        }
        latch.wait();
        if profiled {
            let durs: Vec<f64> = cells.iter().map(|c| c.dur_s).collect();
            self.record_region(&durs);
        }
        if let Some(payload) = cells.into_iter().find_map(|c| c.panic) {
            resume_unwind(payload);
        }
    }

    /// Runs `a` on a pool worker while `b` runs on the caller, returning
    /// both results — the two-phase overlap shape (e.g. a central solve
    /// behind the caller's uplink encoding). Inline (and from inside an
    /// executor task) it runs `a` then `b`, matching the sequential
    /// order. If both panic, `a`'s payload wins deterministically.
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        RA: Send,
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB,
    {
        let profiled = self.profiled_region();
        let senders = if in_executor_task() {
            Vec::new()
        } else {
            self.senders_for(1)
        };
        if senders.is_empty() {
            if !profiled {
                return (a(), b());
            }
            let _depth = DepthGuard::enter();
            let started = Instant::now();
            let ra = a();
            let dur_a = started.elapsed().as_secs_f64();
            let started = Instant::now();
            let rb = b();
            let dur_b = started.elapsed().as_secs_f64();
            drop(_depth);
            self.record_region(&[dur_a, dur_b]);
            return (ra, rb);
        }
        let mut slot: Option<RA> = None;
        let mut rb = None;
        let mut panic_b = None;
        let mut dur_b = 0.0;
        {
            let slot = &mut slot;
            let mut cells = vec![TaskCell::new(move || *slot = Some(a()), profiled)];
            let latch = Latch::new(1);
            let task = raw_task_for(cells.as_mut_ptr(), &latch);
            senders[0]
                .send(task)
                .expect("pool workers outlive the executor");
            {
                let _in_task = InTaskGuard::enter();
                let started = profiled.then(Instant::now);
                match catch_unwind(AssertUnwindSafe(b)) {
                    Ok(v) => rb = Some(v),
                    Err(payload) => panic_b = Some(payload),
                }
                if let Some(s) = started {
                    dur_b = s.elapsed().as_secs_f64();
                }
            }
            latch.wait();
            if profiled {
                self.record_region(&[cells[0].dur_s, dur_b]);
            }
            if let Some(payload) = cells.pop().and_then(|c| c.panic) {
                resume_unwind(payload);
            }
        }
        if let Some(payload) = panic_b {
            resume_unwind(payload);
        }
        (
            slot.expect("joined task ran to completion"),
            rb.expect("caller closure ran to completion"),
        )
    }

    /// Maps `f` over the items with *dynamic* scheduling: up to `lanes`
    /// pool lanes (the caller is one of them) pull items one at a time
    /// from a shared cursor, so wildly uneven item costs keep every lane
    /// busy. Outputs come back in input order. Use the chunked
    /// [`Executor::par_map`] on hot paths — this shape pays one atomic
    /// and one mutex lock per item.
    pub fn par_map_queue<I, T, F>(&self, items: &[I], lanes: usize, f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        let n = items.len();
        let lanes = lanes.clamp(1, n.max(1));
        if lanes == 1 || in_executor_task() {
            return self.inline_map(items.iter(), n, &f);
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        {
            let cursor = &cursor;
            let slots = &slots;
            let f = &f;
            let tasks: Vec<_> = (0..lanes)
                .map(|_| {
                    move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = f(&items[i]);
                        *slots[i].lock().expect("result slot poisoned") = Some(out);
                    }
                })
                .collect();
            self.run_batch(tasks, None);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every item was processed")
            })
            .collect()
    }
}

/// The process-wide executor. Workers are spawned lazily on first use and
/// persist for the life of the process (they park on empty channels, so
/// an idle pool costs nothing).
pub fn pool() -> &'static Executor {
    static POOL: OnceLock<Executor> = OnceLock::new();
    POOL.get_or_init(Executor::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicU64;

    /// Tiny deterministic generator so determinism tests need no deps.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn par_map_is_index_ordered_at_any_lane_count() {
        let exec = Executor::new();
        let items: Vec<usize> = (0..7).collect();
        let want: Vec<usize> = items.iter().map(|i| i * 10).collect();
        for lanes in [1, 2, 3, 8, 64] {
            assert_eq!(
                exec.par_map(&items, lanes, |&i| i * 10),
                want,
                "lanes={lanes}"
            );
        }
    }

    #[test]
    fn par_map_mut_results_match_serial_at_any_lane_count() {
        // Each item owns a private generator state; the collected draws
        // and final states must not depend on the lane count.
        let run = |lanes: usize| -> (Vec<u64>, Vec<u64>) {
            let exec = Executor::new();
            let mut states: Vec<u64> = (0..5).map(|i| i as u64 * 7 + 1).collect();
            let mut draws = Vec::new();
            for _ in 0..3 {
                draws.extend(exec.par_map_mut(&mut states, lanes, |s| splitmix(s)));
            }
            (draws, states)
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(5));
    }

    #[test]
    fn par_chunks_covers_every_item_once_with_chunk_starts() {
        let exec = Executor::new();
        let items: Vec<usize> = (0..11).collect();
        for lanes in [1, 2, 4, 16] {
            let chunks = exec.par_chunks(&items, lanes, |start, chunk| (start, chunk.to_vec()));
            let mut seen = Vec::new();
            for (start, chunk) in chunks {
                assert_eq!(seen.len(), start, "chunks arrive in offset order");
                seen.extend(chunk);
            }
            assert_eq!(seen, items, "lanes={lanes}");
        }
    }

    #[test]
    fn par_for_each_mut_mutates_disjoint_chunks() {
        let exec = Executor::new();
        let mut items: Vec<usize> = (0..9).collect();
        exec.par_for_each_mut(&mut items, 4, |i| *i += 100);
        assert_eq!(items, (100..109).collect::<Vec<_>>());
    }

    #[test]
    fn merge_as_completed_folds_every_index_exactly_once() {
        for lanes in [1, 3, 8] {
            let exec = Executor::new();
            let items: Vec<u64> = (0..13).collect();
            let mut seen = BTreeSet::new();
            let mut weighted = 0u64;
            exec.merge_as_completed(
                &items,
                lanes,
                |i, &v| v * 2 + i as u64,
                |i, out| {
                    assert!(seen.insert(i), "index {i} folded twice");
                    weighted += out;
                },
            );
            assert_eq!(seen.len(), items.len(), "lanes={lanes}");
            let want: u64 = items
                .iter()
                .enumerate()
                .map(|(i, &v)| v * 2 + i as u64)
                .sum();
            assert_eq!(weighted, want, "lanes={lanes}");
        }
    }

    #[test]
    fn join_returns_both_results_and_orders_inline_a_before_b() {
        let exec = Executor::new();
        let log = Mutex::new(Vec::new());
        // From inside a task (forced inline), `a` must run before `b` —
        // the sequential order the pipelined overlap degenerates to.
        let (_, inner) = exec.par_map(&[()], 1, |()| {
            pool().join(
                || log.lock().unwrap().push('a'),
                || log.lock().unwrap().push('b'),
            )
        })[0];
        let _ = inner;
        assert_eq!(*log.lock().unwrap(), vec!['a', 'b']);
        let (ra, rb) = exec.join(|| 6 * 7, || "right");
        assert_eq!((ra, rb), (42, "right"));
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let exec = Executor::new();
        let items: Vec<usize> = (0..8).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.par_map(&items, 4, |&i| {
                assert!(i != 5, "boom at {i}");
                i
            })
        }));
        assert!(caught.is_err(), "panic must reach the caller");
        // Workers caught the panic and parked again: the pool still works.
        assert_eq!(exec.par_map(&items, 4, |&i| i + 1)[7], 8);
    }

    #[test]
    fn lowest_index_panic_wins_when_several_lanes_panic() {
        let exec = Executor::new();
        let items: Vec<usize> = (0..8).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.par_map(&items, 8, |&i| {
                if i % 2 == 1 {
                    std::panic::panic_any(format!("lane {i}"));
                }
                i
            })
        }))
        .expect_err("odd lanes panic");
        let msg = caught
            .downcast_ref::<String>()
            .expect("payload is the panicked lane's message");
        assert_eq!(msg, "lane 1");
    }

    #[test]
    fn nested_fan_outs_run_inline_without_deadlock() {
        let exec = pool();
        let items: Vec<usize> = (0..6).collect();
        let out = exec.par_map(&items, 3, |&i| {
            let inner: Vec<usize> = (0..4).collect();
            // Nested call on a pool worker (or the participating caller):
            // runs inline, same results.
            pool()
                .par_map(&inner, 4, |&j| j * 10 + i)
                .iter()
                .sum::<usize>()
        });
        let want: Vec<usize> = items.iter().map(|&i| 60 + 4 * i).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn workers_persist_across_batches() {
        let exec = Executor::new();
        let ids = |exec: &Executor| -> Vec<std::thread::ThreadId> {
            exec.par_map(&[0usize, 1, 2, 3], 4, |_| std::thread::current().id())
        };
        let first = ids(&exec);
        let second = ids(&exec);
        assert_eq!(first, second, "same parked workers serve every batch");
        assert_eq!(exec.workers(), 3, "caller runs lane 0; three workers");
        // Lane 0 runs on the caller itself.
        assert_eq!(first[0], std::thread::current().id());
    }

    #[test]
    fn par_map_queue_preserves_input_order() {
        let exec = Executor::new();
        let items: Vec<usize> = (0..97).collect();
        for lanes in [1, 4] {
            let out = exec.par_map_queue(&items, lanes, |&i| i * 3);
            assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        }
        assert_eq!(
            exec.par_map_queue(&Vec::<usize>::new(), 4, |&i| i),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn empty_and_oversized_batches_are_fine() {
        let exec = Executor::new();
        assert_eq!(exec.par_map(&Vec::<u8>::new(), 8, |&b| b), Vec::<u8>::new());
        assert_eq!(exec.par_map(&[1u8], 64, |&b| b + 1), vec![2]);
        exec.merge_as_completed(&Vec::<u8>::new(), 4, |_, &b| b, |_, _| unreachable!());
    }

    #[test]
    fn profile_records_outermost_regions_only() {
        let exec = Executor::new();
        exec.profile_start();
        let items: Vec<u64> = (0..8).collect();
        let out = exec.par_map(&items, 1, |&v| {
            // Nested region: must fold into the outer task's duration,
            // not record separately.
            exec.par_map(&[v], 1, |&x| x + 1)[0]
        });
        let profile = exec.profile_stop();
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        assert_eq!(profile.regions, 1, "only the outermost region records");
        assert_eq!(profile.tasks, 8);
        // Serial model == total work; wider models can only shrink it.
        assert!((profile.modeled_s[0] - profile.work_s).abs() < 1e-12);
        assert!(profile.modeled_s[3] <= profile.modeled_s[0] + 1e-12);
        // Profiling off: nothing records.
        let _ = exec.par_map(&items, 1, |&v| v);
        assert_eq!(exec.profile_stop(), ExecProfile::default());
    }

    #[test]
    fn modeled_time_is_longest_contiguous_chunk() {
        let durs = [3.0, 1.0, 1.0, 1.0];
        assert!((modeled_time(&durs, 1) - 6.0).abs() < 1e-12);
        // Two lanes: [3,1] vs [1,1].
        assert!((modeled_time(&durs, 2) - 4.0).abs() < 1e-12);
        // Four lanes: the longest single task bounds the span.
        assert!((modeled_time(&durs, 4) - 3.0).abs() < 1e-12);
        assert!((modeled_time(&durs, 8) - 3.0).abs() < 1e-12);
        assert_eq!(modeled_time(&[], 4), 0.0);
    }

    #[test]
    fn join_overlaps_and_propagates_a_panic_first() {
        let exec = Executor::new();
        let ran_b = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.join(
                || std::panic::panic_any("a failed"),
                || ran_b.store(7, Ordering::SeqCst),
            )
        }))
        .expect_err("a's panic reaches the caller");
        assert_eq!(*caught.downcast_ref::<&str>().unwrap(), "a failed");
        assert_eq!(ran_b.load(Ordering::SeqCst), 7, "b still ran to completion");
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
