//! Descriptive statistics.

use serde::{Deserialize, Serialize};

/// Mean / min / max / percentile summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Non-finite samples skipped instead of summarized (zero unless the
    /// input was poisoned; see [`Summary::of_lenient`]).
    #[serde(default)]
    pub rejected: usize,
    /// Arithmetic mean (`0.0` for empty input).
    pub mean: f64,
    /// Minimum (`0.0` for empty input).
    pub min: f64,
    /// Maximum (`0.0` for empty input).
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile — the tail metric reported by the fault-injection
    /// benchmarks.
    pub p99: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes the summary of a slice.
    ///
    /// Callers are expected to hand in finite samples; a non-finite sample
    /// is a bug in the producer, so debug builds assert on it. Release
    /// builds — where a single poisoned sample must not take down report
    /// generation in a long-running service — fall back to
    /// [`Summary::of_lenient`], which skips the sample and counts it in
    /// [`Summary::rejected`] (the same contract as `Running::try_push`).
    ///
    /// # Panics
    ///
    /// Panics if any sample is not finite, in debug builds only.
    pub fn of(samples: &[f64]) -> Summary {
        debug_assert!(
            samples.iter().all(|v| v.is_finite()),
            "summary samples must be finite"
        );
        Summary::of_lenient(samples)
    }

    /// Computes the summary of a slice, skipping non-finite samples.
    ///
    /// NaN and ±∞ are excluded from every statistic and counted in
    /// [`Summary::rejected`]; `count` covers the finite samples actually
    /// summarized. An all-poisoned (or empty) input yields the zeroed
    /// summary.
    pub fn of_lenient(samples: &[f64]) -> Summary {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        let rejected = samples.len() - sorted.len();
        if sorted.is_empty() {
            return Summary {
                count: 0,
                rejected,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                std_dev: 0.0,
            };
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Summary {
            count: n,
            rejected,
            mean,
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            std_dev: var.sqrt(),
        }
    }
}

impl Default for Summary {
    /// The zeroed summary of an empty sample set — the value report fields
    /// fall back to when deserializing JSON that predates them.
    fn default() -> Summary {
        Summary::of_lenient(&[])
    }
}

/// Nearest-rank percentile on pre-sorted data.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Summary::of(&[f64::NAN]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_anywhere_in_the_slice() {
        // NaN breaks `partial_cmp`-based sorting, so it must be rejected
        // up front no matter where it hides — not only at index 0.
        Summary::of(&[1.0, 2.0, f64::NAN, 4.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_positive_infinity() {
        Summary::of(&[1.0, f64::INFINITY]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_infinity() {
        Summary::of(&[f64::NEG_INFINITY, 1.0]);
    }

    #[test]
    fn lenient_skips_and_counts_poisoned_samples() {
        // A service report must survive a poisoned series: the non-finite
        // samples vanish from the statistics but stay visible as a count.
        let s = Summary::of_lenient(&[3.0, f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn lenient_all_poisoned_is_zeroed_not_a_panic() {
        let s = Summary::of_lenient(&[f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(s.count, 0);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let samples: Vec<f64> = (1..=50).map(|i| i as f64 * 0.5).collect();
        assert_eq!(Summary::of_lenient(&samples), Summary::of(&samples));
        assert_eq!(Summary::of(&samples).rejected, 0);
    }

    #[test]
    fn summary_deserializes_without_rejected_field() {
        // Checked-in baseline JSONs predate the `rejected` counter.
        let json = r#"{"count":1,"mean":1.0,"min":1.0,"max":1.0,
                       "p50":1.0,"p95":1.0,"p99":1.0,"std_dev":0.0}"#;
        let s: Summary = serde_json::from_str(json).expect("deserialize");
        assert_eq!(s.rejected, 0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn negative_zero_sorts_with_zero() {
        // -0.0 == 0.0 under `partial_cmp`; the summary must stay total and
        // place both at the bottom without panicking.
        let s = Summary::of(&[0.0, -0.0, 1.0]);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.p50, 0.0);
    }
}
