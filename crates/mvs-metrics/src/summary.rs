//! Descriptive statistics.

use serde::{Deserialize, Serialize};

/// Mean / min / max / percentile summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (`0.0` for empty input).
    pub mean: f64,
    /// Minimum (`0.0` for empty input).
    pub min: f64,
    /// Maximum (`0.0` for empty input).
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile — the tail metric reported by the fault-injection
    /// benchmarks.
    pub p99: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes the summary of a slice.
    ///
    /// # Panics
    ///
    /// Panics if any sample is not finite.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(
            samples.iter().all(|v| v.is_finite()),
            "summary samples must be finite"
        );
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                std_dev: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Summary {
            count: n,
            mean,
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            std_dev: var.sqrt(),
        }
    }
}

/// Nearest-rank percentile on pre-sorted data.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Summary::of(&[f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_anywhere_in_the_slice() {
        // NaN breaks `partial_cmp`-based sorting, so it must be rejected
        // up front no matter where it hides — not only at index 0.
        Summary::of(&[1.0, 2.0, f64::NAN, 4.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_positive_infinity() {
        Summary::of(&[1.0, f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_infinity() {
        Summary::of(&[f64::NEG_INFINITY, 1.0]);
    }

    #[test]
    fn negative_zero_sorts_with_zero() {
        // -0.0 == 0.0 under `partial_cmp`; the summary must stay total and
        // place both at the bottom without panicking.
        let s = Summary::of(&[0.0, -0.0, 1.0]);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.p50, 0.0);
    }
}
