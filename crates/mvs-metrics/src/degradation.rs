//! Graceful-degradation bookkeeping for fault-injection runs.
//!
//! When cameras drop out or key-frame sync messages are lost, the pipeline
//! keeps running in a degraded mode instead of panicking. These counters
//! quantify *how* degraded a run was, so the fault benchmarks can plot
//! recall and latency against the actual fault intensity experienced (not
//! just the configured rates).

use serde::{Deserialize, Serialize};

/// Counters describing every degradation event observed during one
/// pipeline run.
///
/// All fields are cumulative over the run. A fault-free run reports all
/// zeros. Counters merge additively across runs via
/// [`DegradationCounters::merge`], which the multi-seed benchmark harness
/// uses to aggregate replications.
///
/// # Examples
///
/// ```
/// use mvs_metrics::DegradationCounters;
///
/// let mut total = DegradationCounters::default();
/// let mut run = DegradationCounters::default();
/// run.dropouts = 2;
/// run.lost_uploads = 5;
/// total.merge(&run);
/// total.merge(&run);
/// assert_eq!(total.dropouts, 4);
/// assert_eq!(total.lost_uploads, 10);
/// assert!(total.any());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationCounters {
    /// Camera dropout events (a live camera went dark at a key frame).
    pub dropouts: u64,
    /// Camera rejoin events (a dark camera came back at a key frame).
    pub rejoins: u64,
    /// Frames during which at least one camera was dead.
    pub degraded_frames: u64,
    /// Key-frame upload messages lost in transit (counted per attempt,
    /// so one upload that needed two retries adds two here).
    pub lost_uploads: u64,
    /// Key-frame assignment (downlink) messages lost in transit.
    pub lost_downlinks: u64,
    /// Successful retransmissions after an initial loss.
    pub retransmits: u64,
    /// Camera-horizons spent desynchronized: the camera was alive but
    /// missed the key-frame round trip and ran on a stale mask.
    pub desynced_horizons: u64,
    /// Key frames at which *no* camera completed the round trip: the whole
    /// fleet coasted on stale masks and tracks instead of re-scheduling
    /// (and instead of crashing — see the serving model in DESIGN.md).
    #[serde(default)]
    pub coasted_horizons: u64,
    /// Ground-truth objects visible only to dead cameras — scheduling
    /// coverage irrecoverably lost to the fault, counted once per frame
    /// per object while the outage lasts.
    pub coverage_lost_objects: u64,
    /// Non-finite metric samples rejected instead of panicking.
    pub rejected_samples: u64,
}

impl DegradationCounters {
    /// Adds another run's counters into this one, field by field.
    pub fn merge(&mut self, other: &DegradationCounters) {
        self.dropouts += other.dropouts;
        self.rejoins += other.rejoins;
        self.degraded_frames += other.degraded_frames;
        self.lost_uploads += other.lost_uploads;
        self.lost_downlinks += other.lost_downlinks;
        self.retransmits += other.retransmits;
        self.desynced_horizons += other.desynced_horizons;
        self.coasted_horizons += other.coasted_horizons;
        self.coverage_lost_objects += other.coverage_lost_objects;
        self.rejected_samples += other.rejected_samples;
    }

    /// Whether any degradation at all was recorded.
    pub fn any(&self) -> bool {
        *self != DegradationCounters::default()
    }

    /// Total messages lost on either link.
    pub fn lost_messages(&self) -> u64 {
        self.lost_uploads + self.lost_downlinks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reports_no_degradation() {
        let c = DegradationCounters::default();
        assert!(!c.any());
        assert_eq!(c.lost_messages(), 0);
    }

    #[test]
    fn merge_is_additive_over_every_field() {
        let a = DegradationCounters {
            dropouts: 1,
            rejoins: 2,
            degraded_frames: 3,
            lost_uploads: 4,
            lost_downlinks: 5,
            retransmits: 6,
            desynced_horizons: 7,
            coasted_horizons: 10,
            coverage_lost_objects: 8,
            rejected_samples: 9,
        };
        let mut sum = a;
        sum.merge(&a);
        assert_eq!(
            sum,
            DegradationCounters {
                dropouts: 2,
                rejoins: 4,
                degraded_frames: 6,
                lost_uploads: 8,
                lost_downlinks: 10,
                retransmits: 12,
                desynced_horizons: 14,
                coasted_horizons: 20,
                coverage_lost_objects: 16,
                rejected_samples: 18,
            }
        );
        assert!(sum.any());
        assert_eq!(sum.lost_messages(), 18);
    }

    #[test]
    fn deserializes_without_coasted_field() {
        // Counters serialized before the coasted-horizon counter existed
        // (checked-in bench baselines) must still load.
        let json = r#"{"dropouts":1,"rejoins":0,"degraded_frames":0,
                       "lost_uploads":0,"lost_downlinks":0,"retransmits":0,
                       "desynced_horizons":0,"coverage_lost_objects":0,
                       "rejected_samples":0}"#;
        let c: DegradationCounters = serde_json::from_str(json).expect("deserialize");
        assert_eq!(c.coasted_horizons, 0);
        assert_eq!(c.dropouts, 1);
    }

    #[test]
    fn serde_round_trip() {
        let c = DegradationCounters {
            dropouts: 3,
            lost_uploads: 1,
            ..Default::default()
        };
        let json = serde_json::to_string(&c).expect("serialize");
        let back: DegradationCounters = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }
}
