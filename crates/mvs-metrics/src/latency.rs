//! Per-frame latency bookkeeping (Fig. 13/14 metric).

use crate::Summary;
use serde::{Deserialize, Serialize};

/// A series of per-frame system latencies (the slowest camera per frame).
///
/// The paper reports "the average per-frame YOLO inference time on the
/// slowest camera for each scheduling horizon", with the key frame's
/// full-frame time averaged into its horizon.
///
/// # Examples
///
/// ```
/// use mvs_metrics::LatencySeries;
///
/// let mut s = LatencySeries::new();
/// s.push(650.0); // key frame
/// for _ in 0..9 { s.push(50.0); } // regular frames
/// assert!((s.mean_ms() - (650.0 + 9.0 * 50.0) / 10.0).abs() < 1e-9);
/// assert_eq!(LatencySeries::speedup(650.0, s.mean_ms()), 650.0 / s.mean_ms());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySeries {
    samples_ms: Vec<f64>,
}

impl LatencySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        LatencySeries::default()
    }

    /// Appends one frame's system latency (ms).
    ///
    /// # Panics
    ///
    /// Panics if the sample is negative or not finite.
    pub fn push(&mut self, latency_ms: f64) {
        assert!(
            latency_ms.is_finite() && latency_ms >= 0.0,
            "latency sample must be finite and non-negative"
        );
        self.samples_ms.push(latency_ms);
    }

    /// Number of recorded frames.
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// True when no frames have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// The raw samples.
    pub fn samples_ms(&self) -> &[f64] {
        &self.samples_ms
    }

    /// Mean latency over all frames; `0.0` when empty.
    pub fn mean_ms(&self) -> f64 {
        if self.samples_ms.is_empty() {
            0.0
        } else {
            self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64
        }
    }

    /// Mean latency per horizon of `horizon` frames (the Fig. 13 grouping),
    /// one value per complete-or-partial horizon.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn horizon_means_ms(&self, horizon: usize) -> Vec<f64> {
        assert!(horizon > 0, "horizon must be positive");
        self.samples_ms
            .chunks(horizon)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect()
    }

    /// Descriptive statistics over the samples.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.samples_ms)
    }

    /// Multiplicative speedup of `ours` relative to `baseline`
    /// (`baseline / ours`); the paper's `2.45×`–`6.85×` numbers.
    ///
    /// # Panics
    ///
    /// Panics if `ours` is not positive.
    pub fn speedup(baseline_ms: f64, ours_ms: f64) -> f64 {
        assert!(ours_ms > 0.0, "cannot compute speedup over zero latency");
        baseline_ms / ours_ms
    }
}

impl Extend<f64> for LatencySeries {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for LatencySeries {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = LatencySeries::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(LatencySeries::new().mean_ms(), 0.0);
    }

    #[test]
    fn horizon_means_chunking() {
        let s: LatencySeries = [10.0, 20.0, 30.0, 40.0, 50.0].into_iter().collect();
        let h = s.horizon_means_ms(2);
        assert_eq!(h, vec![15.0, 35.0, 50.0]);
    }

    #[test]
    fn speedup_is_ratio() {
        assert_eq!(LatencySeries::speedup(650.0, 100.0), 6.5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_samples() {
        LatencySeries::new().push(-1.0);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn rejects_zero_horizon() {
        let s: LatencySeries = [1.0].into_iter().collect();
        s.horizon_means_ms(0);
    }

    #[test]
    fn summary_agrees_with_mean() {
        let s: LatencySeries = [1.0, 3.0].into_iter().collect();
        assert_eq!(s.summary().mean, s.mean_ms());
    }
}
