//! Object recall (the paper's detection-quality metric, Sec. IV-C).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Accumulates object recall over a run.
///
/// At every timestamp, for each ground-truth object visible to at least one
/// camera, the object is a true positive if *any* camera detected/tracked
/// it and a false negative otherwise. Object recall is `TP / (TP + FN)`.
/// The metric is deliberately insensitive to which camera found the object
/// and to false positives (the paper scores those via association
/// precision instead).
///
/// # Examples
///
/// ```
/// use mvs_metrics::RecallAccumulator;
///
/// let mut recall = RecallAccumulator::new();
/// // Frame 1: objects {1, 2} visible, only 1 detected somewhere.
/// recall.record([1, 2], [1]);
/// // Frame 2: object 2 visible and detected.
/// recall.record([2], [2]);
/// assert_eq!(recall.true_positives(), 2);
/// assert_eq!(recall.false_negatives(), 1);
/// assert!((recall.recall() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecallAccumulator {
    tp: u64,
    fn_: u64,
    frames: u64,
}

impl RecallAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RecallAccumulator::default()
    }

    /// Records one timestamp: the set of ground-truth objects visible to at
    /// least one camera, and the set of object ids detected by any camera.
    /// Detected ids not in the visible set are ignored (false positives are
    /// not part of this metric).
    pub fn record<V, D>(&mut self, visible: V, detected: D)
    where
        V: IntoIterator<Item = u64>,
        D: IntoIterator<Item = u64>,
    {
        let detected: HashSet<u64> = detected.into_iter().collect();
        for id in visible {
            if detected.contains(&id) {
                self.tp += 1;
            } else {
                self.fn_ += 1;
            }
        }
        self.frames += 1;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RecallAccumulator) {
        self.tp += other.tp;
        self.fn_ += other.fn_;
        self.frames += other.frames;
    }

    /// True positives so far.
    pub fn true_positives(&self) -> u64 {
        self.tp
    }

    /// False negatives so far.
    pub fn false_negatives(&self) -> u64 {
        self.fn_
    }

    /// Number of recorded timestamps.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Object recall in `[0, 1]`; `1.0` when nothing was ever visible.
    pub fn recall(&self) -> f64 {
        let total = self.tp + self.fn_;
        if total == 0 {
            1.0
        } else {
            self.tp as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_has_perfect_recall() {
        assert_eq!(RecallAccumulator::new().recall(), 1.0);
    }

    #[test]
    fn any_camera_detection_counts() {
        let mut r = RecallAccumulator::new();
        // Object 5 visible; the union of camera detections contains it.
        r.record([5], [9, 5, 3]);
        assert_eq!(r.true_positives(), 1);
        assert_eq!(r.false_negatives(), 0);
    }

    #[test]
    fn false_positives_do_not_affect_recall() {
        let mut r = RecallAccumulator::new();
        r.record([1], [1, 99, 100]);
        assert_eq!(r.recall(), 1.0);
    }

    #[test]
    fn missed_objects_are_false_negatives() {
        let mut r = RecallAccumulator::new();
        r.record([1, 2, 3], [2]);
        assert_eq!(r.true_positives(), 1);
        assert_eq!(r.false_negatives(), 2);
        assert!((r.recall() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = RecallAccumulator::new();
        a.record([1], [1]);
        let mut b = RecallAccumulator::new();
        b.record([1, 2], []);
        a.merge(&b);
        assert_eq!(a.true_positives(), 1);
        assert_eq!(a.false_negatives(), 2);
        assert_eq!(a.frames(), 2);
    }
}
