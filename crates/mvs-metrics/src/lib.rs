//! Evaluation metrics and reporting for the multi-view pipeline.
//!
//! Implements the paper's two headline metrics plus the bookkeeping the
//! experiment harness needs:
//!
//! * [`RecallAccumulator`] — *object recall* (Sec. IV-C): at every
//!   timestamp, a ground-truth object counts as a true positive if at least
//!   one camera detects it; recall is TP / (TP + FN).
//! * [`LatencySeries`] — per-frame system latency (the slowest camera) and
//!   the per-horizon averaging used in Fig. 13/14, plus speedups.
//! * [`OverheadBreakdown`] — Table II's per-component accounting
//!   (max-across-cameras per frame, then mean across frames).
//! * [`Summary`], [`TextTable`], and [`sparkline`] — descriptive
//!   statistics, plain-text tables, and terminal sparklines for the
//!   experiment binaries.
//! * [`DegradationCounters`] — graceful-degradation bookkeeping for
//!   fault-injection runs (dropouts, lost sync messages, coverage loss).
//! * [`RecoveryCounters`] — crash-recovery bookkeeping for the serving
//!   layer (restarts, replayed frames, quarantines, snapshot staleness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod degradation;
mod latency;
mod overhead;
mod recall;
mod recovery;
mod report;
mod running;
mod sparkline;
mod summary;

pub use degradation::DegradationCounters;
pub use latency::LatencySeries;
pub use overhead::{OverheadBreakdown, OverheadSample};
pub use recall::RecallAccumulator;
pub use recovery::RecoveryCounters;
pub use report::TextTable;
pub use running::Running;
pub use sparkline::{sparkline, sparkline_fit};
pub use summary::Summary;
