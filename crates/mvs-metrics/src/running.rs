//! Running mean/variance accumulation (Welford's algorithm) for
//! multi-seed experiment replication.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean and variance.
///
/// # Examples
///
/// ```
/// use mvs_metrics::Running;
///
/// let mut r = Running::new();
/// for v in [2.0, 4.0, 6.0] {
///     r.push(v);
/// }
/// assert_eq!(r.mean(), 4.0);
/// assert!((r.sample_std() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    rejected: u64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Running::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is not finite. Degraded-run metric paths that
    /// may legitimately produce NaN/Inf (fault-injection experiments)
    /// should use [`Running::try_push`] instead, which tags the sample
    /// rather than aborting the whole experiment.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "running-stat samples must be finite");
        self.accept(value);
    }

    /// Adds one sample if it is finite; otherwise counts it as rejected
    /// (see [`Running::rejected`]) and leaves the statistics untouched.
    /// Returns whether the sample was accepted.
    pub fn try_push(&mut self, value: f64) -> bool {
        if value.is_finite() {
            self.accept(value);
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    fn accept(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of non-finite samples rejected by [`Running::try_push`].
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`0.0` with fewer than one sample).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) standard deviation; `0.0` with fewer than
    /// two samples.
    pub fn sample_std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Formats as `mean ± std` with the given precision.
    pub fn format(&self, precision: usize) -> String {
        format!(
            "{:.p$} ± {:.p$}",
            self.mean(),
            self.sample_std(),
            p = precision
        )
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.sample_std(), 0.0);
    }

    #[test]
    fn matches_direct_computation() {
        let samples = [1.5, -2.0, 7.25, 0.0, 3.125];
        let mut r = Running::new();
        r.extend(samples);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((r.mean() - mean).abs() < 1e-12);
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        assert!((r.sample_std() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let mut r = Running::new();
        r.push(42.0);
        assert_eq!(r.mean(), 42.0);
        assert_eq!(r.sample_std(), 0.0);
    }

    #[test]
    fn stable_under_large_offsets() {
        // Welford's point: offset by 1e9 must not destroy the variance.
        let mut r = Running::new();
        for v in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            r.push(v);
        }
        assert!((r.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!((r.sample_std() - 30f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn format_renders_mean_and_std() {
        let mut r = Running::new();
        r.extend([1.0, 3.0]);
        assert_eq!(r.format(1), "2.0 ± 1.4");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Running::new().push(f64::NAN);
    }

    #[test]
    fn try_push_tags_non_finite_instead_of_panicking() {
        let mut r = Running::new();
        assert!(r.try_push(1.0));
        assert!(!r.try_push(f64::NAN));
        assert!(!r.try_push(f64::INFINITY));
        assert!(!r.try_push(f64::NEG_INFINITY));
        assert!(r.try_push(3.0));
        assert_eq!(r.count(), 2);
        assert_eq!(r.rejected(), 3);
        assert_eq!(r.mean(), 2.0);
    }

    #[test]
    fn try_push_nan_as_first_sample_leaves_stats_zeroed() {
        // A NaN arriving before any accepted sample must not poison the
        // accumulator: Welford's update would turn one NaN into NaN mean
        // and variance forever if it slipped through.
        let mut r = Running::new();
        assert!(!r.try_push(f64::NAN));
        assert_eq!(r.count(), 0);
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.sample_std(), 0.0);
        // The accumulator still works normally afterwards.
        assert!(r.try_push(5.0));
        assert!(r.try_push(9.0));
        assert_eq!(r.mean(), 7.0);
        assert!(r.mean().is_finite());
    }

    #[test]
    fn try_push_inf_as_first_sample_leaves_stats_zeroed() {
        let mut r = Running::new();
        assert!(!r.try_push(f64::INFINITY));
        assert!(!r.try_push(f64::NEG_INFINITY));
        assert_eq!(r.count(), 0);
        assert_eq!(r.rejected(), 2);
        assert_eq!(r.mean(), 0.0);
        assert!(r.try_push(-4.0));
        assert_eq!(r.mean(), -4.0);
        assert_eq!(r.count(), 1);
    }
}
