//! Plain-text table rendering and CSV export for the experiment binaries.

use std::fmt;

/// A simple fixed-width text table mirroring the rows of a paper figure.
///
/// # Examples
///
/// ```
/// use mvs_metrics::TextTable;
///
/// let mut t = TextTable::new(vec!["scenario", "speedup"]);
/// t.row(vec!["S1".into(), format!("{:.2}x", 6.85)]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("S1"));
/// assert!(rendered.contains("6.85x"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (headers first, fields escaped when they
    /// contain commas or quotes).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<w$}")?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["one".into(), "1".into()]);
        t.row(vec!["two,three".into(), "2\"".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let s = sample().to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("one"));
    }

    #[test]
    fn csv_escapes_special_characters() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"two,three\""));
        assert!(csv.contains("\"2\"\"\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "row width must match")]
    fn rejects_ragged_rows() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_headers() {
        TextTable::new(Vec::<String>::new());
    }

    #[test]
    fn len_counts_rows() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
    }
}
