//! Crash-recovery bookkeeping for the serving layer.
//!
//! The serve loop survives coordinator crashes (restore from the latest
//! snapshot plus bounded replay), per-tenant pipeline poison (quarantine
//! and re-admission), and compute-pool degradation. These counters
//! quantify how much of that machinery a run exercised, so the chaos
//! benchmarks can report MTTR and availability against the fault schedule
//! actually experienced.

use serde::{Deserialize, Serialize};

/// Counters describing every recovery event observed during one serving
/// run.
///
/// All fields are cumulative over the run and survive coordinator
/// restarts (they are part of every snapshot). A fault-free run with
/// snapshotting disabled reports all zeros. Counters merge via
/// [`RecoveryCounters::merge`]: additively, except
/// [`RecoveryCounters::staleness_at_resume_us`], which is a maximum.
///
/// # Examples
///
/// ```
/// use mvs_metrics::RecoveryCounters;
///
/// let mut total = RecoveryCounters::default();
/// let mut run = RecoveryCounters::default();
/// run.restarts = 1;
/// run.recovery_us = 40_000;
/// total.merge(&run);
/// total.merge(&run);
/// assert_eq!(total.restarts, 2);
/// assert_eq!(total.mttr_us(), 40_000.0);
/// assert!(total.any());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryCounters {
    /// Coordinator restarts (one per injected crash that was recovered).
    #[serde(default)]
    pub restarts: u64,
    /// Capture-clock frames that fell into a crash gap and were replayed
    /// as skips when the coordinator resumed (they advance the world but
    /// were never offered to the ingest lanes).
    #[serde(default)]
    pub replayed_frames: u64,
    /// Virtual µs from each crash to the first frame dispatched after its
    /// recovery, summed over restarts. `mttr_us` divides this out.
    #[serde(default)]
    pub recovery_us: u64,
    /// Virtual µs the coordinator was down (crash → restart), summed.
    #[serde(default)]
    pub outage_us: u64,
    /// Worst-case snapshot age at resume: the largest gap between a
    /// restored snapshot's capture time and the restart instant, µs.
    #[serde(default)]
    pub staleness_at_resume_us: u64,
    /// Periodic snapshots taken (the initial construction-time snapshot
    /// is not counted).
    #[serde(default)]
    pub snapshots_taken: u64,
    /// Tenant pipelines poisoned and quarantined.
    #[serde(default)]
    pub quarantines: u64,
    /// Quarantined tenants re-piloted through the admission ladder after
    /// their quarantine window expired (whatever rung they landed on).
    #[serde(default)]
    pub readmissions: u64,
    /// Pipeline steps that panicked under injected poison (caught and
    /// isolated; never more than one per quarantine).
    #[serde(default)]
    pub poisoned_steps: u64,
}

impl RecoveryCounters {
    /// Adds another run's counters into this one: additively, except the
    /// staleness high-water mark, which takes the maximum.
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.restarts += other.restarts;
        self.replayed_frames += other.replayed_frames;
        self.recovery_us += other.recovery_us;
        self.outage_us += other.outage_us;
        self.staleness_at_resume_us = self
            .staleness_at_resume_us
            .max(other.staleness_at_resume_us);
        self.snapshots_taken += other.snapshots_taken;
        self.quarantines += other.quarantines;
        self.readmissions += other.readmissions;
        self.poisoned_steps += other.poisoned_steps;
    }

    /// Whether any recovery machinery ran at all.
    pub fn any(&self) -> bool {
        *self != RecoveryCounters::default()
    }

    /// Mean time to recovery in virtual µs: crash → first post-recovery
    /// dispatch, averaged over restarts (0.0 when nothing crashed).
    pub fn mttr_us(&self) -> f64 {
        if self.restarts == 0 {
            0.0
        } else {
            self.recovery_us as f64 / self.restarts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reports_no_recovery() {
        let c = RecoveryCounters::default();
        assert!(!c.any());
        assert_eq!(c.mttr_us(), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_maxes_staleness() {
        let a = RecoveryCounters {
            restarts: 1,
            replayed_frames: 2,
            recovery_us: 3,
            outage_us: 4,
            staleness_at_resume_us: 500,
            snapshots_taken: 6,
            quarantines: 7,
            readmissions: 8,
            poisoned_steps: 9,
        };
        let b = RecoveryCounters {
            staleness_at_resume_us: 50,
            ..a
        };
        let mut sum = a;
        sum.merge(&b);
        assert_eq!(
            sum,
            RecoveryCounters {
                restarts: 2,
                replayed_frames: 4,
                recovery_us: 6,
                outage_us: 8,
                staleness_at_resume_us: 500,
                snapshots_taken: 12,
                quarantines: 14,
                readmissions: 16,
                poisoned_steps: 18,
            }
        );
        assert!(sum.any());
        assert_eq!(sum.mttr_us(), 3.0);
    }

    #[test]
    fn deserializes_from_empty_object() {
        // Reports serialized before the recovery counters existed
        // (checked-in bench baselines) must still load.
        let c: RecoveryCounters = serde_json::from_str("{}").expect("deserialize");
        assert_eq!(c, RecoveryCounters::default());
    }

    #[test]
    fn serde_round_trip() {
        let c = RecoveryCounters {
            restarts: 2,
            staleness_at_resume_us: 120_000,
            ..Default::default()
        };
        let json = serde_json::to_string(&c).expect("serialize");
        let back: RecoveryCounters = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(c, back);
    }
}
