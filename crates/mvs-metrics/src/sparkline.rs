//! Terminal sparklines for the experiment binaries.

/// Renders a compact one-line sparkline of a sample series using Unicode
/// block characters, e.g. `▂▃▅▇█▆▃▁`.
///
/// Values are scaled between the series min and max; an empty series
/// renders as an empty string and a constant series as a flat mid-level
/// line. NaN/infinite samples are rejected.
///
/// # Panics
///
/// Panics if any sample is not finite.
///
/// # Examples
///
/// ```
/// let s = mvs_metrics::sparkline(&[1.0, 2.0, 3.0, 2.0, 1.0]);
/// assert_eq!(s.chars().count(), 5);
/// assert!(s.contains('█'));
/// ```
pub fn sparkline(samples: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    assert!(
        samples.iter().all(|v| v.is_finite()),
        "sparkline samples must be finite"
    );
    if samples.is_empty() {
        return String::new();
    }
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    samples
        .iter()
        .map(|&v| {
            if span <= 0.0 {
                LEVELS[3]
            } else {
                let idx = ((v - min) / span * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            }
        })
        .collect()
}

/// Downsamples a series to at most `width` points (bucket means) and
/// renders it with [`sparkline`] — for long per-frame latency series.
///
/// # Panics
///
/// Panics if `width` is zero or any sample is not finite.
pub fn sparkline_fit(samples: &[f64], width: usize) -> String {
    assert!(width > 0, "sparkline width must be positive");
    if samples.len() <= width {
        return sparkline(samples);
    }
    let bucket = samples.len().div_ceil(width);
    let reduced: Vec<f64> = samples
        .chunks(bucket)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    sparkline(&reduced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_is_empty_string() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn constant_series_is_flat() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s, "▄▄▄");
    }

    #[test]
    fn extremes_map_to_extreme_levels() {
        let s: Vec<char> = sparkline(&[0.0, 10.0]).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[1], '█');
    }

    #[test]
    fn monotone_series_is_non_decreasing() {
        let s: Vec<char> = sparkline(&[1.0, 2.0, 3.0, 4.0, 5.0]).chars().collect();
        for w in s.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn fit_reduces_long_series() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = sparkline_fit(&samples, 40);
        assert!(s.chars().count() <= 40);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn fit_passes_short_series_through() {
        let samples = [1.0, 2.0];
        assert_eq!(sparkline_fit(&samples, 40), sparkline(&samples));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        sparkline(&[f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rejects_zero_width() {
        sparkline_fit(&[1.0], 0);
    }
}
