//! Table II: per-frame latency overhead breakdown.

use serde::{Deserialize, Serialize};

/// One frame's overhead contributions on one camera (or the central
/// scheduler), in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadSample {
    /// Cross-camera association + central BALB scheduling, amortized over
    /// the frames of its horizon (the central stage runs once per horizon).
    pub central_ms: f64,
    /// Optical-flow prediction + track association.
    pub tracking_ms: f64,
    /// The distributed-stage BALB decisions.
    pub distributed_ms: f64,
    /// Batch assembly (crop extraction, resizing, tensor packing).
    pub batching_ms: f64,
}

impl OverheadSample {
    /// Sum of all components.
    pub fn total_ms(&self) -> f64 {
        self.central_ms + self.tracking_ms + self.distributed_ms + self.batching_ms
    }
}

/// Accumulates the Table II statistic: for every component, take the
/// maximum across cameras within a frame, then the mean across frames.
///
/// # Examples
///
/// ```
/// use mvs_metrics::{OverheadBreakdown, OverheadSample};
///
/// let mut b = OverheadBreakdown::new();
/// b.record_frame(&[
///     OverheadSample { tracking_ms: 10.0, ..Default::default() },
///     OverheadSample { tracking_ms: 20.0, ..Default::default() },
/// ]);
/// b.record_frame(&[OverheadSample { tracking_ms: 30.0, ..Default::default() }]);
/// assert_eq!(b.mean().tracking_ms, 25.0); // mean of per-frame maxima {20, 30}
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    sum: OverheadSample,
    frames: u64,
}

impl OverheadBreakdown {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OverheadBreakdown::default()
    }

    /// Records one frame given the per-camera samples; empty input counts a
    /// frame with zero overhead.
    pub fn record_frame(&mut self, per_camera: &[OverheadSample]) {
        let max = |f: fn(&OverheadSample) -> f64| per_camera.iter().map(f).fold(0.0, f64::max);
        self.sum.central_ms += max(|s| s.central_ms);
        self.sum.tracking_ms += max(|s| s.tracking_ms);
        self.sum.distributed_ms += max(|s| s.distributed_ms);
        self.sum.batching_ms += max(|s| s.batching_ms);
        self.frames += 1;
    }

    /// Number of recorded frames.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Mean per-frame overhead per component (zeros when no frames).
    pub fn mean(&self) -> OverheadSample {
        if self.frames == 0 {
            return OverheadSample::default();
        }
        let n = self.frames as f64;
        OverheadSample {
            central_ms: self.sum.central_ms / n,
            tracking_ms: self.sum.tracking_ms / n,
            distributed_ms: self.sum.distributed_ms / n,
            batching_ms: self.sum.batching_ms / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let s = OverheadSample {
            central_ms: 1.0,
            tracking_ms: 2.0,
            distributed_ms: 3.0,
            batching_ms: 4.0,
        };
        assert_eq!(s.total_ms(), 10.0);
    }

    #[test]
    fn per_component_maxima_are_independent() {
        let mut b = OverheadBreakdown::new();
        b.record_frame(&[
            OverheadSample {
                central_ms: 5.0,
                tracking_ms: 1.0,
                ..Default::default()
            },
            OverheadSample {
                central_ms: 1.0,
                tracking_ms: 9.0,
                ..Default::default()
            },
        ]);
        let m = b.mean();
        assert_eq!(m.central_ms, 5.0);
        assert_eq!(m.tracking_ms, 9.0);
    }

    #[test]
    fn empty_accumulator_means_zero() {
        assert_eq!(OverheadBreakdown::new().mean(), OverheadSample::default());
    }

    #[test]
    fn empty_frame_counts_as_zero_overhead() {
        let mut b = OverheadBreakdown::new();
        b.record_frame(&[OverheadSample {
            batching_ms: 10.0,
            ..Default::default()
        }]);
        b.record_frame(&[]);
        assert_eq!(b.frames(), 2);
        assert_eq!(b.mean().batching_ms, 5.0);
    }
}
