//! Property-based tests for the metrics crate.

use mvs_metrics::{sparkline, sparkline_fit, LatencySeries, RecallAccumulator, Running, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn running_matches_summary(samples in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let mut running = Running::new();
        running.extend(samples.iter().copied());
        let summary = Summary::of(&samples);
        prop_assert!((running.mean() - summary.mean).abs() < 1e-6);
        prop_assert_eq!(running.count() as usize, summary.count);
        // Population std from Summary vs Bessel-corrected from Running.
        if samples.len() > 1 {
            let pop_var = summary.std_dev * summary.std_dev;
            let sample_var = running.sample_std() * running.sample_std();
            let expected = pop_var * samples.len() as f64 / (samples.len() - 1) as f64;
            prop_assert!((sample_var - expected).abs() < 1e-4 * expected.max(1.0));
        }
    }

    #[test]
    fn summary_bounds_hold(samples in prop::collection::vec(-1e5f64..1e5, 1..100)) {
        let s = Summary::of(&samples);
        prop_assert!(s.min <= s.p50 && s.p50 <= s.max);
        prop_assert!(s.p50 <= s.p95 && s.p95 <= s.max);
        prop_assert!(s.p95 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn percentiles_are_sample_members(samples in prop::collection::vec(-1e5f64..1e5, 1..100)) {
        // Nearest-rank percentiles select an actual sample, never an
        // interpolated value — and in particular p99 <= max always holds.
        let s = Summary::of(&samples);
        for p in [s.p50, s.p95, s.p99] {
            prop_assert!(samples.contains(&p), "{p} not in the sample set");
        }
        prop_assert!(s.p99 <= s.max);
    }

    #[test]
    fn sparkline_length_matches_input(samples in prop::collection::vec(0.0f64..100.0, 0..80)) {
        prop_assert_eq!(sparkline(&samples).chars().count(), samples.len());
    }

    #[test]
    fn sparkline_fit_respects_width(
        samples in prop::collection::vec(0.0f64..100.0, 1..500),
        width in 1usize..60,
    ) {
        let rendered = sparkline_fit(&samples, width).chars().count();
        prop_assert!(rendered <= width, "rendered {rendered} > width {width}");
        prop_assert!(rendered > 0);
    }

    #[test]
    fn latency_series_mean_is_within_sample_range(
        samples in prop::collection::vec(0.0f64..1e4, 1..200),
    ) {
        let series: LatencySeries = samples.iter().copied().collect();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(series.mean_ms() >= lo - 1e-9 && series.mean_ms() <= hi + 1e-9);
        // Horizon means average back to the global mean.
        let horizon_means = series.horizon_means_ms(10);
        prop_assert!(!horizon_means.is_empty());
        for h in &horizon_means {
            prop_assert!(*h >= lo - 1e-9 && *h <= hi + 1e-9);
        }
    }

    #[test]
    fn recall_is_a_valid_probability(
        frames in prop::collection::vec(
            (
                prop::collection::btree_set(0u64..40, 0..12),
                prop::collection::btree_set(0u64..40, 0..12),
            ),
            0..30,
        ),
    ) {
        let mut acc = RecallAccumulator::new();
        for (visible, detected) in &frames {
            acc.record(visible.iter().copied(), detected.iter().copied());
        }
        let r = acc.recall();
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert_eq!(acc.frames() as usize, frames.len());
        // Detecting everything visible yields recall 1.
        let mut perfect = RecallAccumulator::new();
        for (visible, _) in &frames {
            perfect.record(visible.iter().copied(), visible.iter().copied());
        }
        prop_assert_eq!(perfect.recall(), 1.0);
    }

    #[test]
    fn recall_is_monotone_in_detections(
        visible in prop::collection::btree_set(0u64..30, 1..20),
        partial in prop::collection::btree_set(0u64..30, 0..10),
    ) {
        // Detecting a superset can never lower recall.
        let mut less = RecallAccumulator::new();
        less.record(visible.iter().copied(), partial.iter().copied());
        let mut more = RecallAccumulator::new();
        let superset: Vec<u64> = partial.iter().chain(visible.iter()).copied().collect();
        more.record(visible.iter().copied(), superset);
        prop_assert!(more.recall() >= less.recall());
    }
}
