//! Per-camera-pair visibility classifier and location regressor.

use mvs_geometry::BBox;
use mvs_ml::{Classifier, KnnClassifier, KnnRegressor, MlError, Regressor};
use serde::{Deserialize, Serialize};

/// One labeled training sample for a (source → target) camera pair: an
/// object's box in the source camera and, when it is also visible in the
/// target camera, its box there.
///
/// In the paper these labels come from human annotation of the deployment
/// (with ReID-assisted labeling listed as future work); in this workspace
/// the simulator provides them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrespondenceSample {
    /// Bounding box in the source camera.
    pub src: BBox,
    /// Bounding box in the target camera, or `None` when not visible there.
    pub dst: Option<BBox>,
}

/// The fitted models for one ordered camera pair (source → target).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CameraPairModel {
    classifier: KnnClassifier,
    regressor: Option<KnnRegressor>,
}

impl CameraPairModel {
    /// Predicts the target-camera bounding box for a source-camera box:
    /// `None` when the classifier says the object is not visible there (or
    /// no regressor could be trained for this pair).
    pub fn predict(&self, src: &BBox) -> Option<BBox> {
        let features = src.to_array().to_vec();
        if self.classifier.predict(&features) == 0 {
            return None;
        }
        let regressor = self.regressor.as_ref()?;
        let coords = regressor.predict(&features);
        BBox::from_array_lenient([coords[0], coords[1], coords[2], coords[3]]).ok()
    }

    /// Whether the pair ever observed a positive correspondence (i.e. has a
    /// usable regressor).
    pub fn has_regressor(&self) -> bool {
        self.regressor.is_some()
    }
}

/// Fits a [`CameraPairModel`] from labeled correspondences.
///
/// The classifier trains on all samples (visible vs. not); the regressor
/// trains on the visible subset only. Pairs whose views never overlap get
/// a classifier-only model that always predicts "not visible".
///
/// # Errors
///
/// Returns [`MlError::EmptyTrainingSet`] for empty input and propagates
/// invalid `k`.
///
/// # Examples
///
/// ```
/// use mvs_assoc::{train_pair_model, CorrespondenceSample};
/// use mvs_geometry::BBox;
///
/// // Target view shifts boxes 100 px right.
/// let samples: Vec<CorrespondenceSample> = (0..20).map(|i| {
///     let x = 50.0 + 10.0 * i as f64;
///     CorrespondenceSample {
///         src: BBox::new(x, 100.0, x + 40.0, 140.0).unwrap(),
///         dst: Some(BBox::new(x + 100.0, 100.0, x + 140.0, 140.0).unwrap()),
///     }
/// }).collect();
/// let model = train_pair_model(3, &samples)?;
/// let probe = BBox::new(95.0, 100.0, 135.0, 140.0).unwrap();
/// let mapped = model.predict(&probe).unwrap();
/// assert!((mapped.x1() - 195.0).abs() < 20.0);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
pub fn train_pair_model(
    k: usize,
    samples: &[CorrespondenceSample],
) -> Result<CameraPairModel, MlError> {
    if samples.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    let xs: Vec<Vec<f64>> = samples.iter().map(|s| s.src.to_array().to_vec()).collect();
    let labels: Vec<usize> = samples
        .iter()
        .map(|s| usize::from(s.dst.is_some()))
        .collect();
    let classifier = KnnClassifier::fit(k, &xs, &labels)?;
    let pos: Vec<&CorrespondenceSample> = samples.iter().filter(|s| s.dst.is_some()).collect();
    let regressor = if pos.is_empty() {
        None
    } else {
        let rx: Vec<Vec<f64>> = pos.iter().map(|s| s.src.to_array().to_vec()).collect();
        let ry: Vec<Vec<f64>> = pos
            .iter()
            .map(|s| s.dst.expect("filtered to visible").to_array().to_vec())
            .collect();
        Some(KnnRegressor::fit(k, &rx, &ry)?)
    };
    Ok(CameraPairModel {
        classifier,
        regressor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x: f64, y: f64, w: f64, h: f64) -> BBox {
        BBox::new(x, y, x + w, y + h).unwrap()
    }

    /// Overlap only in the right half of the source view; mapped boxes are
    /// mirrored horizontally (a 180° opposing camera).
    fn mirrored_overlap_samples() -> Vec<CorrespondenceSample> {
        let mut out = Vec::new();
        for i in 0..40 {
            let x = 20.0 + 30.0 * i as f64 % 1200.0;
            let src = bb(x, 200.0, 60.0, 50.0);
            let dst = if x > 600.0 {
                Some(bb(1280.0 - x - 60.0, 210.0, 60.0, 50.0))
            } else {
                None
            };
            out.push(CorrespondenceSample { src, dst });
        }
        out
    }

    #[test]
    fn classifier_learns_overlap_region() {
        let model = train_pair_model(3, &mirrored_overlap_samples()).unwrap();
        // Deep in the non-overlap region → not visible.
        assert!(model.predict(&bb(100.0, 200.0, 60.0, 50.0)).is_none());
        // Deep in the overlap region → visible with a mirrored location.
        let mapped = model.predict(&bb(1000.0, 200.0, 60.0, 50.0));
        assert!(mapped.is_some());
    }

    #[test]
    fn regressor_learns_nonlinear_mirror() {
        let model = train_pair_model(3, &mirrored_overlap_samples()).unwrap();
        let mapped = model.predict(&bb(900.0, 200.0, 60.0, 50.0)).unwrap();
        // Mirror of x=900 is 1280-900-60 = 320.
        assert!(
            (mapped.x1() - 320.0).abs() < 120.0,
            "mapped.x1 = {}",
            mapped.x1()
        );
    }

    #[test]
    fn disjoint_views_yield_classifier_only_model() {
        let samples: Vec<CorrespondenceSample> = (0..10)
            .map(|i| CorrespondenceSample {
                src: bb(50.0 * i as f64, 100.0, 40.0, 40.0),
                dst: None,
            })
            .collect();
        let model = train_pair_model(3, &samples).unwrap();
        assert!(!model.has_regressor());
        assert!(model.predict(&bb(100.0, 100.0, 40.0, 40.0)).is_none());
    }

    #[test]
    fn empty_training_set_errors() {
        assert!(matches!(
            train_pair_model(3, &[]),
            Err(MlError::EmptyTrainingSet)
        ));
    }
}
