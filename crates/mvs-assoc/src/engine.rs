//! A full cross-camera association round.

use crate::{CameraPairModel, UnionFind};
use mvs_geometry::BBox;
use mvs_ml::hungarian_max;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One global (physical) object produced by association: the per-camera
/// detections that were identified as the same object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalObject {
    /// Members as `(camera index, detection index)` pairs, sorted.
    pub members: Vec<(usize, usize)>,
}

impl GlobalObject {
    /// Cameras that see this object.
    pub fn cameras(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().map(|&(c, _)| c)
    }

    /// The detection index of this object on `camera`, if seen there.
    pub fn detection_on(&self, camera: usize) -> Option<usize> {
        self.members
            .iter()
            .find(|&&(c, _)| c == camera)
            .map(|&(_, d)| d)
    }
}

/// Runs association rounds given the fitted models for every ordered camera
/// pair `(i, i')` with `i < i'`.
///
/// # Examples
///
/// See the integration tests in `tests/` — building an engine requires
/// trained pair models, which in turn require a scenario's correspondence
/// labels (produced by `mvs-sim`).
#[derive(Debug, Clone)]
pub struct AssociationEngine {
    num_cameras: usize,
    /// Keyed by (source, target) with source < target.
    models: BTreeMap<(usize, usize), CameraPairModel>,
    iou_threshold: f64,
}

impl AssociationEngine {
    /// Default minimum IoU between a predicted box and a detection for the
    /// pair to count as the same object.
    pub const DEFAULT_IOU_THRESHOLD: f64 = 0.15;

    /// Creates an engine over `num_cameras` cameras.
    ///
    /// # Panics
    ///
    /// Panics if `num_cameras` is zero or the threshold is outside `(0, 1]`.
    pub fn new(num_cameras: usize, iou_threshold: f64) -> Self {
        assert!(num_cameras > 0, "need at least one camera");
        assert!(
            iou_threshold > 0.0 && iou_threshold <= 1.0,
            "IoU threshold must be in (0, 1]"
        );
        AssociationEngine {
            num_cameras,
            models: BTreeMap::new(),
            iou_threshold,
        }
    }

    /// Registers the model for the ordered pair `(source, target)`.
    ///
    /// # Panics
    ///
    /// Panics unless `source < target < num_cameras`.
    pub fn insert_model(&mut self, source: usize, target: usize, model: CameraPairModel) {
        assert!(
            source < target && target < self.num_cameras,
            "pair must satisfy source < target < num_cameras"
        );
        self.models.insert((source, target), model);
    }

    /// Number of registered pair models.
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Associates one frame's detections (`detections[c]` are camera `c`'s
    /// boxes) into global objects.
    ///
    /// For every pair `(i, i')`, boxes from `i` that classify as visible in
    /// `i'` are regressed into `i'`, matched against `i'`'s detections by
    /// maximum-IoU Hungarian matching, and pairs above the IoU threshold
    /// are merged. Unmatched detections become singleton global objects.
    ///
    /// # Panics
    ///
    /// Panics if `detections.len() != num_cameras`.
    pub fn associate(&self, detections: &[Vec<BBox>]) -> Vec<GlobalObject> {
        assert_eq!(
            detections.len(),
            self.num_cameras,
            "one detection list per camera required"
        );
        // Flatten to global indices.
        let mut offsets = Vec::with_capacity(self.num_cameras);
        let mut total = 0usize;
        for d in detections {
            offsets.push(total);
            total += d.len();
        }
        let mut uf = UnionFind::new(total);
        for (&(i, ip), model) in &self.models {
            let (src, dst) = (&detections[i], &detections[ip]);
            if src.is_empty() || dst.is_empty() {
                continue;
            }
            // Step 1+2: classify visibility and regress predicted locations.
            let predicted: Vec<(usize, BBox)> = src
                .iter()
                .enumerate()
                .filter_map(|(j, b)| model.predict(b).map(|p| (j, p)))
                .collect();
            if predicted.is_empty() {
                continue;
            }
            // Step 3: proximity matrix and Hungarian matching.
            let scores: Vec<Vec<f64>> = predicted
                .iter()
                .map(|(_, p)| dst.iter().map(|d| p.iou(d)).collect())
                .collect();
            let assignment = hungarian_max(&scores).expect("IoU scores are finite");
            for (row, col) in assignment.iter() {
                if scores[row][col] >= self.iou_threshold {
                    let (j, _) = predicted[row];
                    uf.union(offsets[i] + j, offsets[ip] + col);
                }
            }
        }
        uf.groups()
            .into_iter()
            .map(|group| {
                let mut members: Vec<(usize, usize)> = group
                    .into_iter()
                    .map(|flat| {
                        let camera = offsets
                            .iter()
                            .rposition(|&o| o <= flat)
                            .expect("offsets start at zero");
                        (camera, flat - offsets[camera])
                    })
                    .collect();
                members.sort_unstable();
                GlobalObject { members }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train_pair_model, CorrespondenceSample};

    fn bb(x: f64, y: f64, w: f64, h: f64) -> BBox {
        BBox::new(x, y, x + w, y + h).unwrap()
    }

    /// Two cameras whose views relate by a 100 px horizontal shift over the
    /// full frame.
    fn shift_engine() -> AssociationEngine {
        let samples: Vec<CorrespondenceSample> = (0..60)
            .map(|i| {
                let x = 20.0 * i as f64;
                CorrespondenceSample {
                    src: bb(x, 150.0, 50.0, 40.0),
                    dst: Some(bb(x + 100.0, 150.0, 50.0, 40.0)),
                }
            })
            .collect();
        let model = train_pair_model(3, &samples).unwrap();
        let mut engine = AssociationEngine::new(2, AssociationEngine::DEFAULT_IOU_THRESHOLD);
        engine.insert_model(0, 1, model);
        engine
    }

    #[test]
    fn matching_detections_merge() {
        let engine = shift_engine();
        let detections = vec![
            vec![bb(200.0, 150.0, 50.0, 40.0)],
            vec![bb(300.0, 150.0, 50.0, 40.0)],
        ];
        let globals = engine.associate(&detections);
        assert_eq!(globals.len(), 1);
        assert_eq!(globals[0].members, vec![(0, 0), (1, 0)]);
        assert_eq!(globals[0].detection_on(1), Some(0));
    }

    #[test]
    fn distant_detections_stay_separate() {
        let engine = shift_engine();
        let detections = vec![
            vec![bb(200.0, 150.0, 50.0, 40.0)],
            vec![bb(900.0, 150.0, 50.0, 40.0)], // nowhere near the mapping
        ];
        let globals = engine.associate(&detections);
        assert_eq!(globals.len(), 2);
        for g in &globals {
            assert_eq!(g.members.len(), 1);
        }
    }

    #[test]
    fn hungarian_prevents_double_assignment() {
        let engine = shift_engine();
        // Two source objects close together; two target detections. Each
        // target detection may be claimed by only one source object.
        let detections = vec![
            vec![bb(200.0, 150.0, 50.0, 40.0), bb(240.0, 150.0, 50.0, 40.0)],
            vec![bb(300.0, 150.0, 50.0, 40.0), bb(340.0, 150.0, 50.0, 40.0)],
        ];
        let globals = engine.associate(&detections);
        assert_eq!(globals.len(), 2);
        for g in &globals {
            assert_eq!(g.members.len(), 2, "each global spans both cameras: {g:?}");
        }
        // And the pairing is the order-preserving one.
        assert!(globals.iter().any(|g| g.members == vec![(0, 0), (1, 0)]));
        assert!(globals.iter().any(|g| g.members == vec![(0, 1), (1, 1)]));
    }

    #[test]
    fn empty_cameras_are_fine() {
        let engine = shift_engine();
        let globals = engine.associate(&[vec![], vec![bb(0.0, 0.0, 10.0, 10.0)]]);
        assert_eq!(globals.len(), 1);
        assert_eq!(globals[0].members, vec![(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "one detection list per camera")]
    fn wrong_camera_count_panics() {
        shift_engine().associate(&[vec![]]);
    }

    #[test]
    #[should_panic(expected = "source < target")]
    fn insert_model_validates_pair() {
        let samples = [CorrespondenceSample {
            src: bb(0.0, 0.0, 10.0, 10.0),
            dst: None,
        }];
        let model = train_pair_model(1, &samples).unwrap();
        AssociationEngine::new(2, 0.2).insert_model(1, 1, model);
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;
    use crate::{train_pair_model, CorrespondenceSample};

    fn bb(x: f64, y: f64, w: f64, h: f64) -> BBox {
        BBox::new(x, y, x + w, y + h).unwrap()
    }

    /// Three cameras in a chain: camera 1 maps to camera 2 (+200 px),
    /// camera 2 maps to camera 3 (+200 px more). Cameras 1 and 3 have *no*
    /// direct overlap model, yet union-find must merge a three-way object
    /// transitively through camera 2.
    fn chain_engine() -> AssociationEngine {
        let shift = |dx: f64| -> Vec<CorrespondenceSample> {
            (0..50)
                .map(|i| {
                    let x = 15.0 * i as f64;
                    CorrespondenceSample {
                        src: bb(x, 200.0, 50.0, 40.0),
                        dst: Some(bb(x + dx, 200.0, 50.0, 40.0)),
                    }
                })
                .collect()
        };
        let mut engine = AssociationEngine::new(3, 0.2);
        engine.insert_model(0, 1, train_pair_model(3, &shift(200.0)).unwrap());
        engine.insert_model(1, 2, train_pair_model(3, &shift(200.0)).unwrap());
        // No (0, 2) model: those views only connect through camera 1.
        engine
    }

    #[test]
    fn transitive_merge_through_middle_camera() {
        let engine = chain_engine();
        let detections = vec![
            vec![bb(100.0, 200.0, 50.0, 40.0)],
            vec![bb(300.0, 200.0, 50.0, 40.0)],
            vec![bb(500.0, 200.0, 50.0, 40.0)],
        ];
        let globals = engine.associate(&detections);
        assert_eq!(globals.len(), 1, "three views of one object must merge");
        assert_eq!(globals[0].members, vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn broken_chain_splits_identities() {
        let engine = chain_engine();
        // Camera 1's detection is missing: cameras 0 and 2 cannot connect.
        let detections = vec![
            vec![bb(100.0, 200.0, 50.0, 40.0)],
            vec![],
            vec![bb(500.0, 200.0, 50.0, 40.0)],
        ];
        let globals = engine.associate(&detections);
        assert_eq!(globals.len(), 2);
        for g in &globals {
            assert_eq!(g.members.len(), 1);
        }
    }

    #[test]
    fn multiple_objects_stay_distinct_along_the_chain() {
        let engine = chain_engine();
        let detections = vec![
            vec![bb(100.0, 200.0, 50.0, 40.0), bb(400.0, 200.0, 50.0, 40.0)],
            vec![bb(300.0, 200.0, 50.0, 40.0), bb(600.0, 200.0, 50.0, 40.0)],
            vec![bb(500.0, 200.0, 50.0, 40.0), bb(800.0, 200.0, 50.0, 40.0)],
        ];
        let globals = engine.associate(&detections);
        assert_eq!(globals.len(), 2);
        for g in &globals {
            assert_eq!(g.members.len(), 3, "each object spans the chain: {g:?}");
        }
    }
}
