//! Cross-camera object association (Sec. II-C of the paper).
//!
//! Identifies the *common objects* seen by multiple cameras so that the
//! scheduler can assign each physical object to exactly one camera. Because
//! camera view angles differ by up to 180°, plain homography fails; the
//! paper instead fits two data-driven models per ordered camera pair:
//!
//! 1. a **KNN classifier** deciding whether a bounding box seen by camera
//!    `i` is visible in camera `i'` at all, and
//! 2. a **KNN regressor** predicting *where* in camera `i'` it lands.
//!
//! Predicted boxes are then matched against actual detections in `i'` by
//! IoU proximity via the Hungarian algorithm, and matches are merged into
//! global identities with a union-find.
//!
//! * [`CameraPairModel`] — the classifier+regressor bundle for one pair;
//! * [`train_pair_model`] — fits a pair model from labeled correspondences;
//! * [`AssociationEngine`] — runs a full association round over all
//!   cameras' detections and returns the global object list;
//! * [`UnionFind`] — the identity-merging substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod model;
mod union_find;

pub use engine::{AssociationEngine, GlobalObject};
pub use model::{train_pair_model, CameraPairModel, CorrespondenceSample};
pub use union_find::UnionFind;
